"""Ablation — VM boot delay versus the analyzer's lead time.

§IV-A requires alerts "before the expected time for the rate to change,
so ... the application provisioner has time to deploy ... the required
VMs".  This ablation injects boot delays around the analyzer's 60-s
lead on the spike workload: QoS holds while boot ≤ lead and degrades
monotonically once booting outlasts the head start.
"""

from __future__ import annotations

from repro.core import AdaptivePolicy, QoSTarget
from repro.experiments import run_policy
from repro.experiments.scenario import ScenarioConfig
from repro.metrics import format_table
from repro.prediction import ModelInformedPredictor
from repro.workloads import PiecewiseRateWorkload

BOOT_DELAYS = (0.0, 60.0, 300.0, 900.0)


def spike_scenario(boot_delay: float) -> ScenarioConfig:
    workload = PiecewiseRateWorkload(
        [(0.0, 5.0), (2 * 3600.0, 20.0)],
        base_service_time=1.0,
        service_jitter=0.10,
        window=60.0,
    )
    return ScenarioConfig(
        name=f"spike-boot-{boot_delay:g}",
        workload=workload,
        qos=QoSTarget(max_response_time=3.0, min_utilization=0.80),
        horizon=4 * 3600.0,
        boot_delay=boot_delay,
        update_interval=900.0,
        lead_time=60.0,
    )


class _SpikeAwarePredictor(ModelInformedPredictor):
    def boundaries(self, t0: float, t1: float):
        return [b for b in (2 * 3600.0,) if t0 < b < t1]


def run_sweep() -> dict:
    results = {}
    for boot in BOOT_DELAYS:
        policy = AdaptivePolicy(
            update_interval=900.0,
            lead_time=60.0,
            predictor_factory=lambda ctx: _SpikeAwarePredictor(ctx.workload, mode="max"),
            initial_instances=8,
        )
        results[boot] = run_policy(spike_scenario(boot), policy, seed=0)
    return results


def test_boot_delay_ablation(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    headers = ["boot delay (s)", "rejection", "avg Tr (s)", "max inst"]
    rows = [
        [b, r.rejection_rate, r.mean_response_time, r.max_instances]
        for b, r in results.items()
    ]
    print()
    print(format_table(headers, rows, title="Boot-delay ablation (4x spike, 60 s lead)"))

    # Boot within the lead time: the spike is absorbed.
    assert results[0.0].rejection_rate < 0.005
    assert results[60.0].rejection_rate < 0.01

    # Boot far beyond the lead: requests are lost while capacity boots.
    assert results[900.0].rejection_rate > results[60.0].rejection_rate
    assert results[900.0].rejection_rate > 0.005

    # Degradation is monotone in the uncovered boot time.
    rates = [results[b].rejection_rate for b in BOOT_DELAYS]
    assert rates[2] <= rates[3] + 1e-9
