"""Ablation — dispatch strategies under service-time variability.

§IV-C argues round-robin suffices when service times have low
variability, deferring to provider balancers otherwise.  This ablation
raises the service jitter to U(0, 100 %) and compares round-robin,
least-connections, and random dispatch on one scaled web day: response
times order least-connections ≤ round-robin ≤ random, and the metrics
collapse together at the paper's low (10 %) jitter.
"""

from __future__ import annotations

import numpy as np

from repro.cloud import LeastConnectionsBalancer, RandomBalancer, RoundRobinBalancer
from repro.core import StaticPolicy
from repro.experiments import web_scenario
from repro.experiments.runner import run_policy
from repro.metrics import format_table
from repro.sim import RandomStreams
from repro.workloads import WebWorkload


def run_balancers(jitter: float) -> dict:
    workload = WebWorkload(service_jitter=jitter).scaled(1000.0)
    scenario = web_scenario(scale=1000.0, horizon=86_400.0).with_updates(
        workload=workload, name=f"web-jitter-{jitter:g}"
    )
    results = {}
    for name, balancer in (
        ("round-robin", RoundRobinBalancer()),
        ("least-connections", LeastConnectionsBalancer()),
        ("random", RandomBalancer(RandomStreams(99).get("balancer"))),
    ):
        results[name] = run_policy(scenario, StaticPolicy(110), seed=0, balancer=balancer)
    return results


def test_balancer_ablation_high_variability(benchmark):
    results = benchmark.pedantic(lambda: run_balancers(1.0), rounds=1, iterations=1)
    headers = ["balancer", "avg Tr (s)", "std Tr (s)", "rejection"]
    rows = [
        [n, r.mean_response_time, r.response_time_std, r.rejection_rate]
        for n, r in results.items()
    ]
    print()
    print(format_table(headers, rows, title="Balancer ablation, service jitter U(0,100%)"))

    rr = results["round-robin"].mean_response_time
    lc = results["least-connections"].mean_response_time
    rnd = results["random"].mean_response_time
    # Least-connections wins under high variability; random is worst.
    assert lc <= rr * 1.02
    assert rr <= rnd * 1.05


def test_balancers_equivalent_at_paper_jitter(benchmark):
    results = benchmark.pedantic(lambda: run_balancers(0.10), rounds=1, iterations=1)
    times = {n: r.mean_response_time for n, r in results.items()}
    print()
    print(
        "paper-jitter response times:",
        {n: f"{t*1000:.2f} ms" for n, t in times.items()},
    )
    # §IV-C's claim: with low variability round-robin matches the
    # provider-style least-connections balancer within a few percent.
    rr, lc = times["round-robin"], times["least-connections"]
    assert abs(rr - lc) / lc < 0.05
    # Uninformed random dispatch, by contrast, pays real queueing even
    # here — evidence the *deterministic rotation*, not feedback, is
    # what keeps round-robin competitive.
    assert times["random"] >= rr
    for r in results.values():
        assert r.rejection_rate < 0.02
