"""Ablation — proactive (model-informed) vs reactive predictors.

The paper positions its mechanism as *proactive* against reactive
schemes (Chieu et al., Claudia; §VI).  This ablation swaps predictors
inside the identical control plane and hits them with a 4× load spike:
the model-informed analyzer provisions *before* the spike (it sees the
boundary), while reactive predictors can only chase it and lose
requests until their next update.
"""

from __future__ import annotations

from typing import Callable

from repro.core import AdaptivePolicy, QoSTarget
from repro.experiments import run_policy
from repro.experiments.scenario import ScenarioConfig
from repro.metrics import format_table
from repro.prediction import (
    ARXPredictor,
    EWMAPredictor,
    LastValuePredictor,
    ModelInformedPredictor,
    OraclePredictor,
)
from repro.workloads import PiecewiseRateWorkload


def spike_scenario() -> ScenarioConfig:
    """Rate 5/s for 4 h, then a 4× spike to 20/s for 4 h."""
    workload = PiecewiseRateWorkload(
        [(0.0, 5.0), (4 * 3600.0, 20.0)],
        base_service_time=1.0,
        service_jitter=0.10,
        window=60.0,
    )
    return ScenarioConfig(
        name="spike",
        workload=workload,
        qos=QoSTarget(max_response_time=3.0, min_utilization=0.80),
        horizon=8 * 3600.0,
        update_interval=900.0,
        lead_time=60.0,
        rate_sample_interval=60.0,
        count_arrivals=True,
    )


class _SpikeAwareModelPredictor(ModelInformedPredictor):
    """Model-informed predictor that also knows the spike boundary."""

    def boundaries(self, t0: float, t1: float):
        return [b for b in (4 * 3600.0,) if t0 < b < t1]


PREDICTORS: dict = {
    "model-informed": lambda ctx: _SpikeAwareModelPredictor(ctx.workload, mode="max"),
    "oracle": lambda ctx: OraclePredictor(ctx.workload, mode="max"),
    "last-value": lambda ctx: LastValuePredictor(safety_factor=1.1),
    "ewma": lambda ctx: EWMAPredictor(alpha=0.5, safety_factor=1.1),
    "arx": lambda ctx: ARXPredictor(order=2, history=64, safety_factor=1.1),
}


def run_all() -> dict:
    scenario = spike_scenario()
    results = {}
    for name, factory in PREDICTORS.items():
        policy = AdaptivePolicy(
            update_interval=900.0,
            lead_time=60.0,
            predictor_factory=factory,
            initial_instances=8,
        )
        results[name] = run_policy(scenario, policy, seed=0)
    return results


def test_predictor_ablation(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    headers = ["predictor", "rejection", "utilization", "VM hours", "max inst"]
    rows = [
        [name, r.rejection_rate, r.utilization, r.vm_hours, r.max_instances]
        for name, r in results.items()
    ]
    print()
    print(format_table(headers, rows, title="Predictor ablation under a 4x load spike"))

    # Proactive predictors absorb the spike.
    assert results["model-informed"].rejection_rate < 0.005
    assert results["oracle"].rejection_rate < 0.005

    # Reactive predictors lose requests while chasing it.
    for reactive in ("last-value", "ewma"):
        assert results[reactive].rejection_rate > results["model-informed"].rejection_rate
        assert results[reactive].rejection_rate > 0.005

    # Everyone eventually provisions a comparable peak fleet.
    peak = results["model-informed"].max_instances
    for r in results.values():
        assert r.max_instances >= 0.7 * peak
