"""Ablation — the queueing abstraction inside Algorithm 1.

The paper models each instance as M/M/1/k although the simulated
service law is nearly deterministic.  Swapping the M/D/1/K
approximation into the modeler quantifies the conservatism of the
Markovian assumption: the deterministic-service model tolerates higher
per-instance load at the same blocking tolerance, provisioning a
smaller fleet at equal (zero) rejection in the low-variability regime.
"""

from __future__ import annotations

from repro.core import PerformanceModeler, QoSTarget
from repro.core.controlplane import ControlPlane, RecordingActuator
from repro.metrics import format_table
from repro.prediction import ModelInformedPredictor
from repro.queueing import MD1KQueue, MM1KQueue
from repro.sim.calendar import SECONDS_PER_WEEK
from repro.sim.fluid import FluidSimulator
from repro.workloads import WebWorkload


def run_models() -> dict:
    w = WebWorkload()
    qos = QoSTarget(max_response_time=0.250, min_utilization=0.80)
    results = {}
    for name, instance_model in (("M/M/1/k", MM1KQueue), ("M/D/1/k~", MD1KQueue)):
        modeler = PerformanceModeler(
            qos=qos, capacity=2, max_vms=8000, instance_model=instance_model
        )
        control = ControlPlane(
            modeler=modeler,
            actuator=RecordingActuator(0, max_instances=8000),
            service_time_fn=lambda st=w.mean_service_time: st,
            predictor=ModelInformedPredictor(w, mode="max"),
            update_interval=900.0,
            lead_time=60.0,
        )
        fluid = FluidSimulator(w, qos, dt=60.0)
        results[name] = fluid.run_adaptive(control, horizon=SECONDS_PER_WEEK)
    return results


def test_queue_model_ablation(benchmark):
    results = benchmark.pedantic(run_models, rounds=1, iterations=1)
    headers = ["instance model", "VM hours", "max inst", "rejection", "utilization"]
    rows = [
        [n, r.vm_hours, r.max_instances, r.rejection_rate, r.utilization]
        for n, r in results.items()
    ]
    print()
    print(format_table(headers, rows, title="Queue-model ablation (web, full scale)"))

    mm = results["M/M/1/k"]
    md = results["M/D/1/k~"]
    # The deterministic-service model never provisions more.
    assert md.vm_hours <= mm.vm_hours * 1.01
    assert md.max_instances <= mm.max_instances + 1
    # Both stay loss-free in the low-variability regime.
    assert mm.rejection_rate < 0.005
    assert md.rejection_rate < 0.01
