"""Ablation — sensitivity to the minimum-utilization threshold.

Algorithm 1's fixed point sits in the band
``λ·Tm / rho_max ≤ m ≤ λ·Tm / u_min`` (DESIGN.md §3).  Sweeping the
paper's 80 % threshold quantifies the cost/QoS trade it buys: lower
thresholds over-provision (more VM-hours, lower utilization), higher
thresholds approach the admission cliff.  Evaluated at full paper scale
with the fluid engine — the control plane is the real Algorithm 1.
"""

from __future__ import annotations

from repro.core import AdaptivePolicy, QoSTarget
from repro.metrics import format_table
from repro.sim.calendar import SECONDS_PER_WEEK
from repro.sim.fluid import FluidSimulator
from repro.workloads import WebWorkload

THRESHOLDS = (0.50, 0.60, 0.70, 0.80, 0.90)


def run_sweep() -> dict:
    w = WebWorkload()
    results = {}
    for u_min in THRESHOLDS:
        rho_max = min(0.97, u_min + 0.05)
        qos = QoSTarget(max_response_time=0.250, min_utilization=u_min)
        control = AdaptivePolicy(rho_max=rho_max).control_plane(
            w, qos, capacity=2, max_vms=8000
        )
        fluid = FluidSimulator(w, qos, dt=60.0)
        results[u_min] = fluid.run_adaptive(control, horizon=SECONDS_PER_WEEK)
    return results


def test_utilization_threshold_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    headers = ["u_min", "VM hours", "utilization", "rejection", "max inst"]
    rows = [
        [u, r.vm_hours, r.utilization, r.rejection_rate, r.max_instances]
        for u, r in results.items()
    ]
    print()
    print(format_table(headers, rows, title="Utilization-threshold ablation (web, full scale)"))

    # VM-hours fall monotonically as the threshold rises.
    vm_hours = [results[u].vm_hours for u in THRESHOLDS]
    assert vm_hours == sorted(vm_hours, reverse=True)

    # Achieved utilization tracks the threshold.
    for u in THRESHOLDS:
        assert results[u].utilization >= u - 0.06

    # The paper's 0.80 point: ≈ 111-instance-equivalent fleet.
    equiv = results[0.80].vm_hours / 168.0
    assert 100 <= equiv <= 122

    # QoS holds across the sweep (deterministic flow, rho ≤ rho_max < 1).
    for r in results.values():
        assert r.rejection_rate < 0.005
