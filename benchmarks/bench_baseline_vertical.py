"""Baseline comparison — horizontal (the paper) vs vertical scaling.

§VI contrasts the paper's approach ("increasing/decreasing number of
instances") with Zhu & Agrawal's capacity reconfiguration.  Here both
actuation styles run under the same analyzer, workload, and QoS on a
scaled web day, costed in *core-hours* (identical to VM-hours for the
paper's one-core instances).  Expected shape: both meet QoS; vertical
scaling pays for its coarser granularity (n-core steps, integer
speeds), so its core-hours are at least the adaptive policy's.
"""

from __future__ import annotations

from repro.core import AdaptivePolicy, StaticPolicy, VerticalScalingPolicy
from repro.experiments import run_policy, web_scenario
from repro.metrics import format_table


def run_baselines() -> dict:
    scenario = web_scenario(scale=1000.0, horizon=86_400.0)
    policies = (
        AdaptivePolicy(),
        VerticalScalingPolicy(instances=20),
        VerticalScalingPolicy(instances=40),
        StaticPolicy(130),
    )
    return {p.name: run_policy(scenario, p, seed=0) for p in policies}


def test_horizontal_vs_vertical(benchmark):
    results = benchmark.pedantic(run_baselines, rounds=1, iterations=1)
    headers = ["policy", "rejection", "violations", "core hours", "utilization"]
    rows = [
        [n, r.rejection_rate, r.qos_violations, r.core_hours, r.utilization]
        for n, r in results.items()
    ]
    print()
    print(format_table(headers, rows, title="Horizontal vs vertical scaling (web day)"))

    adaptive = results["Adaptive"]
    v20 = results["Vertical-20"]
    v40 = results["Vertical-40"]

    # Every elastic policy meets QoS.
    for r in (adaptive, v20, v40):
        assert r.rejection_rate < 0.01
        assert r.qos_violations == 0

    # Vertical fleets really stayed fixed-size.
    assert v20.min_instances == v20.max_instances == 20
    assert v40.min_instances == v40.max_instances == 40

    # Cost: one-core horizontal steps are the finest actuation, so the
    # adaptive policy is never beaten on core-hours.
    assert v20.core_hours >= adaptive.core_hours * 0.97
    assert v40.core_hours >= adaptive.core_hours * 0.97

    # And all elastic policies beat the peak-sized static deployment.
    static = results["Static-130"]
    assert adaptive.core_hours < static.core_hours
    assert v20.core_hours < static.core_hours * 1.25
