"""Robustness experiment — deviation feedback vs a blind predictor.

§I motivates the mechanism with "estimation error": operators
mis-estimate their needs.  Here the analyzer's predictor is *maximally
wrong* — it predicts the pre-spike rate forever — and an unannounced 4×
spike arrives.  Without feedback the deployment drowns; with
deviation-triggered corrective alerts (watching the monitored arrival
rate) the analyzer overrides the predictor within two monitoring
samples and QoS survives.
"""

from __future__ import annotations

from repro.core import AdaptivePolicy, QoSTarget
from repro.experiments import run_policy
from repro.experiments.scenario import ScenarioConfig
from repro.metrics import format_table
from repro.prediction import ArrivalRatePredictor
from repro.workloads import PiecewiseRateWorkload


class BlindPredictor(ArrivalRatePredictor):
    name = "blind"

    def predict(self, t0, t1):
        return 5.0  # never learns about the spike


def scenario() -> ScenarioConfig:
    workload = PiecewiseRateWorkload(
        [(0.0, 5.0), (2 * 3600.0, 20.0)],
        base_service_time=1.0,
        service_jitter=0.10,
        window=60.0,
    )
    return ScenarioConfig(
        name="surprise-spike",
        workload=workload,
        qos=QoSTarget(max_response_time=3.5, min_utilization=0.80),
        horizon=6 * 3600.0,
        update_interval=900.0,
        lead_time=60.0,
        rate_sample_interval=60.0,
        count_arrivals=True,
    )


def run_both() -> dict:
    results = {}
    for label, threshold in (("blind predictor", None), ("with deviation feedback", 0.3)):
        policy = AdaptivePolicy(
            update_interval=900.0,
            predictor_factory=lambda ctx: BlindPredictor(),
            initial_instances=8,
            deviation_threshold=threshold,
        )
        results[label] = run_policy(scenario(), policy, seed=0)
    return results


def test_deviation_feedback(benchmark):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    headers = ["analyzer", "rejection", "max inst", "VM hours", "violations"]
    rows = [
        [n, r.rejection_rate, r.max_instances, r.vm_hours, r.qos_violations]
        for n, r in results.items()
    ]
    print()
    print(format_table(headers, rows, title="Unannounced 4x spike vs a blind predictor"))

    blind = results["blind predictor"]
    corrected = results["with deviation feedback"]
    assert blind.rejection_rate > 0.3
    assert corrected.rejection_rate < 0.02
    assert corrected.max_instances > 2.5 * blind.max_instances
    assert corrected.qos_violations == 0
