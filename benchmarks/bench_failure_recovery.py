"""Robustness experiment — VM failures under static vs adaptive control.

§I motivates adaptive provisioning with the cloud's "uncertain
behavior"; this benchmark makes that concrete.  Eight VM crashes are
injected across a scaled web day.  The static deployment (sized to
cope with the peak) stays permanently degraded and starts rejecting
once enough capacity has died; the adaptive provisioner restores the
Algorithm-1 target at its next alert and keeps QoS intact.
"""

from __future__ import annotations

from repro.cloud import FailureInjector
from repro.core import AdaptivePolicy, StaticPolicy
from repro.experiments import build_context, web_scenario
from repro.metrics import format_table

CRASH_TIMES = [3600.0 * h for h in (6.0, 7.0, 8.0, 8.5, 9.0, 9.5, 10.0, 10.5)]


def run_with_failures() -> dict:
    scenario = web_scenario(scale=1000.0, horizon=16 * 3600.0)
    results = {}
    for policy in (AdaptivePolicy(), StaticPolicy(110)):
        ctx = build_context(scenario, seed=0)
        policy.attach(ctx)
        injector = FailureInjector(
            ctx.engine, ctx.fleet, ctx.streams.get("failures"), schedule=CRASH_TIMES
        )
        injector.start()
        ctx.source.start()
        ctx.engine.run(until=scenario.horizon)
        now = ctx.engine.now
        ctx.metrics.finalize(now, ctx.datacenter.vm_hours(now))
        results[policy.name] = (ctx.metrics, ctx.fleet.serving_count, injector.failures)
    return results


def test_failure_recovery(benchmark):
    results = benchmark.pedantic(run_with_failures, rounds=1, iterations=1)
    headers = ["policy", "crashes", "lost", "rejection", "final fleet", "violations"]
    rows = [
        [name, crashes, m.lost_requests, m.rejection_rate, fleet, m.violations]
        for name, (m, fleet, crashes) in results.items()
    ]
    print()
    print(format_table(headers, rows, title="Failure injection: 8 crashes on a web day"))

    adaptive, adaptive_fleet, _ = results["Adaptive"]
    static, static_fleet, _ = results["Static-110"]

    # Both lose the in-flight requests of crashed instances...
    assert adaptive.failures == static.failures == 8
    assert adaptive.lost_requests >= 0 and static.lost_requests >= 0

    # ...but only the static fleet stays degraded.
    assert static_fleet == 110 - 8

    # The adaptive controller keeps rejection negligible despite the
    # crashes landing on the morning ramp; the degraded static fleet
    # (102 instances ≈ 971 req/s capacity < the 1000 req/s noon peak)
    # rejects measurably.
    assert adaptive.rejection_rate < 0.005
    assert static.rejection_rate > 0.002
    assert static.rejection_rate > 5 * max(adaptive.rejection_rate, 1e-9)
