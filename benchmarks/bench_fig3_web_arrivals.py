"""Figure 3 — average requests/s received over one week (web workload).

Regenerates the Eq.-2 curve plus a full realized week of 60-s interval
rates and asserts the figure's shape: diurnal sine between the Table-II
bounds, weekday peaks at 1200, weekend lower, trough-to-peak ratio as
published.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig3_data
from repro.metrics import format_table


def test_fig3_week_curve(benchmark):
    data = benchmark.pedantic(
        lambda: fig3_data(bin_width=3600.0, sampled=True, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(data.headers, data.rows[:14], title=data.title + " (first rows)"))
    model = np.asarray(data.raw["model_rate"])
    realized = np.asarray(data.raw["realized_rate"])

    # Shape: 168 hourly points, one diurnal peak per day at noon.
    assert model.shape == (168,)
    for day in range(7):
        day_slice = model[day * 24 : (day + 1) * 24]
        assert int(np.argmax(day_slice)) == 12

    # Tue–Fri peak 1200; Sunday peak 900; trough bounds per Table II.
    assert model[24 + 12] == 1200.0
    assert model[6 * 24 + 12] == 900.0
    assert model.min() >= 400.0

    # The realized week tracks the model curve.
    rel = np.abs(realized - model) / model
    assert float(np.median(rel)) < 0.08

    # Weekly volume ≈ the paper's 500.12 M requests.
    weekly = float(realized.mean() * 7 * 86_400)
    print(f"realized weekly requests: {weekly/1e6:.1f} M (paper: 500.12 M)")
    assert 4.7e8 < weekly < 5.7e8
