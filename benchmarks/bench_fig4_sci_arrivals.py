"""Figure 4 — requests/s received over one day (scientific workload).

Regenerates one realized day of BoT task arrivals and asserts the
figure's shape: bursty traffic up to ~1.5 req/s inside the 8 a.m.–5 p.m.
peak window, near-zero outside, daily volume ≈ the paper's 8286.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig4_data
from repro.metrics import format_table


def test_fig4_day_curve(benchmark):
    data = benchmark.pedantic(lambda: fig4_data(seed=0), rounds=1, iterations=1)
    print()
    print(format_table(data.headers, data.rows, title=data.title))
    times = np.asarray(data.raw["times"])
    realized = np.asarray(data.raw["realized_rate"])
    arrivals = np.asarray(data.raw["arrivals"])

    peak = (times >= 8 * 3600) & (times < 17 * 3600)

    # Clear peak/off-peak contrast (Figure 4's dominant feature).
    assert realized[peak].mean() > 5 * realized[~peak].mean()

    # Per-minute averages spike well above the mean; at the figure's
    # per-second granularity, multi-task BoT jobs reach the ~1−1.6 req/s
    # band the paper plots.
    assert realized[peak].max() > 1.5 * realized[peak].mean()
    per_second = np.bincount(arrivals.astype(np.int64))
    assert per_second.max() >= 2  # a burst of ≥ 2 tasks in one second

    # Daily volume ≈ paper's 8286 requests.
    print(f"realized daily requests: {arrivals.size} (paper: 8286)")
    assert 7000 < arrivals.size < 9600

    # Off-peak is sparse but not empty.
    assert 0.0 < realized[~peak].mean() < 0.08
