"""Figure 5 — web scenario: Adaptive vs Static-{50,75,100,125,150}.

One simulated week of the Wikipedia-model workload through the DES at
rate scale 1/``REPRO_WEB_SCALE`` (default 400; the rescaling preserves
fleet sizes, rejection, utilization and VM-hours — DESIGN.md §4).
Prints the four panels' metrics per policy and asserts the paper's
shape:

* (a) Adaptive varies ≈ 55 → 153 instances;
* (b) Adaptive ≈ 0 rejection at ≥ 0.8 utilization; small statics reject
  heavily at near-1 utilization; Static-150 wastes ≈ 40 % capacity;
* (c) Adaptive saves ≈ 26 % VM-hours versus Static-150;
* (d) all response times ≤ Ts (admission control), saturated statics
  pushed toward the k·Tr bound.
"""

from __future__ import annotations

from conftest import seeds, web_scale

from repro.experiments import fig5_data
from repro.metrics import format_table


def test_fig5_policy_panels(benchmark):
    data = benchmark.pedantic(
        lambda: fig5_data(scale=web_scale(), seeds=seeds()),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(data.headers, data.rows, title=data.title))

    rows = {row[0]: dict(zip(data.headers, row)) for row in data.rows}
    adaptive = rows["Adaptive"]

    # (a) instance range — paper: 55 → 153.
    assert 48 <= adaptive["min inst"] <= 60
    assert 145 <= adaptive["max inst"] <= 160

    # (b) rejection & utilization.
    assert adaptive["rejection"] < 0.005
    assert adaptive["utilization"] >= 0.78
    assert rows["Static-50"]["rejection"] > 0.35
    assert rows["Static-75"]["rejection"] > 0.12
    assert rows["Static-125"]["rejection"] < 0.05
    assert rows["Static-150"]["rejection"] < 0.001
    assert rows["Static-150"]["utilization"] < 0.65

    # (c) VM hours — Adaptive ≈ 26 % below Static-150 (paper).
    saving = 1.0 - adaptive["VM hours"] / rows["Static-150"]["VM hours"]
    print(f"VM-hour saving vs Static-150: {saving:.1%} (paper: 26%)")
    assert 0.18 <= saving <= 0.35
    # Equivalent 24/7 fleet ≈ paper's 111 instances.
    equiv = adaptive["VM hours"] / 168.0
    print(f"equivalent 24/7 fleet: {equiv:.1f} instances (paper: 111)")
    assert 100 <= equiv <= 122

    # (d) response times: bounded by Ts for everyone; saturation raises
    # the mean toward k·Tr = 0.2+ s.
    for name, row in rows.items():
        assert row["avg Tr (s)"] <= 0.250, name
        assert row["QoS violations"] == 0, name
    assert rows["Static-50"]["avg Tr (s)"] > adaptive["avg Tr (s)"]
