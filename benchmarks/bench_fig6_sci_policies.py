"""Figure 6 — scientific scenario: Adaptive vs Static-{15..75}.

One simulated day of the Grid-Workloads-Archive BoT model at full paper
scale (≈ 8.3 k requests/day) with three replications.  Prints the four
panels' metrics per policy and asserts the paper's shape:

* (a) Adaptive varies ≈ 13 → 80 instances;
* (b) Adaptive ≈ 0 rejection at ≈ 0.78 utilization; Static-45 rejects
  ≈ 32 %; Static-75 copes with peak at only ≈ 42 % utilization;
* (c) Adaptive ≈ 46 % fewer VM-hours than Static-75 (≈ 40 × 24 h);
* (d) every accepted request within Ts = 700 s.
"""

from __future__ import annotations

from repro.experiments import fig6_data
from repro.metrics import format_table


def test_fig6_policy_panels(benchmark):
    data = benchmark.pedantic(
        lambda: fig6_data(seeds=(0, 1, 2)), rounds=1, iterations=1
    )
    print()
    print(format_table(data.headers, data.rows, title=data.title))

    rows = {row[0]: dict(zip(data.headers, row)) for row in data.rows}
    adaptive = rows["Adaptive"]

    # (a) instance range — paper: 13 → 80.
    assert 11 <= adaptive["min inst"] <= 16
    assert 75 <= adaptive["max inst"] <= 88

    # (b) rejection & utilization.
    assert adaptive["rejection"] < 0.01
    assert 0.70 <= adaptive["utilization"] <= 0.85  # paper: 0.78
    assert 0.25 <= rows["Static-45"]["rejection"] <= 0.40  # paper: 0.317
    assert rows["Static-15"]["rejection"] > 0.55
    assert rows["Static-75"]["rejection"] < 0.01
    assert 0.35 <= rows["Static-75"]["utilization"] <= 0.50  # paper: 0.42

    # (c) VM hours — paper: ≈ 40 instances × 24 h, 46 % below Static-75.
    saving = 1.0 - adaptive["VM hours"] / rows["Static-75"]["VM hours"]
    equiv = adaptive["VM hours"] / 24.0
    print(f"VM-hour saving vs Static-75: {saving:.1%} (paper: 46%)")
    print(f"equivalent 24 h fleet: {equiv:.1f} instances (paper: 40)")
    assert 0.38 <= saving <= 0.55
    assert 34 <= equiv <= 46

    # (d) admission control bounds every policy's response time.
    for name, row in rows.items():
        assert row["avg Tr (s)"] <= 700.0, name
        assert row["QoS violations"] == 0, name
