"""Full-paper-scale regeneration of Figures 5 and 6 via the fluid engine.

The paper's web scenario pushes ≈ 500 M requests/week; the fluid engine
evaluates the identical control plane (same analyzer cadence, same
Algorithm 1) analytically at scale 1, in milliseconds.  This is both
the full-scale reproduction and the DES cross-check: the fleet
trajectories must agree with the rate-scaled DES results.
"""

from __future__ import annotations

from repro.experiments import fig5_fluid_fullscale, fig6_fluid_fullscale
from repro.metrics import format_table


def test_fig5_fluid_fullscale(benchmark):
    data = benchmark.pedantic(fig5_fluid_fullscale, rounds=1, iterations=1)
    print()
    print(format_table(data.headers, data.rows, title=data.title))
    results = {name: runs[0] for name, runs in data.raw["results"].items()}
    adaptive = results["Adaptive"]

    # Paper headline numbers at full scale.
    assert 48 <= adaptive.min_instances <= 58  # paper: 55
    assert 148 <= adaptive.max_instances <= 158  # paper: 153
    assert adaptive.rejection_rate < 0.005
    assert adaptive.utilization > 0.75
    equiv = adaptive.vm_hours / 168.0
    print(f"equivalent 24/7 fleet: {equiv:.1f} (paper: 111)")
    assert 104 <= equiv <= 118

    saving = 1.0 - adaptive.vm_hours / results["Static-150"].vm_hours
    print(f"VM-hour saving vs Static-150: {saving:.1%} (paper: 26%)")
    assert 0.20 <= saving <= 0.32

    # Total offered traffic ≈ 500.12 M requests (paper).
    print(f"offered requests: {adaptive.total_requests/1e6:.1f} M (paper: 500.12 M)")
    assert 4.8e8 < adaptive.total_requests < 5.6e8

    # Static sweep shape.
    assert results["Static-50"].rejection_rate > 0.35
    assert results["Static-150"].rejection_rate < 1e-6
    assert results["Static-150"].utilization < 0.65


def test_fig6_fluid_crosscheck(benchmark):
    data = benchmark.pedantic(fig6_fluid_fullscale, rounds=1, iterations=1)
    print()
    print(format_table(data.headers, data.rows, title=data.title))
    results = {name: runs[0] for name, runs in data.raw["results"].items()}
    adaptive = results["Adaptive"]

    assert 12 <= adaptive.min_instances <= 16  # paper: 13
    assert 75 <= adaptive.max_instances <= 88  # paper: 80
    assert adaptive.rejection_rate < 0.01
    saving = 1.0 - adaptive.vm_hours / results["Static-75"].vm_hours
    print(f"VM-hour saving vs Static-75: {saving:.1%} (paper: 46%)")
    assert 0.38 <= saving <= 0.55
    # Static-45 loses the peak flow the paper quantifies at 31.7 %.
    assert 0.20 <= results["Static-45"].rejection_rate <= 0.40
