"""Performance micro-benchmarks of the simulation substrate.

Unlike the figure benchmarks (single-shot regenerations), these are
true timing benchmarks with repeated rounds: event-loop throughput,
Algorithm-1 latency, analytical-formula cost, and workload sampling —
the quantities that determine how close to paper scale the DES can run.
"""

from __future__ import annotations

import numpy as np

from repro.core import PerformanceModeler, QoSTarget
from repro.queueing import mm1k_blocking
from repro.sim import Engine, RandomStreams
from repro.workloads import ScientificWorkload, WebWorkload


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire 50 k chained events."""

    def run_chain():
        eng = Engine()
        remaining = [50_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                eng.schedule(1.0, tick)

        eng.schedule(1.0, tick)
        eng.run()
        return eng.events_fired

    fired = benchmark(run_chain)
    assert fired == 50_000


WEB_PEAK_QOS = QoSTarget(max_response_time=0.250, min_utilization=0.80)


def test_algorithm1_decision_latency(benchmark):
    """One full Algorithm-1 search at the paper's web peak point.

    The decision cache is disabled so every round pays for the complete
    adaptive search — this is the cold path the cache amortizes.
    """
    modeler = PerformanceModeler(
        qos=WEB_PEAK_QOS, capacity=2, max_vms=8000, decision_cache_size=0
    )
    decision = benchmark(lambda: modeler.decide(1200.0, 0.105, 55))
    assert 148 <= decision.instances <= 158


def test_algorithm1_cached_decision_latency(benchmark):
    """The same decision served from the quantized LRU cache."""
    modeler = PerformanceModeler(qos=WEB_PEAK_QOS, capacity=2, max_vms=8000)
    modeler.decide(1200.0, 0.105, 55)  # prime
    decision = benchmark(lambda: modeler.decide(1200.0, 0.105, 55))
    assert 148 <= decision.instances <= 158
    assert modeler.cache_hits > 0 and modeler.cache_misses == 1


def test_cache_warm_hit_speedup():
    """Acceptance check: a warm cache hit is ≥10× faster than a cold search."""
    from repro.experiments.bench import decision_latency

    stats = decision_latency(iterations=200, repeats=5)
    assert stats["speedup"] >= 10.0, stats


def test_mm1k_blocking_formula(benchmark):
    """The closed form evaluated across a load sweep."""

    def sweep():
        return [mm1k_blocking(rho, 2) for rho in np.linspace(0.01, 3.0, 100)]

    values = benchmark(sweep)
    assert all(0.0 <= v <= 1.0 for v in values)


def test_web_window_sampling(benchmark):
    """One 60-s web window at peak rate (60 k arrivals)."""
    w = WebWorkload()
    rng = RandomStreams(0).get("bench.web")
    arrivals = benchmark(lambda: w.sample_window(rng, 43_200.0))
    assert arrivals.size > 50_000


def test_scientific_window_sampling(benchmark):
    """One 30-minute peak BoT window (~250 jobs)."""
    sci = ScientificWorkload()
    rng = RandomStreams(0).get("bench.sci")
    arrivals = benchmark(lambda: sci.sample_window(rng, 10 * 3600.0))
    assert arrivals.size > 100
