"""Performance micro-benchmarks of the simulation substrate.

Unlike the figure benchmarks (single-shot regenerations), these are
true timing benchmarks with repeated rounds: event-loop throughput,
Algorithm-1 latency, analytical-formula cost, and workload sampling —
the quantities that determine how close to paper scale the DES can run.
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptivePolicy, PerformanceModeler, QoSTarget
from repro.experiments import run_policy, web_scenario
from repro.obs.profile import Stopwatch
from repro.queueing import mm1k_blocking
from repro.sim import Engine, RandomStreams, round_robin_departures
from repro.workloads import ScientificWorkload, WebWorkload


def _chained_ticks(count: int) -> int:
    """Schedule-and-fire ``count`` chained engine events."""
    eng = Engine()
    remaining = [count]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            eng.schedule(1.0, tick)

    eng.schedule(1.0, tick)
    eng.run()
    return eng.events_fired


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire 50 k chained events."""
    fired = benchmark(_chained_ticks, 50_000)
    assert fired == 50_000


def test_engine_event_throughput_500k(benchmark):
    """The 50 k chain at 10× — scalar event cost must scale linearly."""
    fired = benchmark(_chained_ticks, 500_000)
    assert fired == 500_000


def _rr_workload(n: int, stations: int = 100, seed: int = 0):
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, float(n) / 10.0, size=n))
    services = rng.exponential(8.0, size=n)
    return arrivals, services, stations


def test_batched_round_robin_kernel_50k(benchmark):
    """50 k round-robin requests through the SoA Lindley kernel.

    The array equivalent of the 50 k-event chain above: every arrival
    and every departure handled by a handful of numpy passes instead of
    100 k heap operations.
    """
    arrivals, services, stations = _rr_workload(50_000)
    dep = benchmark(round_robin_departures, arrivals, services, stations)
    assert dep.shape == arrivals.shape
    assert np.all(dep >= arrivals)


def test_batched_vs_scalar_kernel_speedup():
    """Acceptance check: the batched kernel beats the scalar event loop ≥5×.

    Both sides process 50 k requests — the scalar engine fires one
    chained event per request (the BENCH_PR1 ``engine_event_throughput``
    kernel), the batched side computes all departures in one
    :func:`round_robin_departures` call.  Best-of-5 via
    :class:`repro.obs.profile.Stopwatch`.
    """
    arrivals, services, stations = _rr_workload(50_000)

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            watch = Stopwatch()
            fn()
            best = min(best, watch.elapsed())
        return best

    scalar = best_of(lambda: _chained_ticks(50_000))
    batched = best_of(lambda: round_robin_departures(arrivals, services, stations))
    speedup = scalar / batched
    print(
        f"\nbatched-vs-scalar 50k: scalar={scalar:.6f}s "
        f"batched={batched:.6f}s speedup={speedup:.1f}x"
    )
    assert speedup >= 5.0, (scalar, batched)


def test_vec_backend_end_to_end_speedup():
    """des-vec must not be slower than scalar des at benchmark scale.

    Full adaptive web day at scale 100 (~700 k requests): the batched
    backend replaces per-request events with array spans while keeping
    the control trajectory bit-identical — asserted here on every run,
    so the speed claim can never drift from the correctness claim.
    """
    scenario = web_scenario(scale=100.0, horizon=24 * 3600.0)

    watch = Stopwatch()
    des = run_policy(scenario, AdaptivePolicy(), seed=0, backend="des")
    t_des = watch.restart()
    vec = run_policy(scenario, AdaptivePolicy(), seed=0, backend="des-vec")
    t_vec = watch.restart()

    print(
        f"\nend-to-end web scale=100: des={t_des:.2f}s des-vec={t_vec:.2f}s "
        f"speedup={t_des / t_vec:.1f}x over {des.total_requests:.0f} requests"
    )
    assert vec.control_series == des.control_series
    assert vec.vm_hours == des.vm_hours
    assert t_vec < t_des


WEB_PEAK_QOS = QoSTarget(max_response_time=0.250, min_utilization=0.80)


def test_algorithm1_decision_latency(benchmark):
    """One full Algorithm-1 search at the paper's web peak point.

    The decision cache is disabled so every round pays for the complete
    adaptive search — this is the cold path the cache amortizes.
    """
    modeler = PerformanceModeler(
        qos=WEB_PEAK_QOS, capacity=2, max_vms=8000, decision_cache_size=0
    )
    decision = benchmark(lambda: modeler.decide(1200.0, 0.105, 55))
    assert 148 <= decision.instances <= 158


def test_algorithm1_cached_decision_latency(benchmark):
    """The same decision served from the quantized LRU cache."""
    modeler = PerformanceModeler(qos=WEB_PEAK_QOS, capacity=2, max_vms=8000)
    modeler.decide(1200.0, 0.105, 55)  # prime
    decision = benchmark(lambda: modeler.decide(1200.0, 0.105, 55))
    assert 148 <= decision.instances <= 158
    assert modeler.cache_hits > 0 and modeler.cache_misses == 1


def test_cache_warm_hit_speedup():
    """Acceptance check: a warm cache hit is ≥10× faster than a cold search."""
    from repro.experiments.bench import decision_latency

    stats = decision_latency(iterations=200, repeats=5)
    assert stats["speedup"] >= 10.0, stats


def test_mm1k_blocking_formula(benchmark):
    """The closed form evaluated across a load sweep."""

    def sweep():
        return [mm1k_blocking(rho, 2) for rho in np.linspace(0.01, 3.0, 100)]

    values = benchmark(sweep)
    assert all(0.0 <= v <= 1.0 for v in values)


def test_web_window_sampling(benchmark):
    """One 60-s web window at peak rate (60 k arrivals)."""
    w = WebWorkload()
    rng = RandomStreams(0).get("bench.web")
    arrivals = benchmark(lambda: w.sample_window(rng, 43_200.0))
    assert arrivals.size > 50_000


def test_scientific_window_sampling(benchmark):
    """One 30-minute peak BoT window (~250 jobs)."""
    sci = ScientificWorkload()
    rng = RandomStreams(0).get("bench.sci")
    arrivals = benchmark(lambda: sci.sample_window(rng, 10 * 3600.0))
    assert arrivals.size > 100
