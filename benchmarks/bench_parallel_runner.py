"""Sequential vs process-pool replication runner.

Runs the adaptive web scenario across several seeds twice — once
in-process, once through ``run_replications_parallel`` — and prints the
wall-clock comparison.  Correctness gates (bit-identical results, seed
order) are hard assertions; the speedup itself is reported but not
asserted, because it depends on the core count of the machine running
the suite (on a single-core box the pool can only break even at best;
the ISSUE's ≥2× criterion applies to a 4-core box).

Environment knobs: ``REPRO_BENCH_WORKERS`` (default 4) and
``REPRO_SEEDS`` (default "0" — this suite widens it to 0-5 when left at
the conftest default so the pool has enough work per worker).
"""

from __future__ import annotations

import dataclasses
import os

from conftest import seeds

from repro.core import AdaptivePolicy
from repro.experiments import PolicySpec, run_replications
from repro.experiments.bench import parallel_runner
from repro.experiments.scenario import web_scenario


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "4"))


def bench_seeds() -> tuple:
    s = seeds()
    return s if len(s) > 1 else tuple(range(6))


def _strip(result):
    return dataclasses.replace(result, wall_seconds=0.0)


def test_parallel_runner_identical_and_timed(benchmark):
    """Pool output must be bit-identical to sequential; timing informational."""
    stats = benchmark.pedantic(
        lambda: parallel_runner(
            workers=bench_workers(),
            seeds=bench_seeds(),
            scale=2000.0,
            horizon=12 * 3600.0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"sequential {stats['sequential_seconds']:.2f}s  "
        f"parallel({stats['workers']}) {stats['parallel_seconds']:.2f}s  "
        f"speedup {stats['speedup']:.2f}x  "
        f"(host cores: {os.cpu_count()})"
    )
    assert stats["identical_results"], "parallel results diverged from sequential"
    assert stats["cache"]["misses"] > 0  # adaptive policy exercised Algorithm 1


def test_parallel_runner_seed_order_preserved():
    scenario = web_scenario(scale=5000.0, horizon=6 * 3600.0)
    shuffled = (4, 0, 3, 1)
    results = run_replications(
        scenario, PolicySpec(AdaptivePolicy), seeds=shuffled, workers=2
    )
    assert tuple(r.seed for r in results) == shuffled


def test_parallel_runner_scales_with_chunking():
    """chunk_size must not affect results (only dispatch granularity)."""
    scenario = web_scenario(scale=5000.0, horizon=6 * 3600.0)
    spec = PolicySpec(AdaptivePolicy)
    fine = run_replications(scenario, spec, seeds=(0, 1, 2, 3), workers=2, chunk_size=1)
    coarse = run_replications(scenario, spec, seeds=(0, 1, 2, 3), workers=2, chunk_size=2)
    assert [_strip(r) for r in fine] == [_strip(r) for r in coarse]
