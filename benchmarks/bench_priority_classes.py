"""Extension experiment — priority classes under resource contention.

§VII: "high-priority requests are served first in case of intense
competition for resources and limited resource availability".  An
undersized static fleet (intense competition) serves a 30/70
high/low-priority mix through the trunk-reservation admission gate.
Expected shape: with reservation, high-priority loss collapses while
low-priority absorbs the shortfall; without reservation both classes
lose equally; total throughput is essentially unchanged (reservation
redistributes loss, it does not create capacity).
"""

from __future__ import annotations

import numpy as np

from repro.cloud.priority import HIGH, LOW, PriorityAdmissionControl
from repro.core import StaticPolicy
from repro.experiments import build_context, web_scenario
from repro.metrics import format_table


def run_mix(reserved_slots: int, seed: int = 0):
    scenario = web_scenario(scale=1000.0, horizon=12 * 3600.0)
    ctx = build_context(scenario, seed=seed)
    StaticPolicy(80).attach(ctx)  # undersized: noon needs ~128
    pac = PriorityAdmissionControl(
        ctx.fleet, ctx.monitor, reserved_slots=reserved_slots
    )
    rng = ctx.streams.get("priority.classes")
    # Rewire the broker through the priority gate with a 30 % HIGH mix.
    original_submit = ctx.admission.submit

    class _PriorityFrontDoor:
        def submit(self, arrival_time: float) -> bool:
            klass = HIGH if rng.random() < 0.3 else LOW
            return pac.submit(arrival_time, klass)

    ctx.source._admission = _PriorityFrontDoor()
    ctx.source.start()
    ctx.engine.run(until=scenario.horizon)
    return pac, ctx.metrics


def test_priority_reservation(benchmark):
    def run_both():
        return {
            "no reservation": run_mix(0),
            "reserve 40 slots": run_mix(40),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    headers = ["policy", "high rejection", "low rejection", "overall rejection"]
    rows = []
    for name, (pac, metrics) in results.items():
        rows.append(
            [
                name,
                pac.per_class[HIGH].rejection_rate,
                pac.per_class[LOW].rejection_rate,
                metrics.rejection_rate,
            ]
        )
    print()
    print(format_table(headers, rows, title="Priority classes on an undersized fleet"))

    flat_pac, flat_metrics = results["no reservation"]
    resv_pac, resv_metrics = results["reserve 40 slots"]

    # Without reservation the classes are indistinguishable.
    assert flat_pac.per_class[HIGH].rejection_rate == pytest_approx(
        flat_pac.per_class[LOW].rejection_rate, rel=0.25
    )

    # With reservation, high-priority loss collapses.
    assert resv_pac.per_class[HIGH].rejection_rate < 0.02
    assert (
        resv_pac.per_class[LOW].rejection_rate
        > 3 * resv_pac.per_class[HIGH].rejection_rate
    )

    # Reservation redistributes loss, it does not create capacity.
    assert abs(resv_metrics.rejection_rate - flat_metrics.rejection_rate) < 0.08


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
