"""Table II — min/max requests per second on each week day (web).

Regenerates the workload-model constants and verifies the generator's
realized extremes against them.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import table2_data
from repro.metrics import format_table
from repro.sim.calendar import SECONDS_PER_DAY
from repro.workloads import WebWorkload


def test_table2(benchmark):
    data = benchmark.pedantic(table2_data, rounds=1, iterations=1)
    print()
    print(format_table(data.headers, data.rows, title=data.title))
    rows = {r[0]: (r[1], r[2]) for r in data.rows}
    assert rows["Sunday"] == (900.0, 400.0)
    assert rows["Wednesday"] == (1200.0, 500.0)
    assert rows["Saturday"] == (1000.0, 500.0)


def test_table2_generator_realizes_extremes(benchmark):
    """The realized rate curve attains each day's Table-II bounds."""

    def extremes():
        w = WebWorkload()
        out = []
        for day in range(7):
            grid = np.linspace(day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY, 1441)
            rates = np.asarray(w.mean_rate(grid[:-1]))
            out.append((float(rates.max()), float(rates.min())))
        return out

    realized = benchmark.pedantic(extremes, rounds=1, iterations=1)
    expected = [(1000, 500), (1200, 500), (1200, 500), (1200, 500), (1200, 500), (1000, 500), (900, 400)]
    for (rmax, rmin), (emax, emin) in zip(realized, expected):
        assert abs(rmax - emax) < 1.0
        assert abs(rmin - emin) < 1.0
