"""Contribution 2 — workload characterization as provisioning feedback.

The paper's second contribution is "an analysis of two well-known
application-specific workloads aimed at demonstrating the usefulness of
workload modeling in providing feedback for Cloud provisioning".  This
benchmark regenerates that analysis quantitatively and asserts the
feedback it yields:

* the BoT stream is *bursty* (multi-task batches) while the web stream
  is *trendy but smooth* — so the scientific analyzer needs the large
  safety factors the paper hand-picks (×2.6 off-peak) while the web
  analyzer needs almost none;
* both peak windows are recovered from data alone (noon-centred for
  web, 8 a.m.–5 p.m. for BoT);
* the profile-implied fleet bands bracket what Algorithm 1 actually
  provisions.
"""

from __future__ import annotations

from repro.experiments import workload_analysis_data
from repro.metrics import format_table


def test_workload_analysis(benchmark):
    data = benchmark.pedantic(workload_analysis_data, rounds=1, iterations=1)
    print()
    print(format_table(data.headers, data.rows, title=data.title))

    web = data.raw["web"]
    sci = data.raw["scientific"]

    # Burstiness dichotomy: BoT batches vs smooth web intervals.
    assert sci.is_bursty()
    assert not web.is_bursty()
    assert sci.batch_fraction > 0.3
    assert web.batch_fraction < 0.01

    # Recovered peak windows.
    assert sci.peak_hours is not None and web.peak_hours is not None
    sci_start, sci_end = sci.peak_hours
    assert 6.5 <= sci_start <= 9.5 and 15.5 <= sci_end <= 18.5
    web_start, web_end = web.peak_hours
    assert web_start < 12.0 < web_end

    # Derived safety factors: the bursty stream demands more headroom —
    # the scientific factor lands near the paper's hand-picked ×2.6.
    assert sci.recommended_safety_factor() > 1.8
    assert web.recommended_safety_factor() < 1.4
    print(
        f"derived safety factors: web ×{web.recommended_safety_factor():.2f}, "
        f"scientific ×{sci.recommended_safety_factor():.2f} (paper hand-picks ×2.6 off-peak)"
    )

    # Fleet band implied by the scientific profile brackets Algorithm 1's
    # observed 14 → 82 sweep.
    lo, hi = sci.recommended_fleet(service_time=315.0)
    assert lo <= 20
    assert 60 <= hi <= 130
