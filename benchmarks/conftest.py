"""Shared configuration for the benchmark harness.

Environment knobs
-----------------
``REPRO_WEB_SCALE``
    Rate-scale factor for the week-long web DES benchmarks (default
    400; smaller = closer to paper scale but slower; 1 reproduces the
    paper's 500 M-request week and is only practical through the fluid
    benchmarks).
``REPRO_SEEDS``
    Comma-separated replication seeds (default "0").

Every figure benchmark prints the regenerated table (run pytest with
``-s`` to see them); the assertions encode the paper's shape claims so
a silent pass is still meaningful.
"""

from __future__ import annotations

import os

import pytest


def web_scale() -> float:
    """Rate-scale factor for web DES benchmarks."""
    return float(os.environ.get("REPRO_WEB_SCALE", "400"))


def seeds() -> tuple:
    """Replication seeds for DES benchmarks."""
    return tuple(int(s) for s in os.environ.get("REPRO_SEEDS", "0").split(","))


@pytest.fixture(scope="session")
def bench_seeds():
    return seeds()


@pytest.fixture(scope="session")
def bench_web_scale():
    return web_scale()
