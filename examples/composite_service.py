#!/usr/bin/env python3
"""Provisioning a multi-tier (composite) service — §VII future work.

Sizes a three-tier web application (front-end → application logic →
database) against an end-to-end 250 ms deadline using the composite
extension of Algorithm 1, then stress-tests the chosen fleets across a
load sweep with the tandem queueing network.

Usage::

    python examples/composite_service.py
"""

from __future__ import annotations

from repro.metrics import format_table
from repro.queueing import CompositeServiceModeler


def main() -> None:
    modeler = CompositeServiceModeler(
        service_times={"frontend": 0.015, "app": 0.060, "database": 0.025},
        max_response_time=0.250,
    )
    print("tiers             :", ", ".join(modeler.service_times))
    print("deadline split    :", {n: f"{d*1000:.0f} ms" for n, d in modeler.deadline_share.items()})
    print("per-tier queue k  :", modeler.capacities)
    print()

    rows = []
    fleets = {}
    for rate in (200.0, 500.0, 1000.0, 1500.0):
        fleets = modeler.decide(rate, current=fleets)
        end_to_end = modeler.predicted_end_to_end(rate, fleets)
        rhos = {
            name: rate * tr / fleets[name]
            for name, tr in modeler.service_times.items()
        }
        rows.append(
            [
                f"{rate:.0f}",
                fleets["frontend"],
                fleets["app"],
                fleets["database"],
                f"{end_to_end*1000:.1f} ms",
                " / ".join(f"{rhos[n]:.2f}" for n in modeler.service_times),
            ]
        )
    print(
        format_table(
            ["req/s", "frontend", "app", "database", "end-to-end Tr", "per-tier rho"],
            rows,
            title="Tier fleets chosen by the composite Algorithm 1",
        )
    )
    print("\nThe heaviest tier (app, 60 ms) always gets the largest fleet; every")
    print("tier sits in the calibrated 0.80-0.85 load band; and the predicted")
    print("end-to-end response stays inside the 250 ms deadline.")


if __name__ == "__main__":
    main()
