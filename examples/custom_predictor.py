#!/usr/bin/env python3
"""Plugging a custom arrival-rate predictor into the analyzer.

The paper leaves richer prediction (QRSM, ARMAX) as future work; the
library ships those plus a predictor interface you can implement
yourself.  This example:

1. defines a custom predictor (a seasonal-naive forecaster: "this hour
   will look like the same hour yesterday"),
2. runs it inside the adaptive mechanism on two days of bursty MMPP
   traffic (day one is its warm-up),
3. compares it against the built-in reactive EWMA and the oracle.

Usage::

    python examples/custom_predictor.py
"""

from __future__ import annotations

from collections import deque

from repro import AdaptivePolicy, run_policy
from repro.core import QoSTarget
from repro.experiments.scenario import ScenarioConfig
from repro.metrics import format_table
from repro.prediction import ArrivalRatePredictor, EWMAPredictor, OraclePredictor
from repro.workloads import MMPPWorkload


class SeasonalNaivePredictor(ArrivalRatePredictor):
    """Predict the rate observed one period (default: one day) ago.

    Falls back to the most recent observation while the first period of
    history is still accumulating.
    """

    name = "seasonal-naive"

    def __init__(self, period: float = 86_400.0, safety_factor: float = 1.2) -> None:
        self.period = period
        self.safety_factor = safety_factor
        self._samples: deque = deque(maxlen=100_000)

    def observe(self, t: float, rate: float) -> None:
        self._samples.append((t, rate))

    def predict(self, t0: float, t1: float) -> float:
        if not self._samples:
            from repro.errors import PredictionError

            raise PredictionError("seasonal-naive: no history yet")
        target = 0.5 * (t0 + t1) - self.period
        best = min(self._samples, key=lambda s: abs(s[0] - target))
        # Warm-up: if yesterday's sample is too far away, use the latest.
        if abs(best[0] - target) > self.period / 4:
            best = self._samples[-1]
        return best[1] * self.safety_factor


def bursty_scenario() -> ScenarioConfig:
    workload = MMPPWorkload(
        low_rate=2.0,
        high_rate=12.0,
        mean_low_sojourn=3 * 3600.0,
        mean_high_sojourn=3 * 3600.0,
        base_service_time=1.0,
        window=60.0,
    )
    return ScenarioConfig(
        name="mmpp-bursty",
        workload=workload,
        qos=QoSTarget(max_response_time=3.0, min_utilization=0.80),
        horizon=2 * 86_400.0,
        update_interval=600.0,
        lead_time=60.0,
        rate_sample_interval=60.0,
        count_arrivals=True,
    )


def main() -> None:
    scenario = bursty_scenario()
    predictors = {
        "seasonal-naive": lambda ctx: SeasonalNaivePredictor(),
        "ewma": lambda ctx: EWMAPredictor(alpha=0.4, safety_factor=1.2),
        "oracle": lambda ctx: OraclePredictor(ctx.workload, mode="mean"),
    }
    rows = []
    for name, factory in predictors.items():
        policy = AdaptivePolicy(
            update_interval=600.0,
            predictor_factory=factory,
            initial_instances=5,
        )
        r = run_policy(scenario, policy, seed=0)
        rows.append(
            [name, f"{r.rejection_rate:.2%}", f"{r.utilization:.1%}", f"{r.vm_hours:.0f}"]
        )
    print(
        format_table(
            ["predictor", "rejection", "utilization", "VM hours"],
            rows,
            title="Custom predictor vs built-ins on 2 days of MMPP traffic",
        )
    )
    print("\nExpected outcome: the oracle (sees the realized burst phase) keeps")
    print("rejection near zero; EWMA chases bursts with a one-update lag; the")
    print("seasonal-naive predictor fails badly because MMPP traffic has no")
    print("daily seasonality — matching the forecaster to the workload matters.")
    print("\nImplement `predict(t0, t1)` (and optionally `observe`/`boundaries`)")
    print("on ArrivalRatePredictor to plug any forecaster into the analyzer.")


if __name__ == "__main__":
    main()
