#!/usr/bin/env python3
"""Quickstart — autoscale a web application for one simulated day.

Runs the paper's adaptive provisioning mechanism against the
Wikipedia-model web workload (rate-scaled for a fast demo) and compares
it with a fixed fleet, printing the QoS and cost metrics of both.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AdaptivePolicy, StaticPolicy, run_policy, web_scenario


def main() -> None:
    # One simulated Monday of diurnal web traffic.  ``scale`` divides
    # arrival rates and multiplies service times by the same factor,
    # which preserves fleet sizes, rejection, utilization and VM-hours
    # while keeping the demo fast (see DESIGN.md §4).
    scenario = web_scenario(scale=1000.0, horizon=86_400.0)
    print(f"scenario: {scenario.name}  (k = {scenario.capacity} per instance, "
          f"Ts = {scenario.qos.max_response_time / scenario.scale * 1000:.0f} ms at paper scale)")

    adaptive = run_policy(scenario, AdaptivePolicy(), seed=0)
    static = run_policy(scenario, StaticPolicy(150), seed=0)

    for result in (adaptive, static):
        print(f"\n--- {result.policy} ---")
        print(f"requests offered     : {result.total_requests:,}")
        print(f"rejection rate       : {result.rejection_rate:.2%}")
        print(f"QoS violations       : {result.qos_violations}")
        print(f"avg response time    : {result.mean_response_time * 1000:.1f} ms "
              f"(± {result.response_time_std * 1000:.1f} ms)")
        print(f"fleet size range     : {result.min_instances} – {result.max_instances} instances")
        print(f"VM hours             : {result.vm_hours:,.0f}")
        print(f"resource utilization : {result.utilization:.1%}")

    saving = 1.0 - adaptive.vm_hours / static.vm_hours
    print(f"\nAdaptive meets the same QoS with {saving:.0%} fewer VM-hours "
          f"than the peak-sized static fleet.")


if __name__ == "__main__":
    main()
