#!/usr/bin/env python3
"""Scientific Bag-of-Tasks provisioning — the paper's Figure-6 scenario.

Simulates one day of Grid-Workloads-Archive BoT jobs (Weibull
interarrivals, multi-task jobs, 300-second tasks) at full paper scale
and sweeps the adaptive policy against the paper's static fleets,
printing the Figure-6 panels as a table plus the adaptive fleet's
scaling timeline.

Usage::

    python examples/scientific_bot.py
"""

from __future__ import annotations

from repro import AdaptivePolicy, StaticPolicy, run_policy, scientific_scenario
from repro.metrics import format_table
from repro.sim.calendar import hms


def main() -> None:
    scenario = scientific_scenario(track_fleet_series=True)
    print("workload  : Grid Workloads Archive BoT model (Iosup et al.)")
    print("QoS       : Ts = 700 s, no rejections, utilization >= 80 %")
    print("horizon   : one day, peak window 8 a.m. – 5 p.m.\n")

    rows = []
    timeline = None
    for policy in (
        AdaptivePolicy(update_interval=1800.0),
        StaticPolicy(15),
        StaticPolicy(45),
        StaticPolicy(75),
    ):
        result = run_policy(scenario, policy, seed=0)
        rows.append(
            [
                result.policy,
                result.min_instances,
                result.max_instances,
                f"{result.rejection_rate:.2%}",
                f"{result.utilization:.1%}",
                f"{result.vm_hours:.0f}",
                f"{result.mean_response_time:.0f}",
            ]
        )
        if result.policy == "Adaptive":
            timeline = result.fleet_series

    print(
        format_table(
            ["policy", "min", "max", "rejection", "utilization", "VM hours", "avg Tr (s)"],
            rows,
            title="Figure 6 panels (one replication)",
        )
    )

    print("\nAdaptive fleet timeline (instance-count change points):")
    last = None
    for t, m in timeline:
        if m != last:
            print(f"  {hms(t)}  ->  {m:3d} instances")
            last = m


if __name__ == "__main__":
    main()
