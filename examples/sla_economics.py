#!/usr/bin/env python3
"""SLA economics — incentive-aware admission under contention (§VII).

Two customer classes share an undersized deployment: *gold* requests
earn 1.0 per served request and cost 2.0 per rejection; *bronze*
requests earn 0.2 and carry no penalty.  The example runs the same
overloaded afternoon twice — with flat admission and with value-ranked
trunk reservation — and compares the realized profit.

Usage::

    python examples/sla_economics.py
"""

from __future__ import annotations

from repro.core import StaticPolicy
from repro.core.sla import SLAAwareAdmission, SLAContract, SLAPortfolio
from repro.experiments import build_context, web_scenario
from repro.metrics import format_table

GOLD_SHARE = 0.3


def run(reservation_step: int):
    scenario = web_scenario(scale=1000.0, horizon=12 * 3600.0)
    ctx = build_context(scenario, seed=0)
    StaticPolicy(80).attach(ctx)  # noon needs ~128 instances: contention
    portfolio = SLAPortfolio(
        [
            SLAContract("gold", revenue_per_request=1.0, rejection_penalty=2.0),
            SLAContract("bronze", revenue_per_request=0.2),
        ]
    )
    admission = SLAAwareAdmission(
        ctx.fleet, ctx.monitor, portfolio, reservation_step=reservation_step
    )
    rng = ctx.streams.get("sla.classes")

    class FrontDoor:
        def submit(self, arrival_time: float) -> bool:
            klass = "gold" if rng.random() < GOLD_SHARE else "bronze"
            return admission.submit(arrival_time, klass)

    ctx.source._admission = FrontDoor()
    ctx.source.start()
    ctx.engine.run(until=scenario.horizon)
    return admission


def main() -> None:
    rows = []
    outcomes = {}
    for label, step in (("flat admission", 0), ("value-ranked reservation", 40)):
        adm = run(step)
        outcomes[label] = adm
        rows.append(
            [
                label,
                f"{adm.per_class['gold'].rejection_rate:.2%}",
                f"{adm.per_class['bronze'].rejection_rate:.2%}",
                f"{adm.profit():,.0f}",
            ]
        )
    print(
        format_table(
            ["admission", "gold rejection", "bronze rejection", "profit"],
            rows,
            title="SLA economics: 30% gold / 70% bronze on an undersized fleet",
        )
    )
    flat = outcomes["flat admission"].profit()
    smart = outcomes["value-ranked reservation"].profit()
    print(f"\nValue-ranked reservation improves profit by "
          f"{(smart - flat) / abs(flat):+.1%} — rejections migrate from the")
    print("penalized gold contract to the penalty-free bronze one, exactly the")
    print("SLA trade-off management the paper's future work calls for.")


if __name__ == "__main__":
    main()
