#!/usr/bin/env python3
"""Trace-driven provisioning — record, persist, and replay a workload.

Production users bring traces, not models.  This example records one
morning of the web model into a CSV trace, reloads it as a
:class:`TraceWorkload`, characterizes it (what should my predictor look
like?), and drives the adaptive provisioner from the trace alone —
using a reactive EWMA predictor with the profile-derived safety factor,
since a trace has no analytic rate curve to consult.

Usage::

    python examples/trace_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import AdaptivePolicy, run_policy
from repro.core import QoSTarget
from repro.experiments.scenario import ScenarioConfig
from repro.prediction import EWMAPredictor
from repro.workloads import (
    WebWorkload,
    characterize,
    load_trace,
    save_trace,
)


def record_trace(path: Path, horizon: float) -> int:
    """Sample one realized morning of (rate-scaled) web traffic."""
    workload = WebWorkload().scaled(1000.0)
    rng = np.random.default_rng(42)
    chunks = []
    t = 0.0
    while t < horizon:
        chunks.append(workload.sample_window(rng, t))
        t += workload.window
    arrivals = np.concatenate(chunks)
    save_trace(path, arrivals)
    return arrivals.size


def main() -> None:
    horizon = 10 * 3600.0  # midnight → 10 a.m. (rising demand)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "morning.csv"
        n = record_trace(trace_path, horizon)
        print(f"recorded {n:,} arrivals to {trace_path.name}")

        trace = load_trace(trace_path, base_service_time=100.0, service_jitter=0.10)

        profile = characterize(trace, np.random.default_rng(0), horizon, bin_width=60.0)
        factor = profile.recommended_safety_factor()
        print(f"trace profile: mean {profile.mean_rate:.2f} req/s, "
              f"p99 {profile.rate_p99:.2f}, batchiness {profile.batch_fraction:.1%}")
        print(f"derived predictor safety factor: x{factor:.2f}\n")

        scenario = ScenarioConfig(
            name="trace-replay",
            workload=trace,
            qos=QoSTarget(max_response_time=250.0, min_utilization=0.80),
            horizon=horizon,
            scale=1000.0,  # the trace was recorded at 1/1000 rate scale
            update_interval=600.0,
            lead_time=60.0,
            rate_sample_interval=60.0,
            count_arrivals=True,
        )
        policy = AdaptivePolicy(
            update_interval=600.0,
            predictor_factory=lambda ctx: EWMAPredictor(alpha=0.4, safety_factor=factor),
            initial_instances=40,
            deviation_threshold=0.5,
        )
        result = run_policy(scenario, policy, seed=0)

        print(f"replayed through the adaptive provisioner:")
        print(f"  fleet range   : {result.min_instances} - {result.max_instances} instances")
        print(f"  rejection     : {result.rejection_rate:.3%}")
        print(f"  QoS violations: {result.qos_violations}")
        print(f"  avg response  : {result.mean_response_time * 1000:.1f} ms (paper-scale)")
        print(f"  utilization   : {result.utilization:.1%}")


if __name__ == "__main__":
    main()
