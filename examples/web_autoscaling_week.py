#!/usr/bin/env python3
"""Full-week web autoscaling at paper scale — via the fluid engine.

The paper's web evaluation pushes ≈ 500 million requests through one
simulated week.  The fluid engine replays the *identical* control plane
(analyzer cadence + Algorithm 1) analytically, so the full-scale
experiment runs in well under a second.  This example regenerates the
paper's headline numbers and prints the adaptive fleet trajectory hour
by hour for the first two days.

Usage::

    python examples/web_autoscaling_week.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PerformanceModeler, QoSTarget
from repro.metrics import format_table
from repro.prediction import ModelInformedPredictor
from repro.sim.calendar import SECONDS_PER_WEEK, hms
from repro.sim.fluid import FluidSimulator
from repro.workloads import WebWorkload


def main() -> None:
    workload = WebWorkload()
    qos = QoSTarget(max_response_time=0.250, min_utilization=0.80)
    fluid = FluidSimulator(workload, qos, dt=60.0)
    modeler = PerformanceModeler(qos=qos, capacity=2, max_vms=8000)

    adaptive = fluid.run_adaptive(
        ModelInformedPredictor(workload, mode="max"),
        modeler,
        horizon=SECONDS_PER_WEEK,
        update_interval=900.0,
        lead_time=60.0,
    )
    static150 = fluid.run_static(150, SECONDS_PER_WEEK)

    rows = [
        [
            name,
            r.min_instances,
            r.max_instances,
            f"{r.rejection_rate:.3%}",
            f"{r.utilization:.1%}",
            f"{r.vm_hours:,.0f}",
        ]
        for name, r in (("Adaptive", adaptive), ("Static-150", static150))
    ]
    print(
        format_table(
            ["policy", "min", "max", "rejection", "utilization", "VM hours"],
            rows,
            title=f"One week, {adaptive.total_requests/1e6:.0f} M requests (paper: 500.12 M)",
        )
    )
    saving = 1.0 - adaptive.vm_hours / static150.vm_hours
    print(f"\nequivalent 24/7 fleet : {adaptive.vm_hours/168:.0f} instances (paper: 111)")
    print(f"VM-hour saving        : {saving:.0%} (paper: 26%)\n")

    print("Adaptive fleet, first 48 hours (sampled hourly):")
    series = np.array(adaptive.fleet_series)
    for hour in range(0, 48, 3):
        t = hour * 3600.0
        idx = np.searchsorted(series[:, 0], t, side="right") - 1
        m = int(series[max(idx, 0), 1])
        rate = float(workload.mean_rate(t))
        bar = "#" * (m // 4)
        print(f"  {hms(t)}  rate={rate:6.0f} req/s  m={m:3d}  {bar}")


if __name__ == "__main__":
    main()
