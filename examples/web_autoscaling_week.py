#!/usr/bin/env python3
"""Full-week web autoscaling at paper scale — via the fluid engine.

The paper's web evaluation pushes ≈ 500 million requests through one
simulated week.  The fluid backend replays the *identical* control
plane (analyzer cadence + Algorithm 1) analytically, so the full-scale
experiment runs in well under a second — same ``run_policy`` entry
point as the DES, just ``backend="fluid"``.  This example regenerates
the paper's headline numbers and prints the adaptive fleet trajectory
hour by hour for the first two days.

Usage::

    python examples/web_autoscaling_week.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptivePolicy, StaticPolicy
from repro.experiments import run_policy, web_scenario
from repro.metrics import format_table
from repro.sim.calendar import hms


def main() -> None:
    scenario = web_scenario()  # full paper scale, one week
    workload = scenario.workload

    adaptive = run_policy(scenario, AdaptivePolicy(), backend="fluid")
    static150 = run_policy(scenario, StaticPolicy(150), backend="fluid")

    rows = [
        [
            name,
            r.min_instances,
            r.max_instances,
            f"{r.rejection_rate:.3%}",
            f"{r.utilization:.1%}",
            f"{r.vm_hours:,.0f}",
        ]
        for name, r in (("Adaptive", adaptive), ("Static-150", static150))
    ]
    print(
        format_table(
            ["policy", "min", "max", "rejection", "utilization", "VM hours"],
            rows,
            title=f"One week, {adaptive.total_requests/1e6:.0f} M requests (paper: 500.12 M)",
        )
    )
    saving = 1.0 - adaptive.vm_hours / static150.vm_hours
    print(f"\nequivalent 24/7 fleet : {adaptive.vm_hours/168:.0f} instances (paper: 111)")
    print(f"VM-hour saving        : {saving:.0%} (paper: 26%)\n")

    print("Adaptive fleet, first 48 hours (sampled hourly):")
    series = np.array(adaptive.fleet_series)
    for hour in range(0, 48, 3):
        t = hour * 3600.0
        idx = np.searchsorted(series[:, 0], t, side="right") - 1
        m = int(series[max(idx, 0), 1])
        rate = float(workload.mean_rate(t))
        bar = "#" * (m // 4)
        print(f"  {hms(t)}  rate={rate:6.0f} req/s  m={m:3d}  {bar}")


if __name__ == "__main__":
    main()
