"""Setup shim.

``pip install -e .`` needs the ``wheel`` package (PEP 660 editable
wheels); on fully-offline machines without it, ``python setup.py
develop`` installs the same editable package using only setuptools.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
