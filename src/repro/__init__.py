"""repro — adaptive QoS-driven VM provisioning with analytical models.

A faithful, from-scratch Python reproduction of

    R. N. Calheiros, R. Ranjan, R. Buyya,
    "Virtual Machine Provisioning Based on Analytical Performance and
    QoS in Cloud Computing Environments", ICPP 2011.

The library contains the paper's adaptive provisioning mechanism
(workload analyzer → Algorithm-1 performance modeler → application
provisioner) plus every substrate it is evaluated on: a discrete-event
cloud simulator, an analytical queueing library, the two production
workload models, admission control, load balancing, and a full
benchmark harness regenerating every table and figure.

Quickstart
----------
>>> from repro import web_scenario, AdaptivePolicy, run_policy
>>> scenario = web_scenario(scale=2000.0, horizon=86_400.0)
>>> result = run_policy(scenario, AdaptivePolicy(), seed=0)
>>> result.rejection_rate < 0.01
True
"""

from ._version import __version__
from .backends import DESBackend, ExecutionBackend, FluidBackend, RunMetrics, resolve_backend
from .core import (
    AdaptivePolicy,
    ApplicationProvisioner,
    PerformanceModeler,
    ProvisioningDecision,
    ProvisioningPolicy,
    QoSTarget,
    SimulationContext,
    StaticPolicy,
    VerticalScalingPolicy,
    WorkloadAnalyzer,
)
from .experiments import (
    PolicySpec,
    RunResult,
    ScenarioConfig,
    run_policy,
    run_replications,
    scientific_scenario,
    web_scenario,
)
from .sim import Engine, RandomStreams
from .workloads import (
    MMPPWorkload,
    PiecewiseRateWorkload,
    PoissonWorkload,
    ScientificWorkload,
    TraceWorkload,
    WebWorkload,
    Workload,
)

__all__ = [
    "__version__",
    # core mechanism
    "QoSTarget",
    "PerformanceModeler",
    "ProvisioningDecision",
    "WorkloadAnalyzer",
    "ApplicationProvisioner",
    "ProvisioningPolicy",
    "AdaptivePolicy",
    "StaticPolicy",
    "VerticalScalingPolicy",
    "SimulationContext",
    # simulation
    "Engine",
    "RandomStreams",
    "FluidSimulator",
    "FluidAggregates",
    # backends
    "ExecutionBackend",
    "DESBackend",
    "FluidBackend",
    "RunMetrics",
    "resolve_backend",
    # workloads
    "Workload",
    "WebWorkload",
    "ScientificWorkload",
    "PoissonWorkload",
    "PiecewiseRateWorkload",
    "MMPPWorkload",
    "TraceWorkload",
    # experiments
    "ScenarioConfig",
    "web_scenario",
    "scientific_scenario",
    "run_policy",
    "run_replications",
    "PolicySpec",
    "RunResult",
]


def __getattr__(name: str):
    # Lazy PEP-562 exports: the package root must not import both
    # engines at module level (repro.backends is the only module
    # allowed to — see docs/architecture.md), so the fluid engine's
    # classes resolve on first attribute access instead.
    if name in ("FluidSimulator", "FluidAggregates"):
        from .sim import fluid

        return getattr(fluid, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
