"""Pluggable execution backends for the shared control plane.

``repro.backends`` is the seam between "what to run" (a scenario and a
policy) and "how to run it":

* :class:`~repro.backends.des.DESBackend` — event-per-request
  discrete-event simulation (exact, slow at paper scale);
* :class:`~repro.backends.des_vec.DESVecBackend` — batched
  structure-of-arrays DES (exact queueing dynamics, arrivals and
  completions move through numpy kernels between control epochs);
* :class:`~repro.backends.fluid.FluidBackend` — interval-analytical
  flow evaluation (approximate data plane, exact control plane, fast
  at any scale).

Both produce the unified :class:`~repro.backends.base.RunMetrics` and
both execute the same :mod:`repro.core.controlplane` code, which is
what makes them cross-checkable.  This package is the only module
allowed to import both engines (``repro.sim`` event kernel *and*
``repro.sim.fluid``) — see ``docs/architecture.md``.
"""

from .base import BACKENDS, ExecutionBackend, RunMetrics, resolve_backend
from .des import DESBackend, build_context
from .des_vec import DESVecBackend, build_vec_context
from .fluid import FluidBackend

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "RunMetrics",
    "resolve_backend",
    "DESBackend",
    "DESVecBackend",
    "FluidBackend",
    "build_context",
    "build_vec_context",
]
