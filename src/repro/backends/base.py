"""Execution-backend protocol and the unified run-metrics record.

A *backend* is a way of executing one ``(scenario, policy)``
replication: the event-per-request DES (:class:`~repro.backends.des.DESBackend`)
or the interval-analytical fluid engine
(:class:`~repro.backends.fluid.FluidBackend`).  Both satisfy
:class:`ExecutionBackend` and both return the same
:class:`RunMetrics` record, so everything downstream — replication
fan-out, persistence, figures, the CLI perf summary, trace validation —
works identically regardless of how the run was executed.

This package is deliberately the **only** place in the library that
imports both engines (enforced by the ``layering`` lint rule): the
control plane in :mod:`repro.core` knows neither, and each engine knows
nothing about the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

try:
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py3.7 fallback, not supported
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from ..errors import ConfigurationError

__all__ = ["RunMetrics", "ExecutionBackend", "resolve_backend", "BACKENDS"]


@dataclass(frozen=True)
class RunMetrics:
    """Output metrics of one replication, on any backend.

    The union of the DES runner's result fields and the fluid engine's
    aggregates, tagged with the executing backend.  Fields that a
    backend cannot measure are reported as 0 (documented per field); a
    consumer that needs to distinguish "zero" from "not measured"
    should branch on :attr:`backend`.

    Attributes
    ----------
    scenario, policy, seed:
        Identification of the run.  The fluid backend is deterministic,
        so ``seed`` merely echoes the requested replication index.
    total_requests, accepted, completed, rejected:
        Arrival accounting.  Integers on the DES; *expected* counts
        (floats) on the fluid backend, where ``completed`` equals
        ``accepted`` (flows always drain).
    rejection_rate:
        Fraction of arrivals rejected.
    mean_response_time, response_time_std:
        Accepted-request response statistics, divided by the scenario
        scale factor so they are directly comparable to the paper.
        The fluid backend has no per-request distribution: its mean is
        the accepted-flow-weighted sojourn and its std is 0.
    qos_violations:
        Accepted requests that exceeded ``T_s`` (DES only; 0 on fluid).
    min_instances, max_instances:
        Fleet-size extrema observed during the run.
    vm_hours:
        Σ instance wall-clock lifetime in hours (Figure 5(c)/6(c)).
    core_hours:
        Σ allocated cores × wall-clock hours; equals ``vm_hours`` for
        one-core fleets.
    failures, lost_requests:
        Failure-injection accounting (0 without an injector; always 0
        on the fluid backend).
    utilization:
        Busy time / provisioned VM time (Figure 5(b)/6(b)).
    wall_seconds:
        Host wall-clock of the run — the only field that is not a
        deterministic function of (scenario, policy, seed, backend).
    events:
        DES: engine events fired.  Fluid: integration intervals
        evaluated.  Either way, the backend's unit of work.
    fleet_series:
        ``(time, instances)`` trajectory.  DES: per instance-lifecycle
        change when the scenario tracks it (empty otherwise).  Fluid:
        the control trajectory (one entry per decision).
    control_series:
        ``(time, fleet_size_reached)`` per control-plane actuation —
        the backend-independent trajectory that
        ``tests/test_backend_xcheck.py`` compares bit-for-bit.  Empty
        for policies without a control plane (Static-N on the DES).
    backend:
        ``"des"`` or ``"fluid"``.
    cache_hits, cache_misses:
        Algorithm-1 decision-cache counters of the run's modeler
        (both 0 for policies without one, e.g. Static-N).
    compactions:
        Heap compactions the engine performed (0 on fluid — there is
        no event heap).
    profile:
        :meth:`repro.obs.profile.RunProfile.to_dict` snapshot of the
        run's phase wall-clock and event counters.  Excluded from
        equality (``compare=False``): timings are nondeterministic, so
        sequential and parallel replications still compare equal.
    telemetry:
        :meth:`repro.obs.metrics.RunTelemetry.finalize` dump (registry
        state + snapshot series) when the run was executed with a
        :class:`~repro.obs.metrics.MetricsConfig`; empty otherwise.
        Excluded from equality like ``profile`` so metrics-on and
        metrics-off replications of the same run still compare equal.
    revenue, cost, penalty, profit:
        :class:`~repro.economy.ledger.ProfitLedger` end-of-run billing
        (all 0 when the scenario has no pricing model).  ``profit`` is
        always ``revenue - cost - penalty``.
    spot_vm_hours:
        VM hours billed at the discounted spot rate (0 without a
        :class:`~repro.economy.policies.SpotPolicy`).
    revocations:
        Spot instances reclaimed by the provider during the run
        (distinct from :attr:`failures`, which counts fault-injector
        crashes).
    """

    scenario: str
    policy: str
    seed: int
    total_requests: float
    accepted: float
    completed: float
    rejected: float
    rejection_rate: float
    mean_response_time: float
    response_time_std: float
    qos_violations: int
    min_instances: int
    max_instances: int
    vm_hours: float
    core_hours: float
    failures: int
    lost_requests: int
    utilization: float
    wall_seconds: float
    events: int
    fleet_series: Tuple[Tuple[float, int], ...] = ()
    control_series: Tuple[Tuple[float, int], ...] = ()
    backend: str = "des"
    cache_hits: int = 0
    cache_misses: int = 0
    compactions: int = 0
    revenue: float = 0.0
    cost: float = 0.0
    penalty: float = 0.0
    profit: float = 0.0
    spot_vm_hours: float = 0.0
    revocations: int = 0
    profile: Dict[str, Dict[str, float]] = field(default_factory=dict, compare=False)
    telemetry: Dict[str, object] = field(default_factory=dict, compare=False)

    @property
    def qos_attainment(self) -> float:
        """``P[T <= Ts]`` over all submitted requests.

        The paper's QoS objective: the fraction of *arrivals* served
        within ``T_s``.  Rejected and lost requests never complete, so
        they count against attainment — a policy that trims the fleet
        and sheds load pays for it here, which is exactly the
        profit-vs-QoS tension the economy campaign tabulates.  1.0 when
        the run saw no demand.
        """
        if self.total_requests <= 0:
            return 1.0
        met = max(0.0, self.completed - self.qos_violations)
        return min(1.0, met / self.total_requests)


@runtime_checkable
class ExecutionBackend(Protocol):
    """One way of executing a ``(scenario, policy)`` replication."""

    #: Backend tag stamped into every :class:`RunMetrics` it produces.
    name: str

    def run(
        self,
        scenario,
        policy,
        seed: int = 0,
        balancer=None,
        trace=None,
        audit=None,
        metrics=None,
    ) -> RunMetrics:
        """Execute one replication and return its unified metrics."""
        ...  # pragma: no cover - protocol body


def _make_des() -> "ExecutionBackend":
    from .des import DESBackend

    return DESBackend()


def _make_fluid() -> "ExecutionBackend":
    from .fluid import FluidBackend

    return FluidBackend()


def _make_des_vec() -> "ExecutionBackend":
    from .des_vec import DESVecBackend

    return DESVecBackend()


#: Backend registry: spec string → zero-argument factory.
BACKENDS = {"des": _make_des, "des-vec": _make_des_vec, "fluid": _make_fluid}


def resolve_backend(
    spec: Union[str, ExecutionBackend, None],
) -> "ExecutionBackend":
    """Turn a backend spec into a ready :class:`ExecutionBackend`.

    ``None`` and ``"des"`` give the default DES backend, ``"des-vec"``
    the vectorized (batched structure-of-arrays) DES, ``"fluid"`` the
    fluid backend, and an object with ``run`` + ``name`` passes
    through unchanged (so callers can hand in a pre-configured
    ``FluidBackend(dt=10.0)``).
    """
    if spec is None:
        return _make_des()
    if isinstance(spec, str):
        factory = BACKENDS.get(spec)
        if factory is None:
            raise ConfigurationError(
                f"unknown backend {spec!r}; expected one of {sorted(BACKENDS)}"
            )
        return factory()
    if callable(getattr(spec, "run", None)) and hasattr(spec, "name"):
        return spec
    raise ConfigurationError(
        f"cannot interpret {spec!r} as an execution backend; "
        "pass 'des', 'fluid', or an ExecutionBackend instance"
    )
