"""DES execution backend — event-per-request simulation.

Home of :func:`build_context` (the data-plane wiring that used to live
in ``repro.experiments.runner``) and :class:`DESBackend`, which runs
one replication through the event loop and reports the unified
:class:`~repro.backends.base.RunMetrics`.

Replications use spawned random streams (seed 0, 1, 2 …), so each is
independent yet exactly reproducible, and policies compared on the same
replication index share identical arrival streams (common random
numbers — the variance-reduction discipline the static-vs-adaptive
comparison benefits from).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from ..cloud.admission import AdmissionControl
from ..cloud.broker import WorkloadSource
from ..cloud.datacenter import Datacenter
from ..cloud.fleet import ApplicationFleet
from ..cloud.loadbalancer import LoadBalancer
from ..cloud.monitor import Monitor
from ..core.context import SimulationContext
from ..core.policies import ProvisioningPolicy
from ..economy.ledger import ProfitLedger
from ..metrics.collector import MetricsCollector
from ..obs.bus import TraceBus, TraceConfig
from ..obs.metrics import MetricsConfig, RunTelemetry
from ..obs.profile import RunProfile, Stopwatch
from ..sim.engine import Engine
from ..sim.rng import RandomStreams
from .base import RunMetrics

if TYPE_CHECKING:  # pragma: no cover - import-time only for annotations
    from ..experiments.scenario import ScenarioConfig

__all__ = ["DESBackend", "build_context"]


def build_context(
    scenario: "ScenarioConfig",
    seed: int = 0,
    balancer: Optional[LoadBalancer] = None,
    tracer: Optional[TraceBus] = None,
    audit: Optional[object] = None,
    registry: Optional[object] = None,
) -> SimulationContext:
    """Wire the data plane of one replication (no policy attached).

    ``tracer`` (a :class:`~repro.obs.bus.TraceBus`), ``audit`` (a
    :class:`~repro.obs.audit.DecisionAuditLog`) and ``registry`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) are threaded into every
    instrumented component; all default to ``None`` — observability off.
    """
    streams = RandomStreams(seed)
    engine = Engine(tracer=tracer)
    workload = scenario.workload
    metrics = MetricsCollector(
        qos_response_time=scenario.qos.max_response_time,
        track_fleet_series=scenario.track_fleet_series,
    )
    datacenter = Datacenter(
        num_hosts=scenario.num_hosts,
        cores_per_host=scenario.cores_per_host,
        ram_per_host_mb=scenario.ram_per_host_mb,
    )
    monitor = Monitor(
        engine=engine,
        metrics=metrics,
        default_service_time=workload.mean_service_time,
        rate_sample_interval=scenario.rate_sample_interval,
        tracer=tracer,
        registry=registry,
    )
    sampler = workload.service_sampler(streams.get("service"))
    capacity = scenario.capacity
    fleet = ApplicationFleet(
        engine=engine,
        datacenter=datacenter,
        sampler=sampler,
        monitor=monitor,
        metrics=metrics,
        capacity=capacity,
        balancer=balancer,
        boot_delay=scenario.boot_delay,
        tracer=tracer,
    )
    admission = AdmissionControl(
        fleet, monitor, count_arrivals=scenario.count_arrivals, tracer=tracer
    )
    source = WorkloadSource(
        engine=engine,
        workload=workload,
        rng=streams.get("arrivals"),
        admission=admission,
        horizon=scenario.horizon,
        tracer=tracer,
    )
    return SimulationContext(
        engine=engine,
        streams=streams,
        workload=workload,
        qos=scenario.qos,
        capacity=capacity,
        datacenter=datacenter,
        fleet=fleet,
        monitor=monitor,
        metrics=metrics,
        admission=admission,
        source=source,
        horizon=scenario.horizon,
        tracer=tracer,
        audit=audit,
        registry=registry,
    )


def _build_telemetry(
    metrics: MetricsConfig,
    registry,
    scenario: "ScenarioConfig",
    ctx: SimulationContext,
    tracer: Optional[TraceBus],
) -> RunTelemetry:
    """One :class:`RunTelemetry` wired to a built DES context.

    Shared by the scalar and vectorized DES backends so both sample the
    identical snapshot fields at the identical cadence
    (``metrics.interval`` falling back to the scenario's control epoch).
    """
    modeler = getattr(ctx.provisioner, "modeler", None)
    cache_fn = (
        (lambda md=modeler: (md.cache_hits, md.cache_misses))
        if modeler is not None
        else None
    )
    return RunTelemetry(
        registry,
        metrics,
        scenario.qos.max_response_time,
        metrics.interval if metrics.interval is not None else scenario.update_interval,
        collector=ctx.metrics,
        fleet_size_fn=lambda f=ctx.fleet: f.serving_count,
        cache_fn=cache_fn,
        tracer=tracer,
    )


def _build_ledger(
    scenario: "ScenarioConfig",
    policy: ProvisioningPolicy,
    ctx: SimulationContext,
    tracer: Optional[TraceBus],
    registry,
) -> Optional[ProfitLedger]:
    """One :class:`ProfitLedger` wired to a built DES context.

    ``None`` when the scenario carries no pricing model — economics is
    strictly opt-in, so priced and unpriced runs differ only by the
    extra low-priority accounting tick.  Shared by the scalar and
    vectorized DES backends so both bill at the identical cadence.
    """
    if scenario.pricing is None:
        return None
    return ProfitLedger(
        scenario.pricing,
        interval=scenario.update_interval,
        cores_per_vm=float(ctx.fleet.vm_spec.cores),
        spot_fraction=float(getattr(policy, "spot_fraction", 0.0)),
        collector=ctx.metrics,
        vm_hours_fn=ctx.datacenter.vm_hours,
        tracer=tracer,
        registry=registry,
    )


def _finalize_ledger(ledger: Optional[ProfitLedger], ctx, now: float) -> dict:
    """Close the ledger and return the economy RunMetrics kwargs."""
    if ledger is None:
        return {}
    revoker = getattr(ctx, "revoker", None)
    totals = ledger.finalize(
        now, revocations=revoker.revocations if revoker is not None else 0
    )
    return dict(
        revenue=totals.revenue,
        cost=totals.cost,
        penalty=totals.penalty,
        profit=totals.profit,
        spot_vm_hours=totals.spot_vm_hours,
        revocations=totals.revocations,
    )


class DESBackend:
    """Event-per-request execution of one replication."""

    name = "des"

    def run(
        self,
        scenario: "ScenarioConfig",
        policy: ProvisioningPolicy,
        seed: int = 0,
        balancer: Optional[LoadBalancer] = None,
        trace: Optional[Union[TraceConfig, TraceBus]] = None,
        audit: Optional[object] = None,
        metrics: Optional[MetricsConfig] = None,
    ) -> RunMetrics:
        """Run one replication of (scenario, policy) and collect metrics.

        Parameters
        ----------
        trace:
            ``None`` (default) runs untraced.  A
            :class:`~repro.obs.bus.TraceConfig` builds (and closes) a
            per-run bus — this is the picklable form the parallel path
            needs.  A ready :class:`~repro.obs.bus.TraceBus` is used
            as-is and left open, so callers can inspect an in-memory
            ring buffer after the run.
        audit:
            Optional :class:`~repro.obs.audit.DecisionAuditLog`
            capturing every Algorithm-1 invocation of this run.
        metrics:
            Optional :class:`~repro.obs.metrics.MetricsConfig`.  When
            set, the run carries a metrics registry (response-time
            histogram fed by the monitor, control-plane counters) and a
            periodic ``metrics.snapshot`` sampler; the finalized
            telemetry lands in :attr:`RunMetrics.telemetry` (and on
            disk when the config has a ``path``).
        """
        profile = RunProfile()
        if isinstance(trace, TraceConfig):
            tracer: Optional[TraceBus] = trace.build(scenario.name, policy.name, seed)
            owns_bus = True
        else:
            tracer = trace
            owns_bus = False
        telemetry: Optional[RunTelemetry] = None
        try:
            if tracer is not None:
                tracer.emit(
                    "run.start",
                    0.0,
                    scenario=scenario.name,
                    policy=policy.name,
                    seed=int(seed),
                )
            with profile.phase("build"):
                registry = (
                    metrics.build(scenario.qos.max_response_time)
                    if metrics is not None
                    else None
                )
                ctx = build_context(
                    scenario, seed, balancer, tracer=tracer, audit=audit,
                    registry=registry,
                )
                policy.attach(ctx)
                ledger = _build_ledger(scenario, policy, ctx, tracer, registry)
                if ledger is not None:
                    ledger.install(ctx.engine)
                telemetry = (
                    _build_telemetry(metrics, registry, scenario, ctx, tracer)
                    if metrics is not None
                    else None
                )
                if telemetry is not None:
                    telemetry.install(ctx.engine)
                    if metrics.path and not metrics.history:
                        # History off + path on: stream each snapshot
                        # to disk as it is taken.
                        telemetry.open_stream(
                            metrics.resolve_path(scenario.name, policy.name, seed)
                        )
                ctx.source.start()
            watch = Stopwatch()
            with profile.phase("run"):
                ctx.engine.run(until=scenario.horizon)
            wall = watch.elapsed()
            with profile.phase("finalize"):
                now = ctx.engine.now
                ctx.metrics.finalize(now, ctx.datacenter.vm_hours(now))
                m = ctx.metrics
                scale = scenario.scale
                modeler = getattr(ctx.provisioner, "modeler", None)
                cache_hits = modeler.cache_hits if modeler is not None else 0
                cache_misses = modeler.cache_misses if modeler is not None else 0
                control = getattr(ctx.provisioner, "control", None)
                control_series = control.trajectory if control is not None else ()
                economy = _finalize_ledger(ledger, ctx, now)
                telemetry_dict: dict = {}
                if telemetry is not None:
                    telemetry_dict = telemetry.finalize(
                        m.total_requests,
                        m.accepted,
                        m.rejected,
                        m.completed,
                        m.violations,
                        ctx.fleet.serving_count,
                        cache_hits=cache_hits,
                        cache_misses=cache_misses,
                    )
                    if metrics.path:
                        telemetry.write_jsonl(
                            metrics.resolve_path(scenario.name, policy.name, seed)
                        )
            profile.count("events", ctx.engine.events_fired)
            profile.count("compactions", ctx.engine.compactions)
            if tracer is not None:
                tracer.emit(
                    "run.end",
                    now,
                    events=ctx.engine.events_fired,
                    compactions=ctx.engine.compactions,
                )
                profile.count("trace_events", tracer.emitted)
            return RunMetrics(
                scenario=scenario.name,
                policy=policy.name,
                seed=seed,
                total_requests=m.total_requests,
                accepted=m.accepted,
                completed=m.completed,
                rejected=m.rejected,
                rejection_rate=m.rejection_rate,
                mean_response_time=m.mean_response_time / scale,
                response_time_std=m.response_time_std / scale,
                qos_violations=m.violations,
                min_instances=m.min_instances if m.min_instances is not None else 0,
                max_instances=m.max_instances if m.max_instances is not None else 0,
                vm_hours=m.vm_hours,
                core_hours=ctx.datacenter.core_hours(now),
                failures=m.failures,
                lost_requests=m.lost_requests,
                utilization=m.utilization,
                wall_seconds=wall,
                events=ctx.engine.events_fired,
                fleet_series=tuple(m.fleet_series),
                control_series=control_series,
                backend=self.name,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                compactions=ctx.engine.compactions,
                profile=profile.to_dict(),
                telemetry=telemetry_dict,
                **economy,
            )
        finally:
            if telemetry is not None:
                telemetry.close_stream()
            if owns_bus and tracer is not None:
                tracer.close()
