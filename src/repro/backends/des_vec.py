"""Vectorized DES execution backend — batched event simulation.

:class:`DESVecBackend` runs the same ``(scenario, policy)`` replication
contract as :class:`~repro.backends.des.DESBackend`, with the
per-request hot loop replaced by the structure-of-arrays data plane
(:class:`~repro.cloud.vecfleet.VectorFleet` over
:mod:`repro.sim.batch`).  Python events are only materialized at
control-plane epochs — analyzer alerts, Algorithm-1 decisions, VM
boots, monitor samples — where the unchanged
:mod:`repro.core.controlplane` machinery takes over; between epochs,
whole arrival blocks move through numpy kernels.

The control trajectory is bit-identical to the scalar DES (the
``tests/test_batch_engine.py`` cross-checks), and on jitterless
scenarios the data plane itself is exact: accepted/rejected/completed
counts and QoS violations match the scalar engine one for one.  Under
service jitter the two backends consume the service random stream in a
different order (per-window block draws vs per-start draws), so
per-request outcomes are statistically, not pointwise, identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from ..cloud.broker import WorkloadSource
from ..cloud.datacenter import Datacenter
from ..cloud.loadbalancer import LoadBalancer
from ..cloud.monitor import Monitor
from ..cloud.vecfleet import VectorFleet
from ..core.context import SimulationContext
from ..core.policies import ProvisioningPolicy
from ..metrics.collector import MetricsCollector
from ..obs.bus import TraceBus, TraceConfig
from ..obs.metrics import MetricsConfig
from ..obs.profile import RunProfile, Stopwatch
from ..sim.engine import Engine
from ..sim.rng import RandomStreams
from .base import RunMetrics
from .des import _build_ledger, _build_telemetry, _finalize_ledger

if TYPE_CHECKING:  # pragma: no cover - import-time only for annotations
    from ..experiments.scenario import ScenarioConfig

__all__ = ["DESVecBackend", "build_vec_context"]


def build_vec_context(
    scenario: "ScenarioConfig",
    seed: int = 0,
    balancer: Optional[LoadBalancer] = None,
    tracer: Optional[TraceBus] = None,
    audit: Optional[object] = None,
    max_block: int = 65_536,
    registry: Optional[object] = None,
) -> SimulationContext:
    """Wire the batched data plane of one replication (no policy attached).

    Mirrors :func:`repro.backends.des.build_context` — same streams,
    same component construction order — but the fleet is a
    :class:`VectorFleet` and the broker hands whole arrival windows to
    it instead of walking a per-arrival cursor.  There is no admission
    object: the fleet's block loop *is* the admission gate (the paper's
    all-instances-full test, evaluated in bulk).
    """
    streams = RandomStreams(seed)
    engine = Engine(tracer=tracer)
    workload = scenario.workload
    metrics = MetricsCollector(
        qos_response_time=scenario.qos.max_response_time,
        track_fleet_series=scenario.track_fleet_series,
    )
    datacenter = Datacenter(
        num_hosts=scenario.num_hosts,
        cores_per_host=scenario.cores_per_host,
        ram_per_host_mb=scenario.ram_per_host_mb,
    )
    monitor = Monitor(
        engine=engine,
        metrics=metrics,
        default_service_time=workload.mean_service_time,
        rate_sample_interval=scenario.rate_sample_interval,
        tracer=tracer,
        registry=registry,
    )
    sampler = workload.service_sampler(streams.get("service"))
    capacity = scenario.capacity
    fleet = VectorFleet(
        engine=engine,
        datacenter=datacenter,
        sampler=sampler,
        monitor=monitor,
        metrics=metrics,
        capacity=capacity,
        balancer=balancer,
        boot_delay=scenario.boot_delay,
        tracer=tracer,
        max_block=max_block,
        count_arrivals=scenario.count_arrivals,
        registry=registry,
    )
    source = WorkloadSource(
        engine=engine,
        workload=workload,
        rng=streams.get("arrivals"),
        horizon=scenario.horizon,
        tracer=tracer,
        sink=fleet,
    )
    return SimulationContext(
        engine=engine,
        streams=streams,
        workload=workload,
        qos=scenario.qos,
        capacity=capacity,
        datacenter=datacenter,
        fleet=fleet,
        monitor=monitor,
        metrics=metrics,
        admission=None,
        source=source,
        horizon=scenario.horizon,
        tracer=tracer,
        audit=audit,
        registry=registry,
    )


class DESVecBackend:
    """Batched structure-of-arrays execution of one replication.

    Parameters
    ----------
    max_block:
        Upper bound on one arrival block (a memory/latency knob; the
        results are provably block-size invariant).
    """

    name = "des-vec"

    def __init__(self, max_block: int = 65_536) -> None:
        self.max_block = int(max_block)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DESVecBackend(max_block={self.max_block!r})"

    def run(
        self,
        scenario: "ScenarioConfig",
        policy: ProvisioningPolicy,
        seed: int = 0,
        balancer: Optional[LoadBalancer] = None,
        trace: Optional[Union[TraceConfig, TraceBus]] = None,
        audit: Optional[object] = None,
        metrics: Optional[MetricsConfig] = None,
    ) -> RunMetrics:
        """Run one replication through the epoch loop and collect metrics.

        ``trace``/``audit``/``metrics`` behave exactly as on the scalar
        DES backend; traced runs additionally emit one ``batch.span``
        summary per non-empty epoch span, and the metrics registry
        additionally counts spans and flushed requests.
        """
        profile = RunProfile()
        if isinstance(trace, TraceConfig):
            tracer: Optional[TraceBus] = trace.build(scenario.name, policy.name, seed)
            owns_bus = True
        else:
            tracer = trace
            owns_bus = False
        telemetry = None
        try:
            if tracer is not None:
                tracer.emit(
                    "run.start",
                    0.0,
                    scenario=scenario.name,
                    policy=policy.name,
                    seed=int(seed),
                )
            with profile.phase("build"):
                registry = (
                    metrics.build(scenario.qos.max_response_time)
                    if metrics is not None
                    else None
                )
                ctx = build_vec_context(
                    scenario,
                    seed,
                    balancer,
                    tracer=tracer,
                    audit=audit,
                    max_block=self.max_block,
                    registry=registry,
                )
                policy.attach(ctx)
                ledger = _build_ledger(scenario, policy, ctx, tracer, registry)
                if ledger is not None:
                    ledger.install(ctx.engine)
                telemetry = (
                    _build_telemetry(metrics, registry, scenario, ctx, tracer)
                    if metrics is not None
                    else None
                )
                if telemetry is not None:
                    telemetry.install(ctx.engine)
                    if metrics.path and not metrics.history:
                        # History off + path on: stream each snapshot
                        # to disk as it is taken.
                        telemetry.open_stream(
                            metrics.resolve_path(scenario.name, policy.name, seed)
                        )
                ctx.source.start()
            watch = Stopwatch()
            with profile.phase("run"):
                engine = ctx.engine
                plane = ctx.fleet
                horizon = scenario.horizon
                # Epoch loop: advance the array data plane to each
                # engine event's timestamp, then fire the event.
                while True:
                    t_next = engine.peek()
                    if t_next is None or t_next > horizon:
                        break
                    plane.advance(t_next)
                    engine.step()
                plane.finish(horizon)
                engine.run(until=horizon)
            wall = watch.elapsed()
            with profile.phase("finalize"):
                now = ctx.engine.now
                ctx.metrics.finalize(now, ctx.datacenter.vm_hours(now))
                m = ctx.metrics
                scale = scenario.scale
                modeler = getattr(ctx.provisioner, "modeler", None)
                cache_hits = modeler.cache_hits if modeler is not None else 0
                cache_misses = modeler.cache_misses if modeler is not None else 0
                control = getattr(ctx.provisioner, "control", None)
                control_series = control.trajectory if control is not None else ()
                economy = _finalize_ledger(ledger, ctx, now)
                telemetry_dict: dict = {}
                if telemetry is not None:
                    telemetry_dict = telemetry.finalize(
                        m.total_requests,
                        m.accepted,
                        m.rejected,
                        m.completed,
                        m.violations,
                        ctx.fleet.serving_count,
                        cache_hits=cache_hits,
                        cache_misses=cache_misses,
                    )
                    if metrics.path:
                        telemetry.write_jsonl(
                            metrics.resolve_path(scenario.name, policy.name, seed)
                        )
            # The backend's unit of work: epoch events plus the
            # arrivals/completions the array plane absorbed.
            work = (
                ctx.engine.events_fired
                + plane.arrivals_processed
                + plane.completions_processed
            )
            profile.count("events", ctx.engine.events_fired)
            profile.count("arrivals", plane.arrivals_processed)
            profile.count("completions", plane.completions_processed)
            profile.count("spans", plane.spans)
            profile.count("compactions", ctx.engine.compactions)
            if tracer is not None:
                tracer.emit(
                    "run.end",
                    now,
                    events=ctx.engine.events_fired,
                    compactions=ctx.engine.compactions,
                )
                profile.count("trace_events", tracer.emitted)
            return RunMetrics(
                scenario=scenario.name,
                policy=policy.name,
                seed=seed,
                total_requests=m.total_requests,
                accepted=m.accepted,
                completed=m.completed,
                rejected=m.rejected,
                rejection_rate=m.rejection_rate,
                mean_response_time=m.mean_response_time / scale,
                response_time_std=m.response_time_std / scale,
                qos_violations=m.violations,
                min_instances=m.min_instances if m.min_instances is not None else 0,
                max_instances=m.max_instances if m.max_instances is not None else 0,
                vm_hours=m.vm_hours,
                core_hours=ctx.datacenter.core_hours(now),
                failures=m.failures,
                lost_requests=m.lost_requests,
                utilization=m.utilization,
                wall_seconds=wall,
                events=work,
                fleet_series=tuple(m.fleet_series),
                control_series=control_series,
                backend=self.name,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                compactions=ctx.engine.compactions,
                profile=profile.to_dict(),
                telemetry=telemetry_dict,
                **economy,
            )
        finally:
            if telemetry is not None:
                telemetry.close_stream()
            if owns_bus and tracer is not None:
                tracer.close()
