"""Fluid execution backend — interval-analytical evaluation.

:class:`FluidBackend` runs the same ``(scenario, policy)`` replication
contract as the DES backend, but through the flow engine
(:class:`~repro.sim.fluid.FluidSimulator`).  Adaptive policies are
executed by a *self-driving* shared control plane built from the policy
itself (:meth:`repro.core.policies.AdaptivePolicy.control_plane`), so
the cadence and Algorithm-1 decisions are byte-for-byte the DES code —
the engine only integrates the flow underneath the resulting fleet
trajectory.

The backend is deterministic: ``seed`` is echoed into the result for
bookkeeping, and replications with different seeds return identical
metrics (apart from ``wall_seconds``).  Load balancers are a data-plane
concept with no fluid counterpart and are rejected if passed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from ..cloud.datacenter import Datacenter
from ..cloud.vm import DEFAULT_VM_SPEC
from ..core.policies import AdaptivePolicy, ProvisioningPolicy, StaticPolicy
from ..economy.ledger import EconomyTotals, publish_totals
from ..errors import ConfigurationError
from ..obs.bus import TraceBus, TraceConfig
from ..obs.metrics import MetricsConfig, RunTelemetry
from ..obs.profile import RunProfile, Stopwatch
from ..sim.fluid import FluidSimulator
from ..sim.rng import RandomStreams
from .base import RunMetrics

if TYPE_CHECKING:  # pragma: no cover - import-time only for annotations
    from ..experiments.scenario import ScenarioConfig

__all__ = ["FluidBackend"]


class FluidBackend:
    """Interval-analytical execution of one replication.

    Parameters
    ----------
    dt:
        Integration interval in seconds (default 60).
    flow_model:
        ``"deterministic"`` (default) or ``"markovian"`` — see
        :class:`~repro.sim.fluid.FluidSimulator`.
    """

    name = "fluid"

    def __init__(self, dt: float = 60.0, flow_model: str = "deterministic") -> None:
        self.dt = float(dt)
        self.flow_model = flow_model

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FluidBackend(dt={self.dt!r}, flow_model={self.flow_model!r})"

    def run(
        self,
        scenario: "ScenarioConfig",
        policy: ProvisioningPolicy,
        seed: int = 0,
        balancer=None,
        trace: Optional[Union[TraceConfig, TraceBus]] = None,
        audit: Optional[object] = None,
        metrics: Optional[MetricsConfig] = None,
    ) -> RunMetrics:
        """Evaluate one replication analytically and collect metrics.

        ``trace``/``audit`` behave exactly as on the DES backend: the
        run emits ``run.start``/``run.end``, the control plane emits
        ``prediction.issued``/``decision``/``scaling.actuated``, and
        the engine adds one ``fluid.interval`` event per constant-fleet
        segment.  ``metrics`` computes the ``metrics.snapshot`` series
        from the integration grid (expected flows — see
        :meth:`~repro.obs.metrics.RunTelemetry.sample_grid`).
        """
        if balancer is not None:
            raise ConfigurationError(
                "the fluid backend has no per-request data plane; "
                "load balancers only apply to backend='des'"
            )
        profile = RunProfile()
        if isinstance(trace, TraceConfig):
            tracer: Optional[TraceBus] = trace.build(scenario.name, policy.name, seed)
            owns_bus = True
        else:
            tracer = trace
            owns_bus = False
        telemetry = None
        try:
            if tracer is not None:
                tracer.emit(
                    "run.start",
                    0.0,
                    scenario=scenario.name,
                    policy=policy.name,
                    seed=int(seed),
                )
            with profile.phase("build"):
                sim = FluidSimulator(
                    scenario.workload,
                    scenario.qos,
                    dt=self.dt,
                    flow_model=self.flow_model,
                )
                registry = (
                    metrics.build(scenario.qos.max_response_time)
                    if metrics is not None
                    else None
                )
                control = None
                if isinstance(policy, AdaptivePolicy):
                    datacenter = Datacenter(
                        num_hosts=scenario.num_hosts,
                        cores_per_host=scenario.cores_per_host,
                        ram_per_host_mb=scenario.ram_per_host_mb,
                    )
                    control = policy.control_plane(
                        workload=scenario.workload,
                        qos=scenario.qos,
                        capacity=scenario.capacity,
                        max_vms=datacenter.max_vms(DEFAULT_VM_SPEC),
                        tracer=tracer,
                        audit=audit,
                        registry=registry,
                    )
                elif not isinstance(policy, StaticPolicy):
                    raise ConfigurationError(
                        f"the fluid backend cannot execute {type(policy).__name__}; "
                        "supported policies are StaticPolicy and AdaptivePolicy"
                    )
                if metrics is not None:
                    telemetry = RunTelemetry(
                        registry,
                        metrics,
                        scenario.qos.max_response_time,
                        metrics.interval
                        if metrics.interval is not None
                        else scenario.update_interval,
                        tracer=tracer,
                    )
                    if metrics.path and not metrics.history:
                        # History off + path on: stream each snapshot
                        # to disk as it is taken.
                        telemetry.open_stream(
                            metrics.resolve_path(scenario.name, policy.name, seed)
                        )
            watch = Stopwatch()
            # Spot policies revoke on the same seeded stream the DES
            # draws from, so the fluid run sees the DES's schedule; this
            # is the one place the "deterministic" backend reads a seed.
            revocation_times: tuple = ()
            schedule_fn = getattr(policy, "revocation_schedule", None)
            if schedule_fn is not None and scenario.pricing is not None:
                revocation_times = tuple(
                    schedule_fn(RandomStreams(seed), scenario.horizon)
                )
            with profile.phase("run"):
                if control is not None:
                    agg = sim.run_adaptive(
                        control,
                        scenario.horizon,
                        tracer=tracer,
                        telemetry=telemetry,
                        interventions=revocation_times,
                    )
                else:
                    agg = sim.run_static(
                        policy.instances,
                        scenario.horizon,
                        tracer=tracer,
                        telemetry=telemetry,
                    )
            wall = watch.elapsed()
            with profile.phase("finalize"):
                scale = scenario.scale
                cache_hits = control.cache_hits if control is not None else 0
                cache_misses = control.cache_misses if control is not None else 0
                control_series = (
                    control.trajectory if control is not None else agg.fleet_series
                )
                economy: dict = {}
                if scenario.pricing is not None:
                    # No per-request distribution on the fluid backend →
                    # no QoS-violating intervals, so the penalty is 0 by
                    # construction (documented in docs/economy.md).
                    totals = EconomyTotals.from_aggregates(
                        scenario.pricing,
                        completed=agg.accepted,
                        core_hours=agg.vm_hours * DEFAULT_VM_SPEC.cores,
                        vm_hours=agg.vm_hours,
                        spot_fraction=float(getattr(policy, "spot_fraction", 0.0)),
                        violating_intervals=0,
                        revocations=len(revocation_times),
                    )
                    publish_totals(
                        totals,
                        scenario.horizon,
                        violating_intervals=0,
                        tracer=tracer,
                        registry=registry,
                    )
                    economy = dict(
                        revenue=totals.revenue,
                        cost=totals.cost,
                        penalty=totals.penalty,
                        profit=totals.profit,
                        spot_vm_hours=totals.spot_vm_hours,
                        revocations=totals.revocations,
                    )
                telemetry_dict: dict = {}
                if telemetry is not None:
                    telemetry_dict = telemetry.finalize(
                        agg.total_requests,
                        agg.accepted,
                        agg.rejected,
                        agg.accepted,  # flows always drain: completed == accepted
                        0,
                        agg.fleet_series[-1][1] if agg.fleet_series else 0,
                        cache_hits=cache_hits,
                        cache_misses=cache_misses,
                    )
                    if metrics.path:
                        telemetry.write_jsonl(
                            metrics.resolve_path(scenario.name, policy.name, seed)
                        )
            profile.count("intervals", agg.intervals)
            if tracer is not None:
                tracer.emit(
                    "run.end",
                    scenario.horizon,
                    events=agg.intervals,
                    compactions=0,
                )
                profile.count("trace_events", tracer.emitted)
            return RunMetrics(
                scenario=scenario.name,
                policy=policy.name,
                seed=seed,
                total_requests=agg.total_requests,
                accepted=agg.accepted,
                completed=agg.accepted,
                rejected=agg.rejected,
                rejection_rate=agg.rejection_rate,
                mean_response_time=agg.mean_response_time / scale,
                response_time_std=0.0,
                qos_violations=0,
                min_instances=agg.min_instances,
                max_instances=agg.max_instances,
                vm_hours=agg.vm_hours,
                core_hours=agg.vm_hours * DEFAULT_VM_SPEC.cores,
                failures=0,
                lost_requests=0,
                utilization=agg.utilization,
                wall_seconds=wall,
                events=agg.intervals,
                fleet_series=agg.fleet_series,
                control_series=control_series,
                backend=self.name,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                compactions=0,
                profile=profile.to_dict(),
                telemetry=telemetry_dict,
                **economy,
            )
        finally:
            if telemetry is not None:
                telemetry.close_stream()
            if owns_bus and tracer is not None:
                tracer.close()
