"""Campaign engine — declarative scenario-grid orchestration.

A *campaign* is the paper's evaluation pattern generalized: a
declarative ``(scenario × policy × backend × seed)`` grid
(:class:`~repro.campaigns.spec.CampaignSpec`, loaded from TOML, JSON,
or a plain dict) expanded into deterministic, content-addressed
:class:`~repro.campaigns.spec.Cell`\\ s, executed through the existing
replication pool with skip-if-cached and retry-on-worker-failure
(:mod:`repro.campaigns.executor`), persisted in an on-disk result
store keyed by a stable hash of each cell's full configuration
(:mod:`repro.campaigns.store`), and aggregated back into paper-style
tables (:mod:`repro.campaigns.report`).

The store makes campaigns *crash-safe and resumable*: killing a run
mid-grid loses nothing that already completed — re-running the same
spec executes only the missing cells.  ``campaigns/paper.toml``
reproduces the paper's entire §VI evaluation with one command::

    repro campaign run campaigns/paper.toml
    repro campaign status campaigns/paper.toml
    repro campaign report campaigns/paper.toml --out results/

Layering: this package sits *above* ``repro.experiments`` and
``repro.backends`` (it may import both); nothing in the library
imports it back (enforced by ``tools/check_layering.py``) — the CLI
reaches it through a function-local import only.
"""

from .executor import CampaignResult, CellOutcome, run_campaign
from .report import campaign_report, campaign_status_rows
from .spec import CAMPAIGN_SCHEMA_VERSION, CampaignSpec, Cell, ScenarioGrid
from .store import ResultStore
from .watch import CellProgress, snapshot_progress, watch, watch_table

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignSpec",
    "Cell",
    "ScenarioGrid",
    "ResultStore",
    "CampaignResult",
    "CellOutcome",
    "run_campaign",
    "campaign_report",
    "campaign_status_rows",
    "CellProgress",
    "snapshot_progress",
    "watch",
    "watch_table",
]
