"""Campaign engine — declarative scenario-grid orchestration.

A *campaign* is the paper's evaluation pattern generalized: a
declarative ``(scenario × policy × backend × seed)`` grid
(:class:`~repro.campaigns.spec.CampaignSpec`, loaded from TOML, JSON,
or a plain dict) expanded into deterministic, content-addressed
:class:`~repro.campaigns.spec.Cell`\\ s, reconciled against the store
by a lease-based scheduler (:mod:`repro.campaigns.scheduler`) that
hands claimed cells to the replication-pool runner with
skip-if-cached and retry-on-worker-failure
(:mod:`repro.campaigns.executor`), persisted in an on-disk result
store keyed by a stable hash of each cell's full configuration
(:mod:`repro.campaigns.store`), and aggregated back into paper-style
tables (:mod:`repro.campaigns.report`).

The store makes campaigns *crash-safe, resumable, and shareable*:
killing a run mid-grid loses nothing that already completed — and any
number of workers pointed at one store cooperate through atomic cell
leases, stealing work from peers that die.  ``campaigns/paper.toml``
reproduces the paper's entire §VI evaluation with one command (or two
cooperating ones)::

    repro campaign run campaigns/paper.toml --shard 0/2 &
    repro campaign run campaigns/paper.toml --shard 1/2
    repro campaign agg campaigns/paper.toml --out results/

Layering: this package sits *above* ``repro.experiments`` and
``repro.backends`` (it may import both); nothing in the library
imports it back (enforced by the ``layering`` lint rule) — the CLI
reaches it through a function-local import only.
"""

from .report import campaign_agg, campaign_report, campaign_status_rows
from .scheduler import (
    CampaignResult,
    CellOutcome,
    default_owner,
    parse_shard,
    run_campaign,
)
from .spec import CAMPAIGN_SCHEMA_VERSION, CampaignSpec, Cell, ScenarioGrid
from .store import ClaimOutcome, Lease, ResultStore
from .watch import CellProgress, snapshot_progress, watch, watch_table

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignSpec",
    "Cell",
    "ScenarioGrid",
    "ClaimOutcome",
    "Lease",
    "ResultStore",
    "CampaignResult",
    "CellOutcome",
    "default_owner",
    "parse_shard",
    "run_campaign",
    "campaign_agg",
    "campaign_report",
    "campaign_status_rows",
    "CellProgress",
    "snapshot_progress",
    "watch",
    "watch_table",
]
