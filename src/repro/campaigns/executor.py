"""Campaign cell runner — claimed cells in, stored results out.

This module is the *mechanics* half of the campaign engine; the
control loop (reconciliation, sharding, lease claiming) lives in
:mod:`repro.campaigns.scheduler`.  The runner keeps the semantics the
monolithic executor always had:

* **grouping** — pending cells sharing ``(scenario, policy, backend)``
  run as one :func:`~repro.experiments.runner.run_replications` call,
  so a campaign inherits the process-pool parallelism (and its
  bit-identical-to-sequential guarantee) for free;
* **retry-on-worker-failure** — a group that dies in the pool is
  retried sequentially in-process up to ``spec.retries`` times before
  its cells are recorded as ``failed`` (the campaign continues with
  the other groups either way);
* **fluid prescreen** — optionally, each DES cell's *fluid twin*
  (identical configuration, ``backend="fluid"``) is evaluated first;
  twins are ordinary cells, so they cache (and claim) like everything
  else, and a DES cell whose analytical rejection rate already exceeds
  the spec's threshold is skipped as ``screened`` instead of simulated;
* **observability** — every cell transition emits a
  ``campaign.cell.*`` event on the trace bus (schema-validated like
  all events; ``t`` is wall-clock seconds since campaign start).

Results land in the store *as each group finishes* via durable atomic
writes, which is the whole resume story: kill the process at any
point, run the same command again, and only the missing cells execute.
Each cell's lease is released the moment its artifact (or failure
record) lands, so cooperating workers see progress at cell - not
campaign - granularity.

For backwards compatibility this module still re-exports the public
campaign API (``run_campaign``, ``CampaignResult``, ``CellOutcome``)
from the scheduler via module ``__getattr__``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

from ..experiments.runner import run_replications
from ..obs.bus import TraceBus
from ..obs.log import get_logger, kv
from ..obs.metrics import MetricsConfig
from .spec import CampaignSpec, Cell
from .store import ResultStore

_log = get_logger(__name__)

__all__ = [
    "CellOutcome",
    "CampaignResult",
    "prescreen_cells",
    "run_campaign",
    "run_group",
]

# Names that moved to the scheduler in the lease refactor; forwarded
# lazily (PEP 562) so `import repro.campaigns.executor` keeps working
# without a circular module-top import (scheduler imports this module).
_FORWARDED = ("run_campaign", "CampaignResult", "CellOutcome", "_STATUSES")


def __getattr__(name: str):
    if name in _FORWARDED:
        from . import scheduler

        return getattr(scheduler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def prescreen_cells(
    spec: CampaignSpec,
    store: ResultStore,
    pending: Sequence[Cell],
    bus: Optional[TraceBus],
    elapsed: Callable[[], float],
    finish: Callable,
    say: Callable[[str], None],
    claims,
) -> Tuple[List[Cell], int, List[Cell]]:
    """Drop DES cells whose fluid twin already violates the threshold.

    Returns ``(survivors, screened_count, deferred)`` — deferred cells
    have their twin claimed by another worker right now; the scheduler
    retries them next round (by then the twin is usually cached).
    """
    survivors: List[Cell] = []
    deferred: List[Cell] = []
    screened = 0
    for cell in pending:
        # Both DES flavours (scalar "des" and vectorized "des-vec") get
        # the analytical prescreen; fluid cells ARE the twins.
        if not cell.backend.startswith("des"):
            survivors.append(cell)
            continue
        twin = dataclasses.replace(cell, backend="fluid")
        metrics = store.get(twin)
        if metrics is None:
            held, contended = claims.claim_all([twin])
            if contended:
                deferred.append(cell)
                continue
            try:
                # Re-check under the lease: a peer may have landed the
                # twin between our cache miss and the claim.
                metrics = store.get(twin)
                if metrics is None:
                    metrics = run_replications(
                        twin.build_scenario(),
                        twin.policy_factory(),
                        seeds=(twin.seed,),
                        workers=1,
                        backend="fluid",
                    )[0]
                    store.put(twin, metrics)
            except Exception as exc:  # noqa: BLE001 - prescreen is advisory
                _log.warning(
                    "fluid prescreen failed; running the DES cell anyway: %s",
                    kv(cell=cell.label(), error=repr(exc)),
                )
                survivors.append(cell)
                continue
            finally:
                claims.release_all(held)
        if metrics.rejection_rate > spec.prescreen_max_rejection:
            store.mark_screened(cell, rejection_rate=metrics.rejection_rate)
            finish(cell, "screened")
            screened += 1
            say(
                f"screened {cell.label()}: fluid rejection "
                f"{metrics.rejection_rate:.1%} > {spec.prescreen_max_rejection:.1%}"
            )
            if bus is not None:
                bus.emit(
                    "campaign.cell.screened",
                    elapsed(),
                    key=cell.key(),
                    rejection_rate=float(metrics.rejection_rate),
                )
        else:
            survivors.append(cell)
    return survivors, screened, deferred


def run_group(
    spec: CampaignSpec,
    store: ResultStore,
    head: Cell,
    batch: Sequence[Cell],
    pool_workers: int,
    bus: Optional[TraceBus],
    elapsed: Callable[[], float],
    finish: Callable,
    say: Callable[[str], None],
    metrics: Optional[MetricsConfig] = None,
    claims=None,
) -> None:
    """One (scenario, policy, backend) group through the pool, with retry.

    ``batch`` must already be claimed by the caller; each cell's lease
    is released as soon as its result (or failure record) is stored.
    """
    seeds = [c.seed for c in batch]
    by_seed = {c.seed: c for c in batch}
    if bus is not None:
        for cell in batch:
            bus.emit(
                "campaign.cell.start",
                elapsed(),
                key=cell.key(),
                scenario=cell.scenario_label(),
                policy=cell.policy_label,
                backend=cell.backend,
                seed=cell.seed,
            )
    scenario = head.build_scenario()
    factory = head.policy_factory()
    group_label = f"{head.scenario_label()}/{head.policy_label}/{head.backend}"
    last_error: Optional[BaseException] = None
    for attempt in range(spec.retries + 1):
        # First attempt uses the pool; retries run sequentially so one
        # crashed/OOM-killed worker cannot sink the group twice.
        attempt_workers = pool_workers if attempt == 0 else 1
        try:
            t_start = elapsed()
            results = run_replications(
                scenario,
                factory,
                seeds=seeds,
                workers=attempt_workers,
                backend=head.backend,
                metrics=metrics,
            )
            for run in results:
                cell = by_seed[run.seed]
                store.put(cell, run)
                finish(cell, "executed")
                if claims is not None:
                    claims.release_all([cell])
                if bus is not None:
                    bus.emit(
                        "campaign.cell.done",
                        elapsed(),
                        key=cell.key(),
                        wall_seconds=float(run.wall_seconds),
                    )
            say(
                f"ran {group_label} seeds {seeds} "
                f"({elapsed() - t_start:.2f}s)"
            )
            return
        except Exception as exc:  # noqa: BLE001 - worker failures must not sink the campaign
            last_error = exc
            _log.warning(
                "cell group failed: %s",
                kv(
                    group=group_label,
                    seeds=len(seeds),
                    attempt=attempt + 1,
                    retries=spec.retries,
                    error=repr(exc),
                ),
            )
    error = repr(last_error)
    for cell in batch:
        store.mark_failed(cell, error)
        finish(cell, "failed", error=error)
        if claims is not None:
            claims.release_all([cell])
        if bus is not None:
            bus.emit("campaign.cell.failed", elapsed(), key=cell.key(), error=error)
    say(f"FAILED {group_label} after {spec.retries + 1} attempt(s): {error}")
