"""Campaign executor — cells in, cached results out, crash-safe.

The executor turns an expanded campaign grid into work for the
existing replication machinery:

* **skip-if-cached** — cells whose artifact already exists in the
  :class:`~repro.campaigns.store.ResultStore` are never re-executed;
* **grouping** — pending cells sharing ``(scenario, policy, backend)``
  run as one :func:`~repro.experiments.runner.run_replications` call,
  so a campaign inherits the process-pool parallelism (and its
  bit-identical-to-sequential guarantee) for free;
* **retry-on-worker-failure** — a group that dies in the pool is
  retried sequentially in-process up to ``spec.retries`` times before
  its cells are recorded as ``failed`` (the campaign continues with
  the other groups either way);
* **fluid prescreen** — optionally, each DES cell's *fluid twin*
  (identical configuration, ``backend="fluid"``) is evaluated first;
  twins are ordinary cells, so they cache like everything else, and a
  DES cell whose analytical rejection rate already exceeds the spec's
  threshold is skipped as ``screened`` instead of simulated;
* **observability** — every cell transition emits a
  ``campaign.cell.*`` event on the trace bus (schema-validated like
  all events; ``t`` is wall-clock seconds since campaign start).

Results land in the store *as each group finishes* via atomic writes,
which is the whole resume story: kill the process at any point, run
the same command again, and only the missing cells execute.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..experiments.runner import run_replications
from ..obs.bus import TraceBus, TraceConfig
from ..obs.log import get_logger, kv
from ..obs.metrics import MetricsConfig
from ..obs.profile import Stopwatch
from .spec import CampaignSpec, Cell
from .store import ResultStore

_log = get_logger(__name__)

__all__ = ["CellOutcome", "CampaignResult", "run_campaign"]

#: Statuses a cell can end a campaign run in.
_STATUSES = ("executed", "cached", "screened", "failed", "skipped")


@dataclass(frozen=True)
class CellOutcome:
    """What happened to one cell during one campaign run.

    ``status`` is one of ``executed`` (ran this time), ``cached``
    (served from the store), ``screened`` (fluid prescreen ruled it
    out), ``failed`` (all retries exhausted; ``error`` holds the
    message), or ``skipped`` (left pending by ``max_cells``).
    """

    cell: Cell
    status: str
    error: Optional[str] = None


@dataclass
class CampaignResult:
    """Summary of one :func:`run_campaign` invocation."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    def by_status(self, status: str) -> List[Cell]:
        return [o.cell for o in self.outcomes if o.status == status]

    @property
    def executed(self) -> List[Cell]:
        return self.by_status("executed")

    @property
    def cached(self) -> List[Cell]:
        return self.by_status("cached")

    @property
    def screened(self) -> List[Cell]:
        return self.by_status("screened")

    @property
    def failed(self) -> List[Cell]:
        return self.by_status("failed")

    @property
    def skipped(self) -> List[Cell]:
        return self.by_status("skipped")

    def counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in _STATUSES}
        for o in self.outcomes:
            counts[o.status] = counts.get(o.status, 0) + 1
        return counts

    def summary_line(self) -> str:
        counts = self.counts()
        parts = [f"{counts[s]} {s}" for s in _STATUSES if counts[s]]
        return (
            f"campaign: {len(self.outcomes)} cell(s) — "
            + (", ".join(parts) if parts else "nothing to do")
            + f"  ({self.wall_seconds:.2f}s)"
        )


def _group_cells(cells: Sequence[Cell]) -> List[Tuple[Cell, List[Cell]]]:
    """Group cells sharing (scenario, params, policy, backend).

    Returns ``(representative, members)`` pairs in first-seen order;
    members differ only by seed, so one ``run_replications`` call
    covers the whole group.
    """
    groups: Dict[Tuple, List[Cell]] = {}
    order: List[Tuple] = []
    for cell in cells:
        gkey = (cell.scenario, cell.params, cell.policy, cell.backend)
        if gkey not in groups:
            groups[gkey] = []
            order.append(gkey)
        groups[gkey].append(cell)
    return [(groups[g][0], groups[g]) for g in order]


def _build_bus(
    trace: Optional[Union[TraceBus, TraceConfig]], spec: CampaignSpec
) -> Tuple[Optional[TraceBus], bool]:
    """(bus, owns_it) — a TraceConfig builds a campaign-scoped bus."""
    if trace is None:
        return None, False
    if isinstance(trace, TraceConfig):
        return trace.build(scenario=spec.name, policy="campaign", seed=0), True
    return trace, False


def run_campaign(
    spec: CampaignSpec,
    store: Optional[Union[str, ResultStore]] = None,
    workers: Optional[int] = None,
    quick: bool = False,
    trace: Optional[Union[TraceBus, TraceConfig]] = None,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    metrics: Optional[MetricsConfig] = None,
) -> CampaignResult:
    """Execute (or resume) a campaign against its result store.

    Parameters
    ----------
    spec:
        The validated campaign.
    store:
        A :class:`~repro.campaigns.store.ResultStore`, a directory
        path, or ``None`` for the spec's own store location.
    workers:
        Pool size per cell group; ``None`` uses ``spec.workers``
        (0 = one per CPU).
    quick:
        Expand the grid with each scenario block's ``quick`` overrides
        applied.  Quick cells hash differently from full cells — the
        two grids never collide in the store.
    trace:
        ``None``, a live :class:`~repro.obs.bus.TraceBus`, or a
        :class:`~repro.obs.bus.TraceConfig` (one campaign-scoped bus
        is built and closed around the run).
    max_cells:
        Execute at most this many *new* cells, then leave the rest
        pending (``skipped``) — the testing hook for interrupt/resume
        semantics (cached and screened cells do not count).
    progress:
        Optional line sink (e.g. ``print``) for per-group progress.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsConfig` forwarded to
        every executed cell.  A config without a ``path`` is pointed at
        the store's ``telemetry/`` directory, which is where
        ``repro campaign watch`` reads live snapshot streams from.

    Returns
    -------
    CampaignResult
        One :class:`CellOutcome` per cell of the expanded grid.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(spec.store_path(store))
    if workers is None:
        workers = spec.workers
    if workers == 0:  # 0 = auto: one worker per CPU
        from ..experiments.parallel import default_workers

        workers = default_workers()
    pool_workers = max(1, int(workers))
    if metrics is not None and metrics.path is None:
        metrics = dataclasses.replace(
            metrics, path=str(store.root / "telemetry") + "/"
        )

    cells = spec.expanded(quick=quick)
    bus, owns_bus = _build_bus(trace, spec)
    # Event clock for campaign.cell.* traces: wall-clock seconds since
    # campaign start, read through the sanctioned duration meter.
    elapsed = Stopwatch().elapsed
    say = progress or (lambda line: None)
    result = CampaignResult()
    emitted: Dict[str, CellOutcome] = {}

    def finish(cell: Cell, status: str, error: Optional[str] = None) -> None:
        emitted[cell.key()] = CellOutcome(cell, status, error)

    try:
        # ------------------------------------------------------------------
        # 1. Serve everything already in the store.
        # ------------------------------------------------------------------
        pending: List[Cell] = []
        for cell in cells:
            if store.has(cell):
                finish(cell, "cached")
                if bus is not None:
                    bus.emit("campaign.cell.cached", elapsed(), key=cell.key())
            else:
                pending.append(cell)
        if len(cells) != len(pending):
            say(f"cache: {len(cells) - len(pending)}/{len(cells)} cell(s) already stored")

        # ------------------------------------------------------------------
        # 2. Fluid prescreen of expensive DES cells (optional).
        # ------------------------------------------------------------------
        if spec.prescreen:
            pending = _prescreen(spec, store, pending, bus, elapsed, finish, say)

        # ------------------------------------------------------------------
        # 3. Execute the remaining cells, group by group.
        # ------------------------------------------------------------------
        budget = max_cells if max_cells is not None else len(pending)
        for head, members in _group_cells(pending):
            if budget <= 0:
                for cell in members:
                    finish(cell, "skipped")
                continue
            batch, rest = members[:budget], members[budget:]
            for cell in rest:
                finish(cell, "skipped")
            budget -= len(batch)
            _run_group(
                spec, store, head, batch, pool_workers, bus, elapsed, finish,
                say, metrics,
            )
    finally:
        # Interrupt-path guarantee: a campaign killed mid-run must leave
        # every already-emitted event on disk.  Owned buses are closed
        # (final flush included); borrowed ones are flushed but left
        # open for the caller.
        if bus is not None:
            if owns_bus:
                bus.close()
            else:
                bus.flush()

    # Report outcomes in grid order.
    result.outcomes = [emitted[c.key()] for c in cells]
    result.wall_seconds = elapsed()
    return result


def _prescreen(
    spec: CampaignSpec,
    store: ResultStore,
    pending: Sequence[Cell],
    bus: Optional[TraceBus],
    elapsed: Callable[[], float],
    finish: Callable,
    say: Callable[[str], None],
) -> List[Cell]:
    """Drop DES cells whose fluid twin already violates the threshold."""
    survivors: List[Cell] = []
    for cell in pending:
        # Both DES flavours (scalar "des" and vectorized "des-vec") get
        # the analytical prescreen; fluid cells ARE the twins.
        if not cell.backend.startswith("des"):
            survivors.append(cell)
            continue
        twin = dataclasses.replace(cell, backend="fluid")
        metrics = store.get(twin)
        if metrics is None:
            try:
                metrics = run_replications(
                    twin.build_scenario(),
                    twin.policy_factory(),
                    seeds=(twin.seed,),
                    workers=1,
                    backend="fluid",
                )[0]
            except Exception as exc:  # noqa: BLE001 - prescreen is advisory
                _log.warning(
                    "fluid prescreen failed; running the DES cell anyway: %s",
                    kv(cell=cell.label(), error=repr(exc)),
                )
                survivors.append(cell)
                continue
            store.put(twin, metrics)
        if metrics.rejection_rate > spec.prescreen_max_rejection:
            store.mark_screened(cell, rejection_rate=metrics.rejection_rate)
            finish(cell, "screened")
            say(
                f"screened {cell.label()}: fluid rejection "
                f"{metrics.rejection_rate:.1%} > {spec.prescreen_max_rejection:.1%}"
            )
            if bus is not None:
                bus.emit(
                    "campaign.cell.screened",
                    elapsed(),
                    key=cell.key(),
                    rejection_rate=float(metrics.rejection_rate),
                )
        else:
            survivors.append(cell)
    return survivors


def _run_group(
    spec: CampaignSpec,
    store: ResultStore,
    head: Cell,
    batch: Sequence[Cell],
    pool_workers: int,
    bus: Optional[TraceBus],
    elapsed: Callable[[], float],
    finish: Callable,
    say: Callable[[str], None],
    metrics: Optional[MetricsConfig] = None,
) -> None:
    """One (scenario, policy, backend) group through the pool, with retry."""
    seeds = [c.seed for c in batch]
    by_seed = {c.seed: c for c in batch}
    if bus is not None:
        for cell in batch:
            bus.emit(
                "campaign.cell.start",
                elapsed(),
                key=cell.key(),
                scenario=cell.scenario_label(),
                policy=cell.policy_label,
                backend=cell.backend,
                seed=cell.seed,
            )
    scenario = head.build_scenario()
    factory = head.policy_factory()
    group_label = f"{head.scenario_label()}/{head.policy_label}/{head.backend}"
    last_error: Optional[BaseException] = None
    for attempt in range(spec.retries + 1):
        # First attempt uses the pool; retries run sequentially so one
        # crashed/OOM-killed worker cannot sink the group twice.
        attempt_workers = pool_workers if attempt == 0 else 1
        try:
            t_start = elapsed()
            results = run_replications(
                scenario,
                factory,
                seeds=seeds,
                workers=attempt_workers,
                backend=head.backend,
                metrics=metrics,
            )
            for run in results:
                cell = by_seed[run.seed]
                store.put(cell, run)
                finish(cell, "executed")
                if bus is not None:
                    bus.emit(
                        "campaign.cell.done",
                        elapsed(),
                        key=cell.key(),
                        wall_seconds=float(run.wall_seconds),
                    )
            say(
                f"ran {group_label} seeds {seeds} "
                f"({elapsed() - t_start:.2f}s)"
            )
            return
        except Exception as exc:  # noqa: BLE001 - worker failures must not sink the campaign
            last_error = exc
            _log.warning(
                "cell group failed: %s",
                kv(
                    group=group_label,
                    seeds=len(seeds),
                    attempt=attempt + 1,
                    retries=spec.retries,
                    error=repr(exc),
                ),
            )
    error = repr(last_error)
    for cell in batch:
        store.mark_failed(cell, error)
        finish(cell, "failed", error=error)
        if bus is not None:
            bus.emit("campaign.cell.failed", elapsed(), key=cell.key(), error=error)
    say(f"FAILED {group_label} after {spec.retries + 1} attempt(s): {error}")
