"""Cross-cell aggregation — campaign results as paper-style tables.

Two views over a campaign's store:

* :func:`campaign_report` — the figure view: one row per
  ``(scenario, policy, backend)`` group with the same metric columns
  as the paper's Figure-5/6 panels, summarized across the group's
  replication seeds by the shared
  :func:`~repro.metrics.report.summary_cells` helper (mean, or
  ``mean ± ci95`` with several seeds).  The result is a
  :class:`~repro.experiments.figures.FigureData`, so the experiments
  CLI's markdown/CSV writers work on campaigns unchanged.
* :func:`campaign_status_rows` — the operational view: one row per
  cell with its store status, backing ``repro campaign status`` and
  the CI smoke job's completeness gate.

Plus the streaming composition of the two:

* :func:`campaign_agg` — re-renders the figure view as cells land in
  the store, so an operator can watch paper tables fill in live while
  any number of workers (local or remote shards) execute the grid.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..backends.base import RunMetrics
from ..experiments.figures import FigureData, _PANEL_FIELDS
from ..metrics.report import format_markdown_table, summary_cells
from .spec import CampaignSpec, Cell
from .store import ResultStore

__all__ = ["campaign_agg", "campaign_report", "campaign_status_rows"]

#: The campaign table extends the Figure-5/6 panel columns with the
#: paper-style QoS-attainment and economy objectives.  A separate tuple
#: (not _PANEL_FIELDS itself) because the figure writers keep the
#: original panel layout.
_REPORT_FIELDS: Tuple[str, ...] = _PANEL_FIELDS + ("qos_attainment", "profit")


def _grouped(cells: List[Cell]) -> List[Tuple[Tuple, List[Cell]]]:
    groups: Dict[Tuple, List[Cell]] = {}
    order: List[Tuple] = []
    for cell in cells:
        gkey = (cell.scenario, cell.params, cell.policy, cell.backend)
        if gkey not in groups:
            groups[gkey] = []
            order.append(gkey)
        groups[gkey].append(cell)
    return [(g, groups[g]) for g in order]


def campaign_report(
    spec: CampaignSpec,
    store: ResultStore,
    quick: bool = False,
    ci: bool = True,
) -> FigureData:
    """Aggregate every stored cell into one paper-style summary table.

    Groups with no stored results at all are reported with dashes so
    an incomplete campaign still renders (the ``seeds`` column shows
    ``found/wanted``).
    """
    headers = [
        "scenario",
        "policy",
        "backend",
        "seeds",
        "min inst",
        "max inst",
        "rejection",
        "utilization",
        "VM hours",
        "avg Tr (s)",
        "std Tr (s)",
        "QoS violations",
        "P[T<=Ts]",
        "profit",
    ]
    rows: List[List[object]] = []
    raw_results: Dict[str, List[RunMetrics]] = {}
    for _, members in _grouped(spec.expanded(quick=quick)):
        head = members[0]
        results = [m for m in (store.get(c) for c in members) if m is not None]
        label = f"{head.scenario_label()}/{head.policy_label}/{head.backend}"
        raw_results[label] = results
        prefix = [
            head.scenario_label(),
            head.policy_label,
            head.backend,
            f"{len(results)}/{len(members)}",
        ]
        if results:
            rows.append(prefix + summary_cells(results, _REPORT_FIELDS, ci=ci))
        else:
            rows.append(prefix + ["-"] * len(_REPORT_FIELDS))
    return FigureData(
        experiment_id=f"campaign-{spec.name}" + ("-quick" if quick else ""),
        title=f"Campaign report: {spec.name}"
        + (f" — {spec.description}" if spec.description else ""),
        headers=headers,
        rows=rows,
        raw={"results": raw_results, "spec": spec},
    )


def campaign_status_rows(
    spec: CampaignSpec,
    store: ResultStore,
    quick: bool = False,
) -> Tuple[List[str], List[List[object]], Dict[str, int]]:
    """Per-cell status table + status counts for ``campaign status``.

    Returns ``(headers, rows, counts)`` where ``counts`` maps each
    observed status (``cached`` / ``screened`` / ``failed`` /
    ``claimed`` / ``missing``) to its cell count.  ``claimed`` means a
    live worker holds the cell's lease; a lease older than the spec's
    ``lease_ttl`` is reclaimable and reports as ``missing``.
    """
    headers = ["scenario", "policy", "backend", "seed", "status", "key"]
    rows: List[List[object]] = []
    counts: Dict[str, int] = {}
    # One filesystem-clock probe for the whole scan — and none at all
    # when no leases exist (the common post-campaign case).
    now = store.fs_now() if store.active_leases(fs_now=0.0) else None
    for cell in spec.expanded(quick=quick):
        status = store.status_of(cell, lease_ttl=spec.lease_ttl, fs_now=now)
        counts[status] = counts.get(status, 0) + 1
        rows.append(
            [
                cell.scenario_label(),
                cell.policy_label,
                cell.backend,
                cell.seed,
                status,
                cell.key()[:12],
            ]
        )
    return headers, rows, counts


def campaign_agg(
    spec: CampaignSpec,
    store: Optional[Union[str, ResultStore]] = None,
    quick: bool = False,
    ci: bool = True,
    follow: bool = False,
    interval: float = 2.0,
    out: Optional[Callable[[str], None]] = None,
    max_refreshes: Optional[int] = None,
    render: Optional[Callable[[FigureData], str]] = None,
) -> int:
    """Stream partial paper-style tables as cells land in the store.

    Renders :func:`campaign_report` over whatever the store holds right
    now — dashes for untouched groups, partial ``found/wanted`` seed
    counts for in-progress ones — and, with ``follow``, re-renders
    every ``interval`` seconds until every cell is terminal (``cached``
    / ``screened`` / ``failed``).  Cells merely ``claimed`` by live
    workers keep the loop alive: ``agg`` is the observer half of a
    sharded campaign, aggregating concurrent workers' output without
    executing anything itself.

    Returns the number of refreshes rendered (at least 1).
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(spec.store_path(store))
    cells = spec.expanded(quick=quick)
    write = out or print
    show = render or (lambda data: _default_render(data))
    refreshes = 0
    while True:
        _, _, counts = campaign_status_rows(spec, store, quick=quick)
        done = sum(counts.get(s, 0) for s in ("cached", "screened", "failed"))
        data = campaign_report(spec, store, quick=quick, ci=ci)
        in_flight = counts.get("claimed", 0)
        trailer = f"[{done}/{len(cells)} cell(s)"
        if in_flight:
            trailer += f", {in_flight} in flight"
        trailer += "]"
        write(show(data).rstrip("\n") + f"\n{trailer}")
        refreshes += 1
        complete = done >= len(cells)
        exhausted = max_refreshes is not None and refreshes >= max_refreshes
        if complete or not follow or exhausted:
            return refreshes
        time.sleep(interval)


def _default_render(data: FigureData) -> str:
    return f"# {data.title}\n\n" + format_markdown_table(data.headers, data.rows)
