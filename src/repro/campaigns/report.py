"""Cross-cell aggregation — campaign results as paper-style tables.

Two views over a campaign's store:

* :func:`campaign_report` — the figure view: one row per
  ``(scenario, policy, backend)`` group with the same metric columns
  as the paper's Figure-5/6 panels, summarized across the group's
  replication seeds by the shared
  :func:`~repro.metrics.report.summary_cells` helper (mean, or
  ``mean ± ci95`` with several seeds).  The result is a
  :class:`~repro.experiments.figures.FigureData`, so the experiments
  CLI's markdown/CSV writers work on campaigns unchanged.
* :func:`campaign_status_rows` — the operational view: one row per
  cell with its store status, backing ``repro campaign status`` and
  the CI smoke job's completeness gate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..backends.base import RunMetrics
from ..experiments.figures import FigureData, _PANEL_FIELDS
from ..metrics.report import summary_cells
from .spec import CampaignSpec, Cell
from .store import ResultStore

__all__ = ["campaign_report", "campaign_status_rows"]


def _grouped(cells: List[Cell]) -> List[Tuple[Tuple, List[Cell]]]:
    groups: Dict[Tuple, List[Cell]] = {}
    order: List[Tuple] = []
    for cell in cells:
        gkey = (cell.scenario, cell.params, cell.policy, cell.backend)
        if gkey not in groups:
            groups[gkey] = []
            order.append(gkey)
        groups[gkey].append(cell)
    return [(g, groups[g]) for g in order]


def campaign_report(
    spec: CampaignSpec,
    store: ResultStore,
    quick: bool = False,
    ci: bool = True,
) -> FigureData:
    """Aggregate every stored cell into one paper-style summary table.

    Groups with no stored results at all are reported with dashes so
    an incomplete campaign still renders (the ``seeds`` column shows
    ``found/wanted``).
    """
    headers = [
        "scenario",
        "policy",
        "backend",
        "seeds",
        "min inst",
        "max inst",
        "rejection",
        "utilization",
        "VM hours",
        "avg Tr (s)",
        "std Tr (s)",
        "QoS violations",
    ]
    rows: List[List[object]] = []
    raw_results: Dict[str, List[RunMetrics]] = {}
    for _, members in _grouped(spec.expanded(quick=quick)):
        head = members[0]
        results = [m for m in (store.get(c) for c in members) if m is not None]
        label = f"{head.scenario_label()}/{head.policy_label}/{head.backend}"
        raw_results[label] = results
        prefix = [
            head.scenario_label(),
            head.policy_label,
            head.backend,
            f"{len(results)}/{len(members)}",
        ]
        if results:
            rows.append(prefix + summary_cells(results, _PANEL_FIELDS, ci=ci))
        else:
            rows.append(prefix + ["-"] * len(_PANEL_FIELDS))
    return FigureData(
        experiment_id=f"campaign-{spec.name}" + ("-quick" if quick else ""),
        title=f"Campaign report: {spec.name}"
        + (f" — {spec.description}" if spec.description else ""),
        headers=headers,
        rows=rows,
        raw={"results": raw_results, "spec": spec},
    )


def campaign_status_rows(
    spec: CampaignSpec,
    store: ResultStore,
    quick: bool = False,
) -> Tuple[List[str], List[List[object]], Dict[str, int]]:
    """Per-cell status table + status counts for ``campaign status``.

    Returns ``(headers, rows, counts)`` where ``counts`` maps each
    observed status (``cached`` / ``screened`` / ``failed`` /
    ``missing``) to its cell count.
    """
    headers = ["scenario", "policy", "backend", "seed", "status", "key"]
    rows: List[List[object]] = []
    counts: Dict[str, int] = {}
    for cell in spec.expanded(quick=quick):
        status = store.status_of(cell)
        counts[status] = counts.get(status, 0) + 1
        rows.append(
            [
                cell.scenario_label(),
                cell.policy_label,
                cell.backend,
                cell.seed,
                status,
                cell.key()[:12],
            ]
        )
    return headers, rows, counts
