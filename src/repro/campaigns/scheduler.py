"""Campaign scheduler — desired grid vs observed store, reconciled.

The scheduler owns the campaign *control loop*; the per-cell runner in
:mod:`repro.campaigns.executor` owns the *mechanics* (pool dispatch,
retry, fluid prescreen).  Each :func:`run_campaign` invocation is one
reconciliation worker:

* the **desired state** is the expanded grid (optionally narrowed to a
  static shard via ``--shard i/N`` round-robin partitioning);
* the **observed state** is the :class:`~repro.campaigns.store.ResultStore`
  — artifacts are done, active leases are someone else's in-flight
  work, everything else is claimable;
* the loop **claims** pending cells through the store's lease protocol
  (``campaign.claim.*`` trace events cover acquire/steal/release),
  executes them, releases, and re-reconciles until every cell is
  terminal locally or held by a live peer.

Because claims are store-level and atomic, *any* number of plain
``repro campaign run`` invocations pointed at one store cooperate by
work-stealing: each round, a worker serves newly landed artifacts from
cache, claims what is free, and defers what a peer holds.  A worker
that dies mid-cell stops heartbeating its lease; once the lease age
passes the spec's ``lease_ttl`` any surviving worker steals it and
re-runs the cell.  Replays are idempotent — cell artifacts are
content-addressed and byte-stable (modulo the ``wall_seconds``
diagnostic), so an N-worker or N-shard campaign converges on a store
byte-identical in manifest and cell payloads to a sequential run.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..obs.bus import TraceBus, TraceConfig
from ..obs.log import get_logger, kv
from ..obs.metrics import MetricsConfig
from ..obs.profile import Stopwatch
from . import executor as _runner
from .spec import CampaignSpec, Cell
from .store import ResultStore

_log = get_logger(__name__)

__all__ = [
    "CellOutcome",
    "CampaignResult",
    "default_owner",
    "parse_shard",
    "run_campaign",
]

#: Statuses a cell can end a campaign run in.
_STATUSES = ("executed", "cached", "screened", "failed", "skipped", "claimed")


def default_owner() -> str:
    """This worker's lease owner id (host-qualified, survives forks)."""
    return f"{socket.gethostname()}:{os.getpid()}"


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``i/N`` shard designator into ``(index, count)``."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ConfigurationError(
            f"shard must look like i/N (e.g. 0/2), got {text!r}"
        ) from None
    _check_shard(index, count)
    return index, count


def _check_shard(index: int, count: int) -> None:
    if count < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ConfigurationError(
            f"shard index must be in [0, {count}), got {index}"
        )


@dataclass(frozen=True)
class CellOutcome:
    """What happened to one cell during one campaign run.

    ``status`` is one of ``executed`` (ran this time), ``cached``
    (served from the store), ``screened`` (fluid prescreen ruled it
    out), ``failed`` (all retries exhausted; ``error`` holds the
    message), ``skipped`` (left pending by ``max_cells`` or assigned to
    another shard), or ``claimed`` (in flight on another live worker
    when this one finished).
    """

    cell: Cell
    status: str
    error: Optional[str] = None


@dataclass
class CampaignResult:
    """Summary of one :func:`run_campaign` invocation."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    def by_status(self, status: str) -> List[Cell]:
        return [o.cell for o in self.outcomes if o.status == status]

    @property
    def executed(self) -> List[Cell]:
        return self.by_status("executed")

    @property
    def cached(self) -> List[Cell]:
        return self.by_status("cached")

    @property
    def screened(self) -> List[Cell]:
        return self.by_status("screened")

    @property
    def failed(self) -> List[Cell]:
        return self.by_status("failed")

    @property
    def skipped(self) -> List[Cell]:
        return self.by_status("skipped")

    @property
    def claimed(self) -> List[Cell]:
        return self.by_status("claimed")

    def counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in _STATUSES}
        for o in self.outcomes:
            counts[o.status] = counts.get(o.status, 0) + 1
        return counts

    def summary_line(self) -> str:
        counts = self.counts()
        parts = [f"{counts[s]} {s}" for s in _STATUSES if counts[s]]
        return (
            f"campaign: {len(self.outcomes)} cell(s) — "
            + (", ".join(parts) if parts else "nothing to do")
            + f"  ({self.wall_seconds:.2f}s)"
        )


def _group_cells(cells: Sequence[Cell]) -> List[Tuple[Cell, List[Cell]]]:
    """Group cells sharing (scenario, params, policy, backend).

    Returns ``(representative, members)`` pairs in first-seen order;
    members differ only by seed, so one ``run_replications`` call
    covers the whole group.
    """
    groups: Dict[Tuple, List[Cell]] = {}
    order: List[Tuple] = []
    for cell in cells:
        gkey = (cell.scenario, cell.params, cell.policy, cell.backend)
        if gkey not in groups:
            groups[gkey] = []
            order.append(gkey)
        groups[gkey].append(cell)
    return [(groups[g][0], groups[g]) for g in order]


def _build_bus(
    trace: Optional[Union[TraceBus, TraceConfig]], spec: CampaignSpec
) -> Tuple[Optional[TraceBus], bool]:
    """(bus, owns_it) — a TraceConfig builds a worker-scoped bus.

    The "seed" slot of the stream name carries the pid so concurrent
    workers tracing into the same store never interleave one file.
    """
    if trace is None:
        return None, False
    if isinstance(trace, TraceConfig):
        return trace.build(scenario=spec.name, policy="campaign", seed=os.getpid()), True
    return trace, False


class _Heartbeat:
    """Daemon thread renewing this worker's held leases.

    Renewal cadence is a quarter of the TTL, so a worker must miss four
    consecutive beats before its lease can be stolen.  SIGKILL takes
    the thread down with the process — exactly the crash-detection
    signal the staleness policy wants.
    """

    def __init__(self, store: ResultStore, owner: str, ttl: float) -> None:
        self._store = store
        self._owner = owner
        self._interval = min(60.0, max(0.05, ttl / 4.0))
        self._keys: set = set()
        self._mutex = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def add(self, key: str) -> None:
        with self._mutex:
            self._keys.add(key)
            # Started lazily on the first held lease, so a fully-warm
            # re-run (nothing to claim) never pays for a thread.
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="campaign-lease-heartbeat", daemon=True
                )
                self._thread.start()

    def discard(self, key: str) -> None:
        with self._mutex:
            self._keys.discard(key)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            with self._mutex:
                keys = tuple(self._keys)
            for key in keys:
                try:
                    self._store.renew(key, self._owner)
                except OSError:  # pragma: no cover - transient fs hiccup
                    pass


class _Claims:
    """This worker's view of the lease protocol (executor-facing).

    Wraps the store's claim/release primitives with heartbeat tracking
    and ``campaign.claim.*`` trace events.  With ``enabled=False`` the
    whole protocol is a no-op — the lease-free fast path used by the
    orchestration-overhead benchmark's baseline.
    """

    def __init__(
        self,
        store: ResultStore,
        owner: str,
        ttl: float,
        bus: Optional[TraceBus],
        elapsed: Callable[[], float],
        heartbeat: Optional[_Heartbeat],
        enabled: bool = True,
    ) -> None:
        self.store = store
        self.owner = owner
        self.ttl = ttl
        self.bus = bus
        self.elapsed = elapsed
        self.heartbeat = heartbeat
        self.enabled = enabled
        self.stolen = 0

    def claim_all(self, cells: Sequence[Cell]) -> Tuple[List[Cell], List[Cell]]:
        """Try to claim every cell; returns ``(claimed, contended)``."""
        if not self.enabled:
            return list(cells), []
        if not cells:
            return [], []
        claimed: List[Cell] = []
        contended: List[Cell] = []
        now = self.store.fs_now()  # one probe per batch, not per cell
        for cell in cells:
            outcome = self.store.claim(cell, self.owner, self.ttl, fs_now=now)
            if not outcome.acquired:
                contended.append(cell)
                continue
            claimed.append(cell)
            if self.heartbeat is not None:
                self.heartbeat.add(cell.key())
            if outcome.stolen_from is not None:
                self.stolen += 1
                _log.warning(
                    "stole stale lease: %s",
                    kv(cell=cell.label(), previous_owner=outcome.stolen_from),
                )
                if self.bus is not None:
                    self.bus.emit(
                        "campaign.claim.stolen",
                        self.elapsed(),
                        key=cell.key(),
                        owner=self.owner,
                        previous_owner=outcome.stolen_from,
                    )
            if self.bus is not None:
                self.bus.emit(
                    "campaign.claim.acquired",
                    self.elapsed(),
                    key=cell.key(),
                    owner=self.owner,
                )
        return claimed, contended

    def release_all(self, cells: Sequence[Cell]) -> None:
        """Release whichever of ``cells`` this worker still holds."""
        if not self.enabled:
            return
        for cell in cells:
            key = cell.key()
            if self.heartbeat is not None:
                self.heartbeat.discard(key)
            if self.store.release(key, self.owner) and self.bus is not None:
                self.bus.emit(
                    "campaign.claim.released",
                    self.elapsed(),
                    key=key,
                    owner=self.owner,
                )


def run_campaign(
    spec: CampaignSpec,
    store: Optional[Union[str, ResultStore]] = None,
    workers: Optional[int] = None,
    quick: bool = False,
    trace: Optional[Union[TraceBus, TraceConfig]] = None,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    metrics: Optional[MetricsConfig] = None,
    shard: Optional[Union[str, Tuple[int, int]]] = None,
    owner: Optional[str] = None,
    lease_ttl: Optional[float] = None,
    coordinate: bool = True,
) -> CampaignResult:
    """Execute (or resume) a campaign against its result store.

    Parameters
    ----------
    spec:
        The validated campaign.
    store:
        A :class:`~repro.campaigns.store.ResultStore`, a directory
        path, or ``None`` for the spec's own store location.
    workers:
        Pool size per cell group; ``None`` uses ``spec.workers``
        (0 = one per CPU).
    quick:
        Expand the grid with each scenario block's ``quick`` overrides
        applied.  Quick cells hash differently from full cells — the
        two grids never collide in the store.
    trace:
        ``None``, a live :class:`~repro.obs.bus.TraceBus`, or a
        :class:`~repro.obs.bus.TraceConfig` (one worker-scoped bus is
        built and closed around the run).
    max_cells:
        Execute at most this many *new* cells, then leave the rest
        pending (``skipped``) — the testing hook for interrupt/resume
        semantics (cached and screened cells do not count).
    progress:
        Optional line sink (e.g. ``print``) for per-group progress.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsConfig` forwarded to
        every executed cell.  A config without a ``path`` is pointed at
        the store's ``telemetry/`` directory, which is where
        ``repro campaign watch`` reads live snapshot streams from.
    shard:
        ``None`` (own the whole grid, work-stealing with any concurrent
        workers) or a static partition — ``"i/N"`` text or an
        ``(index, count)`` pair.  Shard *i* owns cells whose grid index
        is congruent to *i* mod *N*; off-shard cells report ``skipped``.
    owner:
        Lease owner id; defaults to :func:`default_owner`.
    lease_ttl:
        Seconds a silent lease stays protected before any worker may
        steal it; ``None`` uses ``spec.lease_ttl``.
    coordinate:
        ``False`` disables the lease protocol entirely (single-writer
        stores only) — the benchmark baseline for measuring claim
        overhead.

    Returns
    -------
    CampaignResult
        One :class:`CellOutcome` per cell of the expanded grid.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(spec.store_path(store))
    if workers is None:
        workers = spec.workers
    if workers == 0:  # 0 = auto: one worker per CPU
        from ..experiments.parallel import default_workers

        workers = default_workers()
    pool_workers = max(1, int(workers))
    if metrics is not None and metrics.path is None:
        metrics = dataclasses.replace(
            metrics, path=str(store.root / "telemetry") + "/"
        )
    if isinstance(shard, str):
        shard = parse_shard(shard)
    if shard is not None:
        _check_shard(*shard)
    owner = owner or default_owner()
    ttl = float(spec.lease_ttl if lease_ttl is None else lease_ttl)
    if ttl <= 0:
        raise ConfigurationError(f"lease_ttl must be > 0, got {ttl}")

    cells = spec.expanded(quick=quick)
    bus, owns_bus = _build_bus(trace, spec)
    # Event clock for campaign.* traces: wall-clock seconds since
    # campaign start, read through the sanctioned duration meter.
    elapsed = Stopwatch().elapsed
    say = progress or (lambda line: None)
    result = CampaignResult()
    emitted: Dict[str, CellOutcome] = {}

    def finish(cell: Cell, status: str, error: Optional[str] = None) -> None:
        emitted[cell.key()] = CellOutcome(cell, status, error)

    # Desired state: this worker's slice of the grid.
    mine = list(cells)
    if shard is not None:
        index, count = shard
        mine = [c for i, c in enumerate(cells) if i % count == index]
        for i, cell in enumerate(cells):
            if i % count != index:
                finish(cell, "skipped")
        say(f"shard {index}/{count}: {len(mine)}/{len(cells)} cell(s)")

    heartbeat = _Heartbeat(store, owner, ttl) if coordinate else None
    claims = _Claims(
        store, owner, ttl, bus, elapsed, heartbeat, enabled=coordinate
    )
    budget = max_cells if max_cells is not None else len(mine)

    try:
        remaining = mine
        while remaining:
            deferred: List[Cell] = []
            advanced = 0

            # 1. Observe: serve everything already in the store (peers'
            #    results land here between rounds).
            pending: List[Cell] = []
            for cell in remaining:
                if store.has(cell):
                    finish(cell, "cached")
                    advanced += 1
                    if bus is not None:
                        bus.emit("campaign.cell.cached", elapsed(), key=cell.key())
                else:
                    pending.append(cell)
            if len(remaining) != len(pending):
                say(
                    f"cache: {len(remaining) - len(pending)}/{len(remaining)} "
                    "cell(s) already stored"
                )

            # 2. Fluid prescreen of expensive DES cells (optional).
            #    Twins are claimed like any other work; a twin held by a
            #    peer defers its DES cell to the next round.
            if spec.prescreen:
                pending, screened, held = _runner.prescreen_cells(
                    spec, store, pending, bus, elapsed, finish, say, claims
                )
                advanced += screened
                deferred.extend(held)

            # 3. Claim and execute the remaining cells, group by group.
            for head, members in _group_cells(pending):
                if budget <= 0:
                    for cell in members:
                        finish(cell, "skipped")
                    continue
                batch, rest = members[:budget], members[budget:]
                for cell in rest:
                    finish(cell, "skipped")
                claimed, contended = claims.claim_all(batch)
                deferred.extend(contended)
                # Everything under the lease lives inside one
                # try/finally: an exception anywhere between the claim
                # and the release (the landed re-check and its trace
                # emits included) must not leak leases until the TTL
                # steal — peers would stall a full staleness window.
                try:
                    # Re-check under the lease: a peer may have finished
                    # a cell between our cache scan and the claim —
                    # serve it instead of executing twice.
                    landed = [c for c in claimed if store.has(c)]
                    to_run = claimed
                    if landed:
                        for cell in landed:
                            finish(cell, "cached")
                            if bus is not None:
                                bus.emit(
                                    "campaign.cell.cached",
                                    elapsed(),
                                    key=cell.key(),
                                )
                        advanced += len(landed)
                        to_run = [c for c in claimed if not store.has(c)]
                    if to_run:
                        budget -= len(to_run)
                        _runner.run_group(
                            spec, store, head, to_run, pool_workers, bus,
                            elapsed, finish, say, metrics, claims,
                        )
                        advanced += len(to_run)
                finally:
                    # Normally a no-op (the runner releases per cell);
                    # an interrupt mid-group frees the untouched rest,
                    # and the landed cells release here too.
                    claims.release_all(claimed)

            if budget <= 0 and deferred:
                # Out of budget: contended cells are just "left pending",
                # same as the over-budget branch above.
                for cell in deferred:
                    finish(cell, "skipped")
                break
            if deferred and advanced == 0:
                # Every remaining cell is held by a live peer and nothing
                # landed this round — record them as in flight and let
                # `status`/`agg` observe the peers finishing.
                for cell in deferred:
                    finish(cell, "claimed")
                say(
                    f"{len(deferred)} cell(s) in flight on other worker(s); "
                    "not waiting"
                )
                break
            remaining = deferred
        if coordinate:
            # Heal the index (crash between artifact and manifest) and
            # prune orphan leases of finished cells.  A pure cache-served
            # re-run skips the heal: it wrote nothing, and a run that did
            # write already healed — this keeps the warm-path lease tax
            # inside the bench gate's 5% budget.
            wrote = any(
                o.status in ("executed", "failed", "screened")
                for o in emitted.values()
            )
            if wrote or claims.stolen or store.has_leases():
                store.refresh_manifest(cells)
        if claims.stolen:
            say(f"stole {claims.stolen} stale lease(s) from dead worker(s)")
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        # Interrupt-path guarantee: a campaign killed mid-run must leave
        # every already-emitted event on disk.  Owned buses are closed
        # (final flush included); borrowed ones are flushed but left
        # open for the caller.
        if bus is not None:
            if owns_bus:
                bus.close()
            else:
                bus.flush()

    # Report outcomes in grid order.
    result.outcomes = [emitted[c.key()] for c in cells]
    result.wall_seconds = elapsed()
    return result
