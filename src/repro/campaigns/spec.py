"""Campaign specifications — declarative grids over scenarios × policies.

A :class:`CampaignSpec` describes an evaluation campaign the way the
paper's §VI does: a set of scenario configurations, each crossed with
a list of policies, execution backends, and replication seeds.  Specs
load from TOML (Python 3.11+, via :mod:`tomllib`), JSON, or a plain
dict, and expand deterministically into hashable :class:`Cell` work
items — one per ``(scenario, policy, backend, seed)`` combination.

Determinism is the load-bearing property: expansion preserves the
spec's written order, canonicalizes seeds (sorted, deduplicated), and
produces cells whose :meth:`Cell.key` is a stable content hash of the
full cell configuration plus the result-schema versions.  Two loads of
the same spec therefore expand to the same cells with the same keys,
which is what makes the result store's skip-if-cached and crash-safe
resume semantics possible at all.

Validation happens at load time, not run time: unknown scenario names,
unparsable policies, unknown backends, bad seeds, and ``figure``
cross-references that do not name a known experiment id (see
:func:`repro.experiments.cli.available_experiments`) all raise
:class:`~repro.errors.ConfigurationError` before any cell executes;
scenario parameters are checked by actually constructing the
:class:`~repro.experiments.scenario.ScenarioConfig` they denote.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..backends.base import BACKENDS
from ..core.policies import AdaptivePolicy, StaticPolicy
from ..economy.policies import ProfitPolicy, SpotPolicy
from ..economy.pricing import PricingModel
from ..errors import ConfigurationError
from ..experiments.parallel import PolicySpec
from ..experiments.scenario import ScenarioConfig, scientific_scenario, web_scenario
from ..experiments.seeds import parse_seeds
from ..sim.calendar import SECONDS_PER_DAY, SECONDS_PER_WEEK

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "SCENARIO_BUILDERS",
    "Cell",
    "ScenarioGrid",
    "CampaignSpec",
]

#: Bumped whenever the cell-configuration hash material changes shape;
#: folded into every :meth:`Cell.key`, so a schema bump invalidates
#: stored results instead of silently misreading them.
CAMPAIGN_SCHEMA_VERSION = 1

#: Scenario name → factory accepting keyword parameters.  The names
#: are the vocabulary campaign specs draw from.
SCENARIO_BUILDERS: Dict[str, Callable[..., ScenarioConfig]] = {
    "web": web_scenario,
    "scientific": scientific_scenario,
}

#: Readability aliases accepted wherever a spec gives a horizon.
_HORIZON_ALIASES = {"day": SECONDS_PER_DAY, "week": SECONDS_PER_WEEK}


def _canonical_json(obj: Any) -> str:
    """Deterministic JSON used as hash material (sorted keys, no spaces)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _normalize_horizon(value: Any) -> float:
    if isinstance(value, str):
        try:
            return float(_HORIZON_ALIASES[value])
        except KeyError:
            raise ConfigurationError(
                f"unknown horizon alias {value!r}; expected a number of "
                f"seconds or one of {sorted(_HORIZON_ALIASES)}"
            )
    return float(value)


def _parse_suffixed(norm: str, stem: str) -> Optional[int]:
    """``"<stem>-N"`` / ``"<stem>:N"`` → N, else ``None``."""
    for sep in ("-", ":"):
        prefix = f"{stem}{sep}"
        if norm.startswith(prefix):
            try:
                return int(norm[len(prefix):])
            except ValueError:
                return None
    return None


def _policy_factory(policy: str) -> Tuple[str, Callable[[], Any]]:
    """``(label, picklable factory)`` for one policy string.

    ``"adaptive"`` builds the paper's mechanism and ``"profit"`` the
    profit-maximizing ``m*`` variant, both with the *scenario's*
    analyzer cadence filled in by the caller; ``"spot-N"`` (or
    ``"spot:N"``) runs N % of capacity as revocable spot;
    ``"static-N"`` a fixed fleet of N.
    """
    norm = policy.strip().lower()
    if norm == "adaptive":
        return "Adaptive", PolicySpec(AdaptivePolicy)
    if norm == "profit":
        return "Profit", PolicySpec(ProfitPolicy)
    n = _parse_suffixed(norm, "static")
    if n is not None:
        return f"Static-{n}", PolicySpec(StaticPolicy, n)
    n = _parse_suffixed(norm, "spot")
    if n is not None:
        if not 0 < n < 100:
            raise ConfigurationError(
                f"spot percentage must be in (0, 100), got {policy!r}"
            )
        return f"Spot-{n}", PolicySpec(SpotPolicy, n / 100.0)
    raise ConfigurationError(
        f"unknown policy {policy!r}; expected 'adaptive', 'profit', "
        "'spot-N', or 'static-N'"
    )


@dataclass(frozen=True)
class Cell:
    """One schedulable unit of a campaign grid.

    A cell is the full configuration of one replication —
    ``(scenario name + parameters, policy, backend, seed)`` — in a
    hashable, picklable form.  Its :meth:`key` is a stable SHA-256 of
    the canonical cell configuration plus the campaign and persist
    schema versions, which the result store uses as the content
    address.

    Attributes
    ----------
    scenario:
        Registry name (``"web"`` / ``"scientific"``).
    params:
        Scenario-factory keyword parameters as a sorted
        ``(name, value)`` tuple (kept hashable; values are JSON
        scalars).
    policy:
        Policy string (``"adaptive"``, ``"static-75"``).
    backend:
        Execution backend spec (``"des"`` / ``"des-vec"`` / ``"fluid"``).
    seed:
        Replication seed.
    """

    scenario: str
    params: Tuple[Tuple[str, Any], ...]
    policy: str
    backend: str
    seed: int

    def config(self) -> Dict[str, Any]:
        """The cell's full configuration as a JSON-safe dict."""
        return {
            "scenario": self.scenario,
            "params": dict(self.params),
            "policy": self.policy,
            "backend": self.backend,
            "seed": self.seed,
        }

    def key(self) -> str:
        """Stable content hash of this cell (store address)."""
        from ..experiments import persist

        material = {
            "campaign_schema": CAMPAIGN_SCHEMA_VERSION,
            "results_schema": persist._VERSION,
            "cell": self.config(),
        }
        return hashlib.sha256(_canonical_json(material).encode("utf-8")).hexdigest()

    @property
    def policy_label(self) -> str:
        return _policy_factory(self.policy)[0]

    def label(self) -> str:
        """Human-readable one-line identification for logs and tables."""
        return f"{self.scenario_label()}/{self.policy_label}/{self.backend}/s{self.seed}"

    def scenario_label(self) -> str:
        params = dict(self.params)
        custom = params.get("name")
        if custom:
            # A block-level ``name`` override (e.g. two pricing regimes
            # of the same scenario) labels the rows unambiguously.
            return str(custom)
        scale = params.get("scale", 1.0)
        suffix = f"@1/{scale:g}" if scale not in (None, 1.0) else ""
        return f"{self.scenario}{suffix}"

    def build_scenario(self) -> ScenarioConfig:
        """Construct the (validated) scenario this cell runs."""
        return SCENARIO_BUILDERS[self.scenario](**dict(self.params))

    def policy_factory(self) -> Callable[[], Any]:
        """Picklable policy factory, with the scenario's cadence wired in.

        The paper runs its adaptive mechanism at the scenario's
        analyzer cadence (900 s web, 1800 s scientific), so the
        adaptive factory inherits ``update_interval`` / ``lead_time``
        from the built scenario rather than the policy-class defaults.
        """
        label, factory = _policy_factory(self.policy)
        if label == "Adaptive":
            scenario = self.build_scenario()
            return PolicySpec(
                AdaptivePolicy,
                update_interval=scenario.update_interval,
                lead_time=scenario.lead_time,
            )
        if label == "Profit" or label.startswith("Spot-"):
            # Economy policies additionally inherit the scenario's
            # pricing model, so the policy's cost terms and the run's
            # ledger bill against the same contract.
            scenario = self.build_scenario()
            kwargs = dict(
                update_interval=scenario.update_interval,
                lead_time=scenario.lead_time,
                pricing=scenario.pricing,
            )
            if label == "Profit":
                return PolicySpec(ProfitPolicy, **kwargs)
            fraction = int(label.split("-", 1)[1]) / 100.0
            return PolicySpec(SpotPolicy, fraction, **kwargs)
        return factory


@dataclass(frozen=True)
class ScenarioGrid:
    """One scenario block of a campaign: a scenario × its own sweep axes.

    Attributes
    ----------
    scenario:
        Scenario registry name.
    params:
        Scenario-factory parameters (sorted tuple form, see
        :class:`Cell`).
    policies, backends, seeds:
        The sweep axes crossed with this scenario.  Order of policies
        and backends is preserved from the spec; seeds are canonical
        (sorted, deduplicated).
    figure:
        Optional cross-reference to the experiment id this block
        reproduces (validated against
        :func:`~repro.experiments.cli.available_experiments`).
    quick:
        Parameter overrides applied by :meth:`CampaignSpec.expanded`
        under ``quick=True`` — typically a shorter horizon, a higher
        rate-scale, or a trimmed seed list.
    """

    scenario: str
    params: Tuple[Tuple[str, Any], ...]
    policies: Tuple[str, ...]
    backends: Tuple[str, ...]
    seeds: Tuple[int, ...]
    figure: Optional[str] = None
    quick: Tuple[Tuple[str, Any], ...] = ()

    def cells(self, quick: bool = False) -> List[Cell]:
        """Expand this block into its cells (deterministic order)."""
        params = dict(self.params)
        seeds = self.seeds
        if quick:
            overrides = dict(self.quick)
            if "seeds" in overrides:
                seeds = tuple(sorted(set(parse_seeds(overrides.pop("seeds")))))
            params.update(overrides)
        frozen = tuple(sorted(params.items()))
        return [
            Cell(scenario=self.scenario, params=frozen, policy=p, backend=b, seed=s)
            for b in self.backends
            for p in self.policies
            for s in seeds
        ]


def _freeze_params(raw: Mapping[str, Any], *, where: str) -> Tuple[Tuple[str, Any], ...]:
    params: Dict[str, Any] = {}
    for name, value in raw.items():
        if name == "pricing":
            # The one structured parameter: a pricing table, frozen to
            # the model's canonical sorted pair-tuple so it stays
            # hashable and feeds the cell hash deterministically.
            # ScenarioConfig coerces the tuple back into a model.
            if not isinstance(value, Mapping):
                raise ConfigurationError(
                    f"{where}: 'pricing' must be a table, got {value!r}"
                )
            params[name] = PricingModel.coerce(value).as_tuple()
            continue
        if name == "horizon":
            value = _normalize_horizon(value)
        elif isinstance(value, bool):
            pass
        elif isinstance(value, (int, float)) and name in ("scale",):
            value = float(value)
        if not isinstance(value, (str, int, float, bool, type(None))):
            raise ConfigurationError(
                f"{where}: parameter {name!r} must be a JSON scalar, got {value!r}"
            )
        params[name] = value
    return tuple(sorted(params.items()))


def _build_grid(raw: Mapping[str, Any], defaults: Mapping[str, Any], index: int) -> ScenarioGrid:
    raw = dict(raw)
    where = f"scenarios[{index}]"
    name = raw.pop("scenario", None) or raw.pop("name", None)
    if name not in SCENARIO_BUILDERS:
        raise ConfigurationError(
            f"{where}: unknown scenario {name!r}; expected one of "
            f"{sorted(SCENARIO_BUILDERS)}"
        )
    figure = raw.pop("figure", None)
    if figure is not None:
        from ..experiments.cli import available_experiments

        known = available_experiments()
        if figure not in known:
            raise ConfigurationError(
                f"{where}: figure {figure!r} is not a known experiment id; "
                f"expected one of {sorted(known)}"
            )
    policies = tuple(raw.pop("policies", defaults.get("policies", ("adaptive",))))
    if not policies:
        raise ConfigurationError(f"{where}: policy list is empty")
    for p in policies:
        _policy_factory(p)  # validate eagerly
    backends = tuple(raw.pop("backends", defaults.get("backends", ("des",))))
    if not backends:
        raise ConfigurationError(f"{where}: backend list is empty")
    for b in backends:
        if b not in BACKENDS:
            raise ConfigurationError(
                f"{where}: unknown backend {b!r}; expected one of {sorted(BACKENDS)}"
            )
    seeds = tuple(
        sorted(set(parse_seeds(raw.pop("seeds", defaults.get("seeds", "0")))))
    )
    if not seeds:
        raise ConfigurationError(f"{where}: seed list is empty")
    quick_raw = raw.pop("quick", {})
    if not isinstance(quick_raw, Mapping):
        raise ConfigurationError(f"{where}: 'quick' must be a table of overrides")
    quick = dict(quick_raw)
    quick_frozen: Dict[str, Any] = {}
    if "seeds" in quick:
        # Canonical string form keeps the frozen tuple hashable and the
        # quick seed list re-parsable at expansion time.
        quick_frozen["seeds"] = ",".join(str(s) for s in parse_seeds(quick.pop("seeds")))
    quick_frozen.update(dict(_freeze_params(quick, where=where + ".quick")))
    grid = ScenarioGrid(
        scenario=name,
        params=_freeze_params(raw, where=where),
        policies=policies,
        backends=backends,
        seeds=seeds,
        figure=figure,
        quick=tuple(sorted(quick_frozen.items())),
    )
    # Constructing the scenarios validates the parameters themselves
    # (ScenarioConfig raises ConfigurationError on bad values).
    for q in (False, True) if grid.quick else (False,):
        grid.cells(quick=q)[0].build_scenario()
    return grid


@dataclass(frozen=True)
class CampaignSpec:
    """A fully validated campaign: identity + store + execution + grid.

    Attributes
    ----------
    name:
        Campaign identifier (also the default store directory name).
    description:
        Free-form one-liner shown by ``repro campaign status``.
    store:
        Result-store directory; ``None`` defaults to
        ``.campaigns/<name>``.
    workers:
        Process-pool size per cell group (0 = one per CPU).
    retries:
        Re-attempts (sequential, in-process) after a worker-pool
        failure before a cell group is marked failed.
    prescreen:
        When true, DES cells are prescreened by their fluid twin: the
        same ``(scenario, policy, seed)`` evaluated analytically first
        (cheap, cached like any cell); DES cells whose fluid rejection
        rate exceeds ``prescreen_max_rejection`` are skipped as
        ``screened`` instead of burning hours simulating a
        configuration the analytical model already rules out.
    prescreen_max_rejection:
        The screening threshold (fraction of arrivals rejected).
    lease_ttl:
        Seconds a claimed cell's lease stays protected without a
        heartbeat before other workers may steal it.  Must comfortably
        exceed the heartbeat cadence (TTL/4); the default tolerates a
        worker stalling for 15 minutes before its work is reassigned.
    grids:
        The scenario blocks, in spec order.
    """

    name: str
    description: str = ""
    store: Optional[str] = None
    workers: int = 0
    retries: int = 1
    prescreen: bool = False
    prescreen_max_rejection: float = 0.5
    lease_ttl: float = 900.0
    grids: Tuple[ScenarioGrid, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"campaign name must be a non-empty string, got {self.name!r}")
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if not self.grids:
            raise ConfigurationError("campaign has no scenario blocks")
        if not 0.0 <= self.prescreen_max_rejection <= 1.0:
            raise ConfigurationError(
                "prescreen_max_rejection must be in [0, 1], got "
                f"{self.prescreen_max_rejection!r}"
            )
        if not self.lease_ttl > 0:
            raise ConfigurationError(
                f"lease_ttl must be > 0 seconds, got {self.lease_ttl!r}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "CampaignSpec":
        """Build and validate a spec from its dict form (TOML layout)."""
        if not isinstance(raw, Mapping):
            raise ConfigurationError(f"campaign spec must be a mapping, got {type(raw).__name__}")
        raw = dict(raw)
        campaign = dict(raw.pop("campaign", {}))
        store = dict(raw.pop("store", {}))
        execution = dict(raw.pop("execution", {}))
        scenarios = raw.pop("scenarios", [])
        if raw:
            raise ConfigurationError(
                f"unknown top-level campaign keys {sorted(raw)}; expected "
                "'campaign', 'store', 'execution', 'scenarios'"
            )
        if not isinstance(scenarios, Sequence) or isinstance(scenarios, (str, bytes)):
            raise ConfigurationError("'scenarios' must be an array of tables")
        defaults = {
            k: execution.pop(k)
            for k in ("policies", "backends", "seeds")
            if k in execution
        }
        grids = tuple(
            _build_grid(block, defaults, i) for i, block in enumerate(scenarios)
        )
        prescreen = execution.pop("prescreen", False)
        spec = cls(
            name=campaign.get("name", "campaign"),
            description=campaign.get("description", ""),
            store=store.get("path"),
            workers=int(execution.pop("workers", 0)),
            retries=int(execution.pop("retries", 1)),
            prescreen=bool(prescreen),
            prescreen_max_rejection=float(execution.pop("prescreen_max_rejection", 0.5)),
            lease_ttl=float(execution.pop("lease_ttl", 900.0)),
            grids=grids,
        )
        if execution:
            raise ConfigurationError(
                f"unknown [execution] keys {sorted(execution)}"
            )
        return spec

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a spec file — ``.toml`` or ``.json`` by extension."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"campaign spec not found: {path}")
        if path.suffix.lower() == ".json":
            return cls.from_dict(json.loads(path.read_text()))
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py<3.11
            try:
                import tomli as tomllib  # type: ignore[no-redef]
            except ImportError:
                raise ConfigurationError(
                    f"{path}: reading TOML specs needs Python 3.11+ "
                    "(tomllib) or the 'tomli' package; the JSON spec "
                    "form works everywhere"
                )
        with path.open("rb") as fh:
            return cls.from_dict(tomllib.load(fh))

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def expanded(self, quick: bool = False) -> List[Cell]:
        """The campaign's cells: deterministic, duplicate-free, ordered.

        Order follows the spec (scenario blocks, then backends, then
        policies, then sorted seeds); duplicate cells across blocks
        collapse to their first occurrence.
        """
        seen = set()
        cells: List[Cell] = []
        for grid in self.grids:
            for cell in grid.cells(quick=quick):
                key = cell.key()
                if key in seen:
                    continue
                seen.add(key)
                cells.append(cell)
        return cells

    def store_path(self, override: Optional[Union[str, Path]] = None) -> Path:
        """The result-store directory for this campaign."""
        if override is not None:
            return Path(override)
        if self.store:
            return Path(self.store)
        return Path(".campaigns") / self.name
