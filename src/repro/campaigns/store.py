"""Content-addressed result store — the campaign engine's memory.

Every executed cell is persisted as one versioned persist-v2 results
file (see :mod:`repro.experiments.persist`) at a path derived from the
cell's content hash::

    <root>/cells/<key[:2]>/<key>.json
    <root>/manifest.json

The cell *files* are the source of truth: :meth:`ResultStore.has` and
:meth:`ResultStore.get` consult the filesystem, so deleting one cell's
artifact re-schedules exactly that cell on the next run, and a crash
between a cell write and a manifest update loses nothing (writes are
atomic ``tmp + os.replace`` renames, and the manifest is re-derivable
at any time via :meth:`ResultStore.refresh_manifest`).

The manifest is a human/CI-queryable index — one entry per known cell
key with its identification, status (``cached`` / ``failed`` /
``screened``), and relative artifact path — used by ``repro campaign
status`` without loading any result payloads.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from ..backends.base import RunMetrics
from ..errors import ConfigurationError
from ..experiments.persist import load_results, result_to_dict, _FORMAT, _VERSION
from .spec import CAMPAIGN_SCHEMA_VERSION, Cell

__all__ = ["ResultStore"]

_MANIFEST_FORMAT = "repro-campaign-manifest"
_MANIFEST_VERSION = 1


def _atomic_write(path: Path, text: str) -> None:
    """Write-then-rename so readers never see a torn file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class ResultStore:
    """On-disk cache of cell results, keyed by content hash.

    Parameters
    ----------
    root:
        Store directory (created on first write).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._manifest: Optional[Dict[str, dict]] = None

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def path_for(self, cell: Cell) -> Path:
        """The artifact path a cell's result lives at (may not exist)."""
        key = cell.key()
        return self.root / "cells" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Cell results
    # ------------------------------------------------------------------
    def has(self, cell: Cell) -> bool:
        """Whether this cell's result is already on disk."""
        return self.path_for(cell).is_file()

    def get(self, cell: Cell) -> Optional[RunMetrics]:
        """The stored result, or ``None`` on a cache miss."""
        path = self.path_for(cell)
        if not path.is_file():
            return None
        results = load_results(path)
        if len(results) != 1:
            raise ConfigurationError(
                f"{path}: cell artifact holds {len(results)} results, expected 1"
            )
        return results[0]

    def put(self, cell: Cell, metrics: RunMetrics, status: str = "cached") -> Path:
        """Persist one cell result atomically and index it."""
        path = self.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": _FORMAT,
            "version": _VERSION,
            "campaign_schema": CAMPAIGN_SCHEMA_VERSION,
            "cell": cell.config(),
            "results": [result_to_dict(metrics)],
        }
        _atomic_write(path, json.dumps(doc, indent=1, sort_keys=True))
        self._update_manifest(cell, status=status)
        return path

    def delete(self, cell: Cell) -> bool:
        """Drop one cell's artifact (and its manifest entry)."""
        path = self.path_for(cell)
        existed = path.is_file()
        if existed:
            path.unlink()
        manifest = self._load_manifest()
        if manifest.pop(cell.key(), None) is not None or existed:
            self._write_manifest(manifest)
        return existed

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _load_manifest(self) -> Dict[str, dict]:
        if self._manifest is not None:
            return self._manifest
        if not self.manifest_path.is_file():
            self._manifest = {}
            return self._manifest
        doc = json.loads(self.manifest_path.read_text())
        if doc.get("format") != _MANIFEST_FORMAT:
            raise ConfigurationError(f"{self.manifest_path}: not a campaign manifest")
        if doc.get("version") != _MANIFEST_VERSION:
            raise ConfigurationError(
                f"{self.manifest_path}: unsupported manifest version "
                f"{doc.get('version')!r} (this build reads {_MANIFEST_VERSION})"
            )
        self._manifest = dict(doc.get("cells", {}))
        return self._manifest

    def _write_manifest(self, manifest: Dict[str, dict]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": _MANIFEST_FORMAT,
            "version": _MANIFEST_VERSION,
            "campaign_schema": CAMPAIGN_SCHEMA_VERSION,
            "cells": manifest,
        }
        _atomic_write(self.manifest_path, json.dumps(doc, indent=1, sort_keys=True))
        self._manifest = manifest

    def _update_manifest(self, cell: Cell, status: str, **extra: object) -> None:
        manifest = self._load_manifest()
        entry = dict(cell.config())
        entry["status"] = status
        path = self.path_for(cell)
        # Only "cached" entries have an artifact; "failed" and
        # "screened" are manifest-only records.
        entry["file"] = str(path.relative_to(self.root)) if status == "cached" else None
        entry.update(extra)
        manifest[cell.key()] = entry
        self._write_manifest(manifest)

    def mark_failed(self, cell: Cell, error: str) -> None:
        """Record a failed cell in the manifest (no artifact written)."""
        self._update_manifest(cell, status="failed", error=error)

    def mark_screened(self, cell: Cell, rejection_rate: float) -> None:
        """Record a fluid-prescreened cell (no artifact written)."""
        self._update_manifest(cell, status="screened", rejection_rate=rejection_rate)

    def status_of(self, cell: Cell) -> str:
        """``cached`` / ``screened`` / ``failed`` / ``missing`` for one cell.

        Disk truth first: an artifact on disk is ``cached`` no matter
        what the index says; manifest-only entries report their
        recorded status (``screened`` / ``failed``); everything else is
        ``missing``.
        """
        if self.has(cell):
            return "cached"
        entry = self._load_manifest().get(cell.key())
        if entry and entry.get("status") in ("screened", "failed"):
            return entry["status"]
        return "missing"

    def manifest(self) -> Dict[str, dict]:
        """A copy of the manifest index (key → entry)."""
        return dict(self._load_manifest())

    def refresh_manifest(self, cells: Iterable[Cell]) -> Dict[str, dict]:
        """Re-derive manifest entries for ``cells`` from the filesystem.

        Heals the index after a crash between a cell write and the
        manifest update: every on-disk artifact gains (or keeps) an
        entry, entries whose artifact vanished are dropped (unless they
        record a failure, which has no artifact by construction).
        """
        manifest = dict(self._load_manifest())
        changed = False
        for cell in cells:
            key = cell.key()
            entry = manifest.get(key)
            if self.has(cell):
                if entry is None or entry.get("status") != "cached":
                    entry = dict(cell.config())
                    entry["status"] = "cached"
                    entry["file"] = str(self.path_for(cell).relative_to(self.root))
                    manifest[key] = entry
                    changed = True
            elif entry is not None and entry.get("status") == "cached":
                manifest.pop(key)
                changed = True
        if changed:
            self._write_manifest(manifest)
        return dict(manifest)
