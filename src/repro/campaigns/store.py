"""Content-addressed result store — the campaign engine's memory.

Every executed cell is persisted as one versioned persist-v2 results
file (see :mod:`repro.experiments.persist`) at a path derived from the
cell's content hash::

    <root>/cells/<key[:2]>/<key>.json
    <root>/leases/<key>.json
    <root>/manifest.json

The cell *files* are the source of truth: :meth:`ResultStore.has` and
:meth:`ResultStore.get` consult the filesystem, so deleting one cell's
artifact re-schedules exactly that cell on the next run, and a crash
between a cell write and a manifest update loses nothing (writes are
durable ``tmp + fsync + os.replace`` renames, and the manifest is
re-derivable at any time via :meth:`ResultStore.refresh_manifest`).

The manifest is a human/CI-queryable index — one entry per known cell
key with its identification, status (``cached`` / ``failed`` /
``screened``), and relative artifact path — used by ``repro campaign
status`` without loading any result payloads.  Concurrent workers
serialize manifest read-modify-write cycles through an advisory
``manifest.lock`` file.

Leases are the store-level claim protocol that lets several worker
processes (or hosts sharing a filesystem) cooperate on one grid:

* :meth:`claim` atomically creates ``leases/<key>.json`` with
  ``O_CREAT | O_EXCL`` — exactly one worker wins a contended cell.
* The lease file's **mtime is the heartbeat**: :meth:`renew` touches
  it; a lease whose mtime age exceeds the TTL is *stale* and
  :meth:`claim` steals it (rename to a claimant-unique tombstone, so
  concurrent stealers race on ``os.rename`` and exactly one wins).
* Staleness is judged against :meth:`fs_now` — the mtime of a freshly
  touched probe file — so lease ages live in the *filesystem's* clock
  domain and cross-host wall-clock skew on a shared store is harmless.

A lease is never a result: :meth:`refresh_manifest` ignores leases
when healing the index and prunes orphaned lease files whose cell
already has an artifact, so a crashed worker's leftovers are always
reclaimable work, never phantom completions.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..backends.base import RunMetrics
from ..errors import ConfigurationError
from ..experiments.persist import load_results, result_to_dict, _FORMAT, _VERSION
from .spec import CAMPAIGN_SCHEMA_VERSION, Cell

__all__ = ["ClaimOutcome", "Lease", "ResultStore"]

_MANIFEST_FORMAT = "repro-campaign-manifest"
_MANIFEST_VERSION = 1
_LEASE_FORMAT = "repro-campaign-lease"
_LEASE_VERSION = 1
# How long a crashed worker may hold the manifest lock before other
# workers break it.  Manifest writes are milliseconds, so 10 s of age
# can only mean the holder died between create and unlink.
_LOCK_TTL = 10.0


def _atomic_write(path: Path, text: str, durable: bool = True) -> None:
    """Write-then-rename so readers never see a torn file.

    With ``durable`` (the default for artifacts and the manifest) the
    temp file is fsynced before the rename and the containing directory
    is fsynced after it, so a crash straight through the commit can
    never leave a manifest entry pointing at a torn or missing cell
    artifact.  Advisory files (leases, locks) skip the fsyncs — losing
    one on power failure just re-exposes the cell as claimable work.
    """
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    data = text.encode("utf-8")
    fd = os.open(tmp, os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        if durable:
            os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    if durable:
        _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    """Flush a rename to disk by fsyncing the directory inode."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync semantics
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class Lease:
    """One observed claim record: who owns a cell and for how long."""

    key: str
    owner: str
    age_seconds: float
    path: Path


@dataclass(frozen=True)
class ClaimOutcome:
    """Result of one :meth:`ResultStore.claim` attempt.

    ``owner`` is whoever holds the lease *after* the call — the caller
    on success, the competing worker on contention.  ``stolen_from``
    names the previous owner when acquisition went through a stale-lease
    steal.
    """

    acquired: bool
    owner: str
    stolen_from: Optional[str] = None


class ResultStore:
    """On-disk cache of cell results, keyed by content hash.

    Parameters
    ----------
    root:
        Store directory (created on first write).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._manifest: Optional[Dict[str, dict]] = None
        self._manifest_stamp: Optional[object] = None

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def leases_root(self) -> Path:
        return self.root / "leases"

    def path_for(self, cell: Cell) -> Path:
        """The artifact path a cell's result lives at (may not exist)."""
        key = cell.key()
        return self.root / "cells" / key[:2] / f"{key}.json"

    def lease_path(self, key: str) -> Path:
        """The lease path guarding one cell key (may not exist)."""
        return self.leases_root / f"{key}.json"

    # ------------------------------------------------------------------
    # Filesystem clock
    # ------------------------------------------------------------------
    def fs_now(self) -> float:
        """The store filesystem's idea of "now" (seconds).

        Touches a per-process probe file and reads its mtime back, so
        the value is in the same clock domain as lease heartbeats —
        staleness decisions stay correct even when cooperating hosts
        disagree about wall-clock time.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        probe = self.root / f".clock-probe-{os.getpid()}"
        probe.write_bytes(b"")
        try:
            return probe.stat().st_mtime
        finally:
            try:
                probe.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    # ------------------------------------------------------------------
    # Leases (work claiming)
    # ------------------------------------------------------------------
    def claim(
        self,
        cell: Cell,
        owner: str,
        ttl: float,
        fs_now: Optional[float] = None,
    ) -> ClaimOutcome:
        """Try to acquire the lease for ``cell``.

        Re-entrant for the same ``owner`` (re-claiming renews the
        heartbeat).  A lease older than ``ttl`` seconds is stolen: the
        stale file is renamed to a claimant-unique tombstone (only one
        concurrent stealer's ``os.rename`` succeeds) and acquisition is
        retried through the normal ``O_EXCL`` create.
        """
        key = cell.key()
        path = self.lease_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "format": _LEASE_FORMAT,
                "version": _LEASE_VERSION,
                "key": key,
                "owner": owner,
            },
            indent=1,
            sort_keys=True,
        )
        stolen_from: Optional[str] = None
        for _ in range(4):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                lease = self.lease_of_key(key, fs_now=fs_now)
                if lease is None:
                    continue  # holder released between EXCL and read
                if lease.owner == owner:
                    os.utime(path)
                    return ClaimOutcome(True, owner, stolen_from)
                if lease.age_seconds <= ttl:
                    return ClaimOutcome(False, lease.owner)
                # Stale: exactly one stealer wins the rename; losers
                # loop back and usually find the winner's fresh lease.
                tomb = path.with_name(
                    f"{path.name}.stale-{_fs_safe(owner)}"
                )
                try:
                    os.rename(path, tomb)
                except OSError:
                    continue
                try:
                    tomb.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
                stolen_from = lease.owner
                continue
            try:
                os.write(fd, payload.encode("utf-8"))
            finally:
                os.close(fd)
            return ClaimOutcome(True, owner, stolen_from)
        # Pathological churn: several claimants cycling faster than we
        # can observe.  Report contention; the scheduler retries later.
        return ClaimOutcome(False, "<contended>")

    def renew(self, key: str, owner: str) -> bool:
        """Heartbeat one held lease (touch its mtime).

        Returns ``False`` when the lease is gone or owned by someone
        else — the caller lost it (e.g. it went stale and was stolen).
        """
        lease = self.lease_of_key(key, fs_now=0.0)
        if lease is None or lease.owner != owner:
            return False
        try:
            os.utime(lease.path)
        except OSError:
            return False
        return True

    def release(self, key: str, owner: str) -> bool:
        """Drop one held lease; no-op (``False``) if not held by ``owner``."""
        lease = self.lease_of_key(key, fs_now=0.0)
        if lease is None or lease.owner != owner:
            return False
        try:
            lease.path.unlink()
        except OSError:
            return False
        return True

    def lease_of(self, cell: Cell, fs_now: Optional[float] = None) -> Optional[Lease]:
        """The lease guarding ``cell``, or ``None`` when unclaimed."""
        return self.lease_of_key(cell.key(), fs_now=fs_now)

    def lease_of_key(self, key: str, fs_now: Optional[float] = None) -> Optional[Lease]:
        """Read one lease record by cell key (``None`` when absent/torn).

        Pass ``fs_now`` to reuse one :meth:`fs_now` probe across a scan
        (or ``0.0`` when only ownership matters, not age).
        """
        path = self.lease_path(key)
        try:
            stat = path.stat()
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if doc.get("format") != _LEASE_FORMAT:
            return None
        now = self.fs_now() if fs_now is None else fs_now
        return Lease(
            key=key,
            owner=str(doc.get("owner", "<unknown>")),
            age_seconds=max(0.0, now - stat.st_mtime),
            path=path,
        )

    def has_leases(self) -> bool:
        """Cheap emptiness probe: is any lease record on disk?

        One ``scandir`` with early exit — the warm-path guard in the
        scheduler calls this once per run, so it must cost syscalls,
        not a glob.
        """
        try:
            with os.scandir(self.leases_root) as entries:
                return any(e.name.endswith(".json") for e in entries)
        except OSError:
            return False

    def active_leases(self, fs_now: Optional[float] = None) -> List[Lease]:
        """Every lease currently on disk (stale ones included)."""
        if not self.leases_root.is_dir():
            return []
        keys = sorted(
            p.stem for p in self.leases_root.glob("*.json") if p.is_file()
        )
        if not keys:
            return []
        now = self.fs_now() if fs_now is None else fs_now
        leases = (self.lease_of_key(key, fs_now=now) for key in keys)
        return [lease for lease in leases if lease is not None]

    # ------------------------------------------------------------------
    # Cell results
    # ------------------------------------------------------------------
    def has(self, cell: Cell) -> bool:
        """Whether this cell's result is already on disk."""
        return self.path_for(cell).is_file()

    def get(self, cell: Cell) -> Optional[RunMetrics]:
        """The stored result, or ``None`` on a cache miss."""
        path = self.path_for(cell)
        if not path.is_file():
            return None
        results = load_results(path)
        if len(results) != 1:
            raise ConfigurationError(
                f"{path}: cell artifact holds {len(results)} results, expected 1"
            )
        return results[0]

    def put(self, cell: Cell, metrics: RunMetrics, status: str = "cached") -> Path:
        """Persist one cell result durably and index it."""
        path = self.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": _FORMAT,
            "version": _VERSION,
            "campaign_schema": CAMPAIGN_SCHEMA_VERSION,
            "cell": cell.config(),
            "results": [result_to_dict(metrics)],
        }
        _atomic_write(path, json.dumps(doc, indent=1, sort_keys=True))
        self._update_manifest(cell, status=status)
        return path

    def delete(self, cell: Cell) -> bool:
        """Drop one cell's artifact (and its manifest entry)."""
        path = self.path_for(cell)
        existed = path.is_file()
        if existed:
            path.unlink()

        def drop(manifest: Dict[str, dict]) -> bool:
            return manifest.pop(cell.key(), None) is not None or existed

        self._mutate_manifest(drop)
        return existed

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @contextmanager
    def _manifest_lock(self) -> Iterator[None]:
        """Advisory lock serializing manifest read-modify-write cycles.

        ``O_EXCL``-created lock file, spin-waited with short sleeps; a
        lock older than ``_LOCK_TTL`` (holder died mid-update) is
        broken.  Lock ages use the filesystem clock, like leases.
        """
        lock = self.root / "manifest.lock"
        self.root.mkdir(parents=True, exist_ok=True)
        waited = 0.0
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                break
            except FileExistsError:
                try:
                    age = self.fs_now() - lock.stat().st_mtime
                except OSError:
                    continue  # holder released between EXCL and stat
                if age > _LOCK_TTL or waited > _LOCK_TTL:
                    # Name the store so an operator staring at a stuck
                    # `status --require-complete` / `agg --follow` can
                    # tell *which* store's holder died mid-update.
                    print(
                        f"warning: breaking stale manifest lock in {self.root} "
                        f"(lock age {age:.1f}s, waited {waited:.1f}s)",
                        file=sys.stderr,
                    )
                    try:
                        lock.unlink()
                    except OSError:  # pragma: no cover - racing breakers
                        pass
                    continue
                time.sleep(0.002)
                waited += 0.002
        try:
            yield
        finally:
            try:
                lock.unlink()
            except OSError:  # pragma: no cover - lock was broken
                pass

    def _mutate_manifest(self, mutate) -> None:
        """Apply ``mutate(manifest) -> bool`` under the manifest lock.

        The manifest is re-read from disk inside the lock so concurrent
        workers' updates compose instead of clobbering each other.
        """
        with self._manifest_lock():
            manifest = self._load_manifest(fresh=True)
            if mutate(manifest) is not False:
                self._write_manifest(manifest)

    def _load_manifest(self, fresh: bool = False) -> Dict[str, dict]:
        try:
            stat = self.manifest_path.stat()
            stamp = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            stamp = None
        if not fresh and self._manifest is not None and stamp == self._manifest_stamp:
            return self._manifest
        if stamp is None:
            self._manifest = {}
            self._manifest_stamp = None
            return self._manifest
        doc = json.loads(self.manifest_path.read_text())
        if doc.get("format") != _MANIFEST_FORMAT:
            raise ConfigurationError(f"{self.manifest_path}: not a campaign manifest")
        if doc.get("version") != _MANIFEST_VERSION:
            raise ConfigurationError(
                f"{self.manifest_path}: unsupported manifest version "
                f"{doc.get('version')!r} (this build reads {_MANIFEST_VERSION})"
            )
        self._manifest = dict(doc.get("cells", {}))
        self._manifest_stamp = stamp
        return self._manifest

    def _write_manifest(self, manifest: Dict[str, dict]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": _MANIFEST_FORMAT,
            "version": _MANIFEST_VERSION,
            "campaign_schema": CAMPAIGN_SCHEMA_VERSION,
            "cells": manifest,
        }
        _atomic_write(self.manifest_path, json.dumps(doc, indent=1, sort_keys=True))
        self._manifest = manifest
        try:
            stat = self.manifest_path.stat()
            self._manifest_stamp = (stat.st_mtime_ns, stat.st_size)
        except OSError:  # pragma: no cover - racing delete
            self._manifest_stamp = None

    def _update_manifest(self, cell: Cell, status: str, **extra: object) -> None:
        entry = dict(cell.config())
        entry["status"] = status
        path = self.path_for(cell)
        # Only "cached" entries have an artifact; "failed" and
        # "screened" are manifest-only records.
        entry["file"] = str(path.relative_to(self.root)) if status == "cached" else None
        entry.update(extra)

        def record(manifest: Dict[str, dict]) -> bool:
            if manifest.get(cell.key()) == entry:
                return False
            manifest[cell.key()] = entry
            return True

        self._mutate_manifest(record)

    def mark_failed(self, cell: Cell, error: str) -> None:
        """Record a failed cell in the manifest (no artifact written)."""
        self._update_manifest(cell, status="failed", error=error)

    def mark_screened(self, cell: Cell, rejection_rate: float) -> None:
        """Record a fluid-prescreened cell (no artifact written)."""
        self._update_manifest(cell, status="screened", rejection_rate=rejection_rate)

    def status_of(
        self,
        cell: Cell,
        lease_ttl: Optional[float] = None,
        fs_now: Optional[float] = None,
    ) -> str:
        """``cached`` / ``screened`` / ``failed`` / ``claimed`` / ``missing``.

        Disk truth first: an artifact on disk is ``cached`` no matter
        what the index says; an unfinished cell under an active lease is
        ``claimed`` (in flight on some worker); manifest-only entries
        report their recorded status (``screened`` / ``failed``);
        everything else is ``missing``.  With ``lease_ttl`` given, a
        lease older than the TTL counts as reclaimable — the cell
        reports ``missing`` again, matching what :meth:`claim` would do.
        """
        if self.has(cell):
            return "cached"
        lease = self.lease_of(cell, fs_now=0.0 if lease_ttl is None else fs_now)
        if lease is not None and (lease_ttl is None or lease.age_seconds <= lease_ttl):
            return "claimed"
        entry = self._load_manifest().get(cell.key())
        if entry and entry.get("status") in ("screened", "failed"):
            return entry["status"]
        return "missing"

    def manifest(self) -> Dict[str, dict]:
        """A copy of the manifest index (key → entry)."""
        return dict(self._load_manifest())

    def refresh_manifest(self, cells: Iterable[Cell]) -> Dict[str, dict]:
        """Re-derive manifest entries for ``cells`` from the filesystem.

        Heals the index after a crash between a cell write and the
        manifest update: every on-disk artifact gains (or keeps) an
        entry, entries whose artifact vanished are dropped (unless they
        record a failure, which has no artifact by construction).
        Leases are *never* treated as results — an orphaned lease left
        by a dead worker stays reclaimable work — and lease files whose
        cell already has an artifact are pruned as part of the heal.
        """
        cells = list(cells)
        healed: Dict[str, dict] = {}

        def heal(manifest: Dict[str, dict]) -> bool:
            changed = False
            for cell in cells:
                key = cell.key()
                entry = manifest.get(key)
                if self.has(cell):
                    if entry is None or entry.get("status") != "cached":
                        entry = dict(cell.config())
                        entry["status"] = "cached"
                        entry["file"] = str(
                            self.path_for(cell).relative_to(self.root)
                        )
                        manifest[key] = entry
                        changed = True
                    # A finished cell needs no claim: drop the orphan
                    # lease so status/watch stop reporting it in flight.
                    try:
                        self.lease_path(key).unlink()
                    except OSError:
                        pass
                elif entry is not None and entry.get("status") == "cached":
                    manifest.pop(key)
                    changed = True
            healed.clear()
            healed.update(manifest)
            return changed

        self._mutate_manifest(heal)
        return dict(healed)


def _fs_safe(owner: str) -> str:
    """An owner id reduced to filename-safe characters."""
    return "".join(ch if ch.isalnum() or ch in "._-" else "-" for ch in owner)
