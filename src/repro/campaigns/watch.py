"""Campaign watch — live cell progress from the store + snapshot streams.

``repro campaign watch`` renders one table row per cell of a campaign
grid: the cell's store status (``cached`` / ``failed`` / ``screened`` /
``running`` / ``claimed`` / ``pending``), its live progress when a
``metrics.snapshot`` stream exists under the store's ``telemetry/``
directory (written by :func:`repro.campaigns.scheduler.run_campaign`
when invoked with a :class:`~repro.obs.metrics.MetricsConfig`), and a
campaign ETA extrapolated from the wall time of the cells already in
the store.

With several workers sharing one store, each worker streams its own
cells' telemetry into the same ``telemetry/`` directory, so a single
watcher aggregates progress across the whole fleet; lease records add
the owning worker per in-flight cell and an active-worker footer.

The watcher is a pure *reader*: it never touches the store's manifest
or artifacts beyond reads, so it can run next to a live campaign
process (atomic writes mean it never sees torn files, and a snapshot
stream is valid JSONL line by line).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..metrics.report import format_table
from ..obs.metrics import MetricsConfig
from .spec import CampaignSpec, Cell
from .store import ResultStore

__all__ = ["CellProgress", "snapshot_progress", "watch_table", "watch"]


@dataclass(frozen=True)
class CellProgress:
    """One cell's state as seen by the watcher.

    ``fraction`` is simulated-time progress in ``[0, 1]`` (1.0 for
    finished cells, 0.0 when no snapshot stream exists yet);
    ``snapshot`` is the latest ``metrics.snapshot`` event of a live
    stream, or ``None``.
    """

    cell: Cell
    status: str
    fraction: float
    snapshot: Optional[dict] = None
    wall_seconds: Optional[float] = None
    owner: Optional[str] = None


def _last_snapshot(path: Path) -> Optional[dict]:
    """The final complete JSONL line of a (possibly growing) stream."""
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    lines = raw.decode("utf-8", errors="replace").strip().splitlines()
    for line in reversed(lines):
        line = line.strip()
        if not line:
            continue
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail line of a live writer
    return None


def snapshot_progress(
    store: ResultStore, cell: Cell, horizon: float
) -> CellProgress:
    """Progress of one cell from store status + its telemetry stream."""
    status = store.status_of(cell)
    wall: Optional[float] = None
    if status == "cached":
        metrics = store.get(cell)
        if metrics is not None:
            wall = float(metrics.wall_seconds)
        return CellProgress(cell, "cached", 1.0, wall_seconds=wall)
    if status in ("failed", "screened"):
        return CellProgress(cell, status, 1.0)
    # A claimed cell is running on some worker — show whose, and read
    # whatever telemetry that worker has streamed so far.
    lease = store.lease_of(cell, fs_now=0.0)
    owner = lease.owner if lease is not None else None
    config = MetricsConfig(path=str(store.root / "telemetry") + "/")
    stream = config.resolve_path(cell.scenario_label(), cell.policy_label, cell.seed)
    snap = _last_snapshot(stream)
    if snap is None:
        return CellProgress(
            cell, "claimed" if owner else "pending", 0.0, owner=owner
        )
    fraction = min(1.0, float(snap.get("t", 0.0)) / horizon) if horizon > 0 else 0.0
    return CellProgress(cell, "running", fraction, snapshot=snap, owner=owner)


def _progress_bar(fraction: float, width: int = 10) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def watch_table(
    spec: CampaignSpec,
    store: Optional[Union[str, ResultStore]] = None,
    quick: bool = False,
) -> str:
    """One refresh of the live campaign table (plus an ETA footer).

    The ETA is the mean stored ``wall_seconds`` of finished cells times
    the unfinished count — crude, but it only has to answer "minutes or
    hours?", and it improves as cells land.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(spec.store_path(store))
    cells = spec.expanded(quick=quick)
    rows: List[List[object]] = []
    walls: List[float] = []
    done = 0
    for cell in cells:
        horizon = float(dict(cell.params).get("horizon", 0.0)) or float(
            cell.build_scenario().horizon
        )
        p = snapshot_progress(store, cell, horizon)
        if p.status in ("cached", "failed", "screened"):
            done += 1
        if p.wall_seconds is not None:
            walls.append(p.wall_seconds)
        detail = ""
        if p.snapshot is not None:
            s = p.snapshot
            detail = (
                f"fleet={int(s.get('fleet', 0))} "
                f"rej={float(s.get('rejection_rate', 0.0)):.2%} "
                f"viol={float(s.get('violation_fraction', 0.0)):.2%}"
            )
        if p.owner is not None:
            detail = (detail + f" @{p.owner}").strip()
        rows.append(
            [
                cell.label(),
                p.status,
                _progress_bar(p.fraction),
                f"{p.fraction:.0%}",
                detail,
            ]
        )
    table = format_table(
        ["cell", "status", "progress", "%", "latest snapshot"],
        rows,
        title=f"campaign {spec.name!r}: {done}/{len(cells)} cell(s) finished",
    )
    remaining = len(cells) - done
    if remaining and walls:
        eta = sum(walls) / len(walls) * remaining
        table += f"\nETA ~{eta:.0f}s for {remaining} remaining cell(s) (mean of {len(walls)} stored run(s))"
    elif remaining:
        table += f"\n{remaining} cell(s) remaining (no stored runs yet to extrapolate an ETA)"
    # Concurrent-worker footer: one line naming every live lease owner,
    # so a sharded campaign's watcher shows who is working the store.
    owners = sorted({lease.owner for lease in store.active_leases(fs_now=0.0)})
    if owners:
        table += f"\n{len(owners)} active worker(s): {', '.join(owners)}"
    return table


def watch(
    spec: CampaignSpec,
    store: Optional[Union[str, ResultStore]] = None,
    quick: bool = False,
    follow: bool = False,
    interval: float = 2.0,
    out: Callable[[str], None] = print,
    max_refreshes: Optional[int] = None,
) -> int:
    """Render the campaign table once (default) or until completion.

    With ``follow=True`` the table re-renders every ``interval``
    seconds until every cell is finished (or ``max_refreshes`` is
    exhausted — the testing hook).  Returns the number of refreshes
    rendered.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(spec.store_path(store))
    cells = spec.expanded(quick=quick)
    refreshes = 0
    while True:
        out(watch_table(spec, store, quick=quick))
        refreshes += 1
        if not follow:
            return refreshes
        statuses = [store.status_of(c) for c in cells]
        if all(s in ("cached", "failed", "screened") for s in statuses):
            return refreshes
        if max_refreshes is not None and refreshes >= max_refreshes:
            return refreshes
        time.sleep(interval)
