"""Cloud substrate: the IaaS data center and the SaaS application layer.

Infrastructure (paper §V-A):

* :class:`Datacenter` — 1000 hosts × (8 cores, 16 GB), VM placement via
  :class:`LeastLoadedPlacement` (alternatives for ablations).
* :class:`Host`, :class:`VirtualMachine`, :class:`VMSpec` — physical and
  virtual resources; one core per VM, no time-sharing.

Application layer (paper §III–IV):

* :class:`AppInstance` — the M/M/1/k station: bounded FIFO queue, one
  server, graceful-drain lifecycle.
* :class:`ApplicationFleet` — instance lifecycle + dispatch mechanics.
* :class:`AdmissionControl` — the "all instances hold k requests ⇒
  reject" gate.
* :class:`RoundRobinBalancer` (paper default) and alternatives.
* :class:`Monitor` — the CloudWatch stand-in feeding ``T_m`` and rate
  history to the provisioning mechanism.
* :class:`WorkloadSource` — the request-generating broker.
"""

from .admission import AdmissionControl
from .broker import WorkloadSource
from .datacenter import Datacenter
from .failures import FailureInjector
from .federation import CloudFederation
from .fleet import ApplicationFleet
from .host import Host
from .instance import AppInstance, InstanceState
from .loadbalancer import (
    LeastConnectionsBalancer,
    LoadBalancer,
    RandomBalancer,
    RoundRobinBalancer,
)
from .monitor import Monitor
from .multitier import MultiTierDeployment, TierForwarder, TierSpec
from .priority import HIGH, LOW, PriorityAdmissionControl, PriorityClassStats
from .placement import (
    FirstFitPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RandomPlacement,
)
from .request import RequestOutcome, RequestRecord
from .vecfleet import VectorFleet
from .vm import DEFAULT_VM_SPEC, VirtualMachine, VMSpec, VMState

__all__ = [
    "Datacenter",
    "CloudFederation",
    "Host",
    "VirtualMachine",
    "VMSpec",
    "VMState",
    "DEFAULT_VM_SPEC",
    "AppInstance",
    "InstanceState",
    "ApplicationFleet",
    "VectorFleet",
    "AdmissionControl",
    "FailureInjector",
    "PriorityAdmissionControl",
    "PriorityClassStats",
    "HIGH",
    "LOW",
    "LoadBalancer",
    "RoundRobinBalancer",
    "LeastConnectionsBalancer",
    "RandomBalancer",
    "Monitor",
    "MultiTierDeployment",
    "TierSpec",
    "TierForwarder",
    "WorkloadSource",
    "PlacementPolicy",
    "LeastLoadedPlacement",
    "FirstFitPlacement",
    "RandomPlacement",
    "RequestOutcome",
    "RequestRecord",
]
