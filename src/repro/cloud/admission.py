"""Admission control — the SaaS-layer request gate.

From the paper (§IV): "its SaaS layer contains an admission control
mechanism based on the number of requests on each application instance:
if all virtualized application instances have k requests in their
queues, new requests are rejected, because they are likely to violate
``Ts``.  Accepted requests are forwarded to the provider's PaaS layer."

Because ``k = ⌊Ts/Tr⌋`` (Eq. 1), an accepted request waits behind at
most ``k − 1`` others and therefore completes within ``Ts`` in
expectation — "requests are either rejected or served in a time
acceptable by clients".

:class:`AdmissionControl` is the front door of the whole deployment:
every arrival passes through :meth:`submit`, which dispatches through
the fleet's balancer or records a rejection.
"""

from __future__ import annotations

from typing import Optional

from .fleet import ApplicationFleet
from .monitor import Monitor

__all__ = ["AdmissionControl"]


class AdmissionControl:
    """Queue-length-based admission gate.

    Parameters
    ----------
    fleet:
        The application fleet requests are dispatched into.
    monitor:
        Monitoring sink (records arrivals and rejections).
    count_arrivals:
        When true, every arrival is also reported to the monitor's
        rate sampler (needed by reactive predictors; costs one method
        call per request, so benchmarks that use model-informed
        predictors leave it off).
    tracer:
        Optional :class:`repro.obs.bus.TraceBus`.  When set, every
        submission emits ``request.admitted`` / ``request.rejected``
        and every accept↔reject transition emits ``admission.state`` —
        the paper's "all instances hold k" condition becoming
        observable as discrete gate flips.  When ``None`` (default)
        the hot path is exactly the untraced code.
    """

    __slots__ = ("_fleet", "_monitor", "_count_arrivals", "_tracer", "_accepting")

    def __init__(
        self,
        fleet: ApplicationFleet,
        monitor: Monitor,
        count_arrivals: bool = False,
        tracer: Optional["object"] = None,
    ) -> None:
        self._fleet = fleet
        self._monitor = monitor
        self._count_arrivals = bool(count_arrivals)
        self._tracer = tracer
        self._accepting: Optional[bool] = None

    def submit(self, arrival_time: float) -> bool:
        """Admit (and dispatch) or reject one request.

        Returns ``True`` when the request was accepted.
        """
        if self._count_arrivals:
            self._monitor.record_arrival()
        accepted = self._fleet.dispatch(arrival_time)
        tracer = self._tracer
        if tracer is not None:
            if accepted is not self._accepting:
                self._accepting = accepted
                tracer.emit("admission.state", arrival_time, accepting=accepted)
            tracer.emit(
                "request.admitted" if accepted else "request.rejected", arrival_time
            )
        if accepted:
            self._monitor.record_acceptance()
            return True
        self._monitor.record_rejection()
        return False
