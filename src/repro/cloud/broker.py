"""Workload source — the broker generating end-user requests.

The paper's simulation "contains one broker generating requests
representing several users" (§V-A).  :class:`WorkloadSource` is that
broker: it walks the simulation horizon one workload window at a time,
asks the workload model for the window's arrival timestamps, and feeds
them to admission control.  Windowed generation keeps the future-event
list small even for the multi-million-request web scenario.

Arrival dispatch is *batched*: a window's timestamps are sampled as one
numpy block, horizon-clipped vectorized, and walked by a single rolling
cursor event instead of one ``schedule()`` per request.  At the web
peak a 60-s window holds tens of thousands of arrivals; the cursor
keeps all but the next one out of the heap, so heap pushes operate on a
list of in-flight completions (hundreds) rather than a full window —
an O(log n) win per event on exactly the hottest path.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..sim.engine import Engine
from ..sim.events import PRIORITY_HIGH
from ..workloads.base import Workload
from .admission import AdmissionControl

__all__ = ["WorkloadSource"]


class _ArrivalCursor:
    """Rolling dispatcher over one window's sorted arrival batch.

    One reusable callable walks the batch: each firing submits the
    arrival at the current index and schedules itself at the next
    timestamp.  Only a single heap entry exists per window at any time,
    and no per-arrival closure is allocated.
    """

    __slots__ = ("_engine", "_admission", "_times", "_idx", "_pending")

    def __init__(self, engine: Engine, admission: AdmissionControl) -> None:
        self._engine = engine
        self._admission = admission
        self._times: List[float] = []
        self._idx = 0
        self._pending = None

    @property
    def remaining(self) -> int:
        """Arrivals of the current batch not yet dispatched."""
        return len(self._times) - self._idx

    def load(self, times) -> None:
        """Start dispatching a new batch of sorted timestamps.

        Accepts a numpy array (the broker's sampled window) or a list.
        A window's batch always drains before the next window is
        generated (arrivals live in ``[t0, t0 + window)`` and the next
        generation fires at ``t0 + window``); any leftovers — a
        misbehaving workload model — are merged rather than dropped.
        """
        if isinstance(times, np.ndarray):
            times = times.tolist()
        if self._idx < len(self._times):
            times = sorted(self._times[self._idx :] + times)
            if self._pending is not None:
                self._engine.discard(self._pending)
        self._times = times
        self._idx = 0
        self._pending = None
        if times:
            self._pending = self._engine.schedule_at(times[0], self)

    def __call__(self) -> None:
        engine = self._engine
        self._admission.submit(engine.now)
        idx = self._idx = self._idx + 1
        times = self._times
        if idx < len(times):
            self._pending = engine.schedule_at(times[idx], self)
        else:
            self._pending = None


class WorkloadSource:
    """Feeds a workload's arrivals into an arrival sink.

    Parameters
    ----------
    engine:
        Simulation engine.
    workload:
        Arrival-process model.
    rng:
        Dedicated random stream for arrival sampling.
    admission:
        The deployment's front door.  The default sink is a rolling
        cursor that submits each arrival to it at its timestamp.
    horizon:
        Generation stops at this simulation time (arrivals beyond it
        are discarded).
    sink:
        Alternative consumer of each window's arrival batch — any
        object with ``load(times: np.ndarray)``.  The vectorized
        backend passes its :class:`~repro.cloud.vecfleet.VectorFleet`
        here, which buffers whole windows for the batched data plane
        instead of dispatching one engine event per arrival.  Exactly
        one of ``admission`` / ``sink`` must be provided.

    Notes
    -----
    Window generation runs at :data:`~repro.sim.events.PRIORITY_HIGH`
    so that a window's first arrival is in the event list before any
    same-instant completion fires.
    """

    def __init__(
        self,
        engine: Engine,
        workload: Workload,
        rng: np.random.Generator,
        admission: Optional[AdmissionControl] = None,
        horizon: float = 0.0,
        tracer: Optional[object] = None,
        sink: Optional[object] = None,
    ) -> None:
        if horizon <= 0.0 or not math.isfinite(horizon):
            raise ConfigurationError(f"horizon must be finite and > 0, got {horizon!r}")
        if (admission is None) == (sink is None):
            raise ConfigurationError(
                "provide exactly one of admission= (scalar cursor dispatch) "
                "or sink= (batched window hand-off)"
            )
        self._engine = engine
        self._workload = workload
        self._rng = rng
        self._admission = admission
        if sink is None:
            sink = self._cursor = _ArrivalCursor(engine, admission)
        else:
            self._cursor = None
        self._sink = sink
        self.horizon = float(horizon)
        self.generated = 0
        #: Optional :class:`repro.obs.bus.TraceBus`; one event per
        #: generated window (cold path — never per arrival).
        self._tracer = tracer

    def start(self) -> None:
        """Schedule generation of the first window (call before run)."""
        self._engine.schedule_at(
            self._engine.now, lambda: self._generate_window(self._engine.now), PRIORITY_HIGH
        )

    def _generate_window(self, t0: float) -> None:
        arrivals = self._workload.sample_window(self._rng, t0)
        horizon = self.horizon
        if arrivals.size and arrivals[-1] >= horizon:
            arrivals = arrivals[arrivals < horizon]
        if self._tracer is not None:
            self._tracer.emit(
                "window.generated", self._engine.now, t0=t0, arrivals=int(arrivals.size)
            )
        if arrivals.size:
            self.generated += int(arrivals.size)
            self._sink.load(arrivals)
        t_next = t0 + self._workload.window
        if t_next < horizon:
            self._engine.schedule_at(t_next, lambda: self._generate_window(t_next), PRIORITY_HIGH)
