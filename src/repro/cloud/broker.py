"""Workload source — the broker generating end-user requests.

The paper's simulation "contains one broker generating requests
representing several users" (§V-A).  :class:`WorkloadSource` is that
broker: it walks the simulation horizon one workload window at a time,
asks the workload model for the window's arrival timestamps, and
schedules an engine event per arrival.  Windowed generation keeps the
future-event list small (one window of arrivals plus in-flight
completions) even for the multi-million-request web scenario.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..errors import ConfigurationError
from ..sim.engine import Engine
from ..sim.events import PRIORITY_HIGH
from ..workloads.base import Workload
from .admission import AdmissionControl

__all__ = ["WorkloadSource"]


class WorkloadSource:
    """Feeds a workload's arrivals into admission control.

    Parameters
    ----------
    engine:
        Simulation engine.
    workload:
        Arrival-process model.
    rng:
        Dedicated random stream for arrival sampling.
    admission:
        The deployment's front door.
    horizon:
        Generation stops at this simulation time (arrivals beyond it
        are discarded).

    Notes
    -----
    Window generation runs at :data:`~repro.sim.events.PRIORITY_HIGH`
    so that a window's arrivals are in the event list before any of
    them (or any same-instant completion) fires.
    """

    def __init__(
        self,
        engine: Engine,
        workload: Workload,
        rng: np.random.Generator,
        admission: AdmissionControl,
        horizon: float,
    ) -> None:
        if horizon <= 0.0 or not math.isfinite(horizon):
            raise ConfigurationError(f"horizon must be finite and > 0, got {horizon!r}")
        self._engine = engine
        self._workload = workload
        self._rng = rng
        self._admission = admission
        self.horizon = float(horizon)
        self.generated = 0

    def start(self) -> None:
        """Schedule generation of the first window (call before run)."""
        self._engine.schedule_at(
            self._engine.now, lambda: self._generate_window(self._engine.now), PRIORITY_HIGH
        )

    def _generate_window(self, t0: float) -> None:
        arrivals = self._workload.sample_window(self._rng, t0)
        engine = self._engine
        arrive = self._arrive
        horizon = self.horizon
        for t in arrivals:
            if t >= horizon:
                break
            engine.schedule_at(float(t), arrive)
            self.generated += 1
        t_next = t0 + self._workload.window
        if t_next < horizon:
            engine.schedule_at(t_next, lambda: self._generate_window(t_next), PRIORITY_HIGH)

    def _arrive(self) -> None:
        self._admission.submit(self._engine.now)
