"""The IaaS data center: hosts + VM lifecycle + placement.

Reproduces the paper's simulated infrastructure (§V-A): one data
center, 1000 homogeneous hosts (8 cores / 16 GB each), and a resource
provisioner that places each new 1-core/2-GB VM on the host with the
fewest running instances.  The data center also keeps the VM-hours
ledger used by Figures 5(c) and 6(c).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import PlacementError
from .host import Host
from .placement import LeastLoadedPlacement, PlacementPolicy
from .vm import DEFAULT_VM_SPEC, VirtualMachine, VMSpec

__all__ = ["Datacenter"]


class Datacenter:
    """A cloud data center owning hosts and placing VMs.

    Parameters
    ----------
    num_hosts:
        Number of physical hosts (paper: 1000).
    cores_per_host, ram_per_host_mb:
        Host capacity (paper: 8 cores, 16 GB).
    placement:
        :class:`PlacementPolicy` deciding VM→host mapping; defaults to
        the paper's least-loaded policy.
    name:
        Label used in reports (``c_i`` in the paper's notation).
    """

    def __init__(
        self,
        num_hosts: int = 1000,
        cores_per_host: int = 8,
        ram_per_host_mb: int = 16_384,
        placement: Optional[PlacementPolicy] = None,
        name: str = "dc-0",
    ) -> None:
        if num_hosts < 1:
            raise ValueError(f"data center needs at least one host, got {num_hosts}")
        self.name = name
        self.hosts: List[Host] = [
            Host(i, cores_per_host, ram_per_host_mb) for i in range(num_hosts)
        ]
        self.placement = placement if placement is not None else LeastLoadedPlacement()
        self._vms: Dict[int, VirtualMachine] = {}
        self._next_vm_id = 0
        self._vm_seconds_closed = 0.0  # lifetime of already-destroyed VMs
        self._core_seconds_closed = 0.0  # cores×time of destroyed VMs

    # ------------------------------------------------------------------
    # capacity introspection
    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Aggregate physical cores across all hosts."""
        return sum(h.cores for h in self.hosts)

    @property
    def free_cores(self) -> int:
        """Aggregate unallocated cores."""
        return sum(h.free_cores for h in self.hosts)

    @property
    def live_vms(self) -> int:
        """VMs currently placed (provisioning or running)."""
        return len(self._vms)

    def max_vms(self, spec: VMSpec = DEFAULT_VM_SPEC) -> int:
        """Upper bound on simultaneously placeable VMs of ``spec``.

        This is the ``MaxVMs`` input of Algorithm 1 when the
        application provider has not negotiated a smaller quota.
        """
        per_host = min(
            self.hosts[0].cores // spec.cores,
            self.hosts[0].ram_mb // spec.ram_mb,
        )
        return per_host * len(self.hosts)

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------
    def create_vm(self, now: float, spec: VMSpec = DEFAULT_VM_SPEC) -> VirtualMachine:
        """Place and return a new VM (state PROVISIONING).

        Raises
        ------
        PlacementError
            If no host can fit the requested spec.
        """
        host = self.placement.select(self.hosts, spec)
        if host is None:
            raise PlacementError(
                f"{self.name}: no host can fit VM spec {spec.name} "
                f"({spec.cores} cores / {spec.ram_mb} MB); "
                f"{self.live_vms} VMs already placed"
            )
        vm = VirtualMachine(self._next_vm_id, spec, host.host_id, created_at=now)
        self._next_vm_id += 1
        host.attach(vm)
        self._vms[vm.vm_id] = vm
        return vm

    def destroy_vm(self, vm: VirtualMachine, now: float) -> None:
        """Destroy ``vm``, releasing its host resources."""
        if vm.vm_id not in self._vms:
            raise PlacementError(f"VM {vm.vm_id} is not live in {self.name}")
        host = self.hosts[vm.host_id]
        host.detach(vm)
        self.placement.notify_detach(host)
        del self._vms[vm.vm_id]
        vm.destroy(now)
        self._vm_seconds_closed += vm.lifetime(now)
        self._core_seconds_closed += vm.core_seconds(now)

    def resize_vm(self, vm: VirtualMachine, new_cores: int, now: float) -> bool:
        """Vertically scale a live VM to ``new_cores`` cores.

        Returns ``False`` (leaving the VM unchanged) when the host
        cannot satisfy a growth request — the vertical-scaling policy's
        analogue of a placement refusal.
        """
        if vm.vm_id not in self._vms:
            raise PlacementError(f"VM {vm.vm_id} is not live in {self.name}")
        if new_cores == vm.allocated_cores:
            return True
        host = self.hosts[vm.host_id]
        if not host.can_resize(vm, new_cores):
            return False
        host.apply_resize(vm, new_cores)
        vm.record_resize(new_cores, now)
        self.placement.notify_detach(host)  # its load ranking changed
        return True

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def vm_seconds(self, now: float) -> float:
        """Total VM wall-clock seconds accrued so far (the VM-hours ledger).

        Sums closed lifetimes of destroyed VMs plus the elapsed lifetime
        of every live VM.  ``vm_hours = vm_seconds / 3600``.
        """
        live = sum(vm.lifetime(now) for vm in self._vms.values())
        return self._vm_seconds_closed + live

    def vm_hours(self, now: float) -> float:
        """Convenience wrapper: :meth:`vm_seconds` in hours."""
        return self.vm_seconds(now) / 3600.0

    def core_seconds(self, now: float) -> float:
        """Total core × wall-clock seconds accrued (vertical-scaling cost).

        Equals :meth:`vm_seconds` when every VM keeps its 1-core spec.
        """
        live = sum(vm.core_seconds(now) for vm in self._vms.values())
        return self._core_seconds_closed + live

    def core_hours(self, now: float) -> float:
        """Convenience wrapper: :meth:`core_seconds` in hours."""
        return self.core_seconds(now) / 3600.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Datacenter {self.name} hosts={len(self.hosts)} vms={self.live_vms}>"
