"""Failure injection — the "uncertain behavior" stressor.

§I motivates the mechanism with clouds where "the availability, load,
and throughput of ... resources ... can vary in an unpredictable way".
:class:`FailureInjector` realizes that uncertainty: it crashes live VMs
at exponentially distributed intervals (or at scripted times).  A crash

* kills the backing VM instantly — queued and in-service requests are
  *lost* (recorded separately from admission rejections),
* releases the host's cores/RAM, and
* silently shrinks the serving fleet: a static deployment stays
  degraded forever, while the adaptive provisioner restores the target
  fleet at its next alert (Algorithm 1 re-runs against the monitored
  state).  The ``bench_failure_recovery`` benchmark quantifies exactly
  that contrast.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sim.engine import Engine
from ..sim.events import PRIORITY_HIGH
from .fleet import ApplicationFleet

__all__ = ["FailureInjector"]


class FailureInjector:
    """Crashes random live application instances.

    Parameters
    ----------
    engine:
        Simulation engine.
    fleet:
        The fleet whose instances are at risk.
    rng:
        Dedicated random stream (victim choice + inter-failure gaps).
    mtbf:
        Mean time between failures (exponential), in seconds.  Mutually
        exclusive with ``schedule``.
    schedule:
        Explicit crash times (for reproducible scenario scripting).
    horizon:
        No failures are injected at or beyond this time.
    reason:
        The ``vm.destroyed`` reason tag each kill carries — subclasses
        injecting *revocations* rather than faults override it.
    """

    def __init__(
        self,
        engine: Engine,
        fleet: ApplicationFleet,
        rng: np.random.Generator,
        mtbf: Optional[float] = None,
        schedule: Optional[Sequence[float]] = None,
        horizon: float = math.inf,
        reason: str = "crashed",
    ) -> None:
        if (mtbf is None) == (schedule is None):
            raise ConfigurationError("provide exactly one of mtbf or schedule")
        if mtbf is not None and mtbf <= 0.0:
            raise ConfigurationError(f"MTBF must be > 0, got {mtbf!r}")
        self._engine = engine
        self._fleet = fleet
        self._rng = rng
        self.mtbf = mtbf
        self.horizon = float(horizon)
        self.reason = reason
        self._schedule = sorted(schedule) if schedule is not None else None
        #: Times at which a crash actually destroyed an instance.
        self.crash_log: List[float] = []

    def start(self) -> None:
        """Arm the injector (call before the engine runs)."""
        if self._schedule is not None:
            for t in self._schedule:
                if t < self.horizon:
                    self._engine.schedule_at(t, self._crash, PRIORITY_HIGH)
        else:
            self._schedule_next()

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(self.mtbf))
        when = self._engine.now + gap
        if when < self.horizon:
            self._engine.schedule_at(when, self._crash_and_rearm, PRIORITY_HIGH)

    def _crash_and_rearm(self) -> None:
        self._crash()
        self._schedule_next()

    def _pick_victim(self, victims):
        """Choose which live instance dies (default: uniformly random)."""
        return victims[int(self._rng.integers(len(victims)))]

    def _crash(self):
        victims = self._fleet.live_instances
        if not victims:
            return None
        victim = self._pick_victim(victims)
        lost = self._fleet.kill(victim, reason=self.reason)
        self.crash_log.append(self._engine.now)
        return victim, lost

    @property
    def failures(self) -> int:
        """Number of instances actually crashed."""
        return len(self.crash_log)
