"""Multi-cloud federation — the paper's §III system model.

"The Cloud computing system P is a set of Cloud infrastructures owned
and maintained by 3rd-party IaaS/PaaS providers ...
P = (c₁, c₂, …, cₙ)".  The evaluation uses a single data center, but
the model is explicitly multi-cloud; :class:`CloudFederation` provides
that: several :class:`~repro.cloud.datacenter.Datacenter` objects
behind the same VM-lifecycle interface the fleet consumes, with a
pluggable selection policy deciding *which* cloud hosts each new VM.

Selection policies mirror common provider strategies:

* ``"ordered"`` (default) — fill the preferred (first) cloud, spill
  over to the next when it refuses placement: the on-premise-first /
  cheapest-first pattern;
* ``"balanced"`` — place on the cloud with the lowest live-VM count:
  spread for fault-tolerance.

Accounting (VM-hours, core-hours) aggregates across member clouds, so
run results remain directly comparable to single-cloud experiments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import ConfigurationError, PlacementError
from .datacenter import Datacenter
from .vm import DEFAULT_VM_SPEC, VirtualMachine, VMSpec

__all__ = ["CloudFederation"]


class CloudFederation:
    """Several IaaS clouds behind one data-center-like interface.

    Parameters
    ----------
    datacenters:
        Member clouds, in preference order (``c_1`` first).
    selection:
        ``"ordered"`` or ``"balanced"`` (see module docstring).
    name:
        Label used in reports.
    """

    def __init__(
        self,
        datacenters: Sequence[Datacenter],
        selection: str = "ordered",
        name: str = "federation",
    ) -> None:
        if not datacenters:
            raise ConfigurationError("a federation needs at least one data center")
        names = [dc.name for dc in datacenters]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate data-center names: {names}")
        if selection not in ("ordered", "balanced"):
            raise ConfigurationError(
                f"selection must be 'ordered' or 'balanced', got {selection!r}"
            )
        self.name = name
        self.datacenters = list(datacenters)
        self.selection = selection
        self._vm_home: Dict[int, Datacenter] = {}

    # ------------------------------------------------------------------
    # capacity introspection (Datacenter interface)
    # ------------------------------------------------------------------
    @property
    def live_vms(self) -> int:
        """VMs currently placed across all member clouds."""
        return sum(dc.live_vms for dc in self.datacenters)

    @property
    def free_cores(self) -> int:
        """Aggregate unallocated cores across the federation."""
        return sum(dc.free_cores for dc in self.datacenters)

    def max_vms(self, spec: VMSpec = DEFAULT_VM_SPEC) -> int:
        """Aggregate placement ceiling (the provisioner's MaxVMs)."""
        return sum(dc.max_vms(spec) for dc in self.datacenters)

    def placement_census(self) -> Dict[str, int]:
        """Live VMs per member cloud (for diagnostics and tests)."""
        return {dc.name: dc.live_vms for dc in self.datacenters}

    # ------------------------------------------------------------------
    # VM lifecycle (Datacenter interface)
    # ------------------------------------------------------------------
    def _candidates(self) -> List[Datacenter]:
        if self.selection == "ordered":
            return self.datacenters
        return sorted(self.datacenters, key=lambda dc: (dc.live_vms, dc.name))

    def create_vm(self, now: float, spec: VMSpec = DEFAULT_VM_SPEC) -> VirtualMachine:
        """Place a VM on the first member cloud that accepts it.

        Raises
        ------
        PlacementError
            When every member cloud refuses placement.
        """
        for dc in self._candidates():
            try:
                vm = dc.create_vm(now, spec)
            except PlacementError:
                continue
            # Member clouds number VMs independently, so the home map
            # keys on object identity rather than vm_id.
            self._vm_home[id(vm)] = dc
            return vm
        raise PlacementError(
            f"{self.name}: no member cloud can fit VM spec {spec.name}; "
            f"census={self.placement_census()}"
        )

    def _home(self, vm: VirtualMachine) -> Datacenter:
        dc = self._vm_home.get(id(vm))
        if dc is None:
            raise PlacementError(f"VM {vm.vm_id} is not managed by {self.name}")
        return dc

    def destroy_vm(self, vm: VirtualMachine, now: float) -> None:
        """Destroy ``vm`` on its home cloud."""
        dc = self._home(vm)
        dc.destroy_vm(vm, now)
        del self._vm_home[id(vm)]

    def resize_vm(self, vm: VirtualMachine, new_cores: int, now: float) -> bool:
        """Vertically scale ``vm`` on its home cloud."""
        return self._home(vm).resize_vm(vm, new_cores, now)

    # ------------------------------------------------------------------
    # accounting (Datacenter interface)
    # ------------------------------------------------------------------
    def vm_seconds(self, now: float) -> float:
        """Aggregate VM wall-clock seconds across member clouds."""
        return sum(dc.vm_seconds(now) for dc in self.datacenters)

    def vm_hours(self, now: float) -> float:
        """Aggregate VM hours."""
        return self.vm_seconds(now) / 3600.0

    def core_seconds(self, now: float) -> float:
        """Aggregate core × seconds."""
        return sum(dc.core_seconds(now) for dc in self.datacenters)

    def core_hours(self, now: float) -> float:
        """Aggregate core hours."""
        return self.core_seconds(now) / 3600.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CloudFederation {self.name} clouds={len(self.datacenters)} "
            f"vms={self.live_vms}>"
        )
