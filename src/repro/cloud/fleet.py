"""Application fleet — instance lifecycle and request dispatch.

:class:`ApplicationFleet` owns the set of virtualized application
instances of one SaaS deployment and implements the mechanics of the
paper's application provisioner (§IV-C):

* **dispatch** — accepted requests go to a non-full ACTIVE instance via
  the configured load balancer (round-robin by default);
* **scale up** — first *revive* instances that were draining ("removes
  them from the list of instances to be destroyed"), then create fresh
  VMs through the data center's resource provisioner;
* **scale down** — destroy idle instances immediately; non-idle victims
  (fewest requests in progress first) stop receiving requests and are
  destroyed "only when running requests finish" (graceful drain).

The decision of *how many* instances to run belongs to
:class:`repro.core.provisioner.ApplicationProvisioner`; the fleet only
executes.  Through its ``serving_count`` / ``scale_to`` surface the
fleet satisfies the backend-agnostic
:class:`repro.core.controlplane.FleetActuator` protocol — it is the
DES-side actuator of the shared control plane (analytical backends use
:class:`repro.core.controlplane.RecordingActuator` instead).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError, PlacementError
from ..metrics.collector import MetricsCollector
from ..sim.engine import Engine
from ..workloads.base import ServiceTimeSampler
from .datacenter import Datacenter
from .instance import AppInstance, InstanceState
from .loadbalancer import LoadBalancer, RoundRobinBalancer
from .monitor import Monitor
from .vm import DEFAULT_VM_SPEC, VMSpec

__all__ = ["ApplicationFleet"]


class ApplicationFleet:
    """Executes instance lifecycle operations for one application.

    Parameters
    ----------
    engine:
        Simulation engine.
    datacenter:
        IaaS substrate that places/destroys the backing VMs.
    sampler:
        Shared service-time sampler (instances are homogeneous).
    monitor:
        Monitoring sink passed to every instance.
    metrics:
        Run metrics (fleet-size extrema are recorded here).
    capacity:
        Per-instance queue capacity ``k`` (Eq. 1).
    balancer:
        Dispatch strategy; defaults to the paper's round-robin.
    vm_spec:
        VM class for new instances.
    boot_delay:
        Seconds between VM placement and the instance turning ACTIVE.
        The paper's simulations provision ahead of demand via the
        analyzer's lead time; 0 models an instantaneous boot.
    tracer:
        Optional :class:`repro.obs.bus.TraceBus`.  When set, instance
        lifecycle transitions emit ``vm.created`` / ``vm.draining`` /
        ``vm.destroyed`` events (destruction carries the reason:
        ``idle``, ``drained``, ``cancelled`` or ``crashed``).
    """

    def __init__(
        self,
        engine: Engine,
        datacenter: Datacenter,
        sampler: ServiceTimeSampler,
        monitor: Monitor,
        metrics: MetricsCollector,
        capacity: int,
        balancer: Optional[LoadBalancer] = None,
        vm_spec: VMSpec = DEFAULT_VM_SPEC,
        boot_delay: float = 0.0,
        tracer: Optional[object] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"queue capacity k must be >= 1, got {capacity}")
        if boot_delay < 0.0:
            raise ConfigurationError(f"boot delay must be >= 0, got {boot_delay}")
        self._engine = engine
        self._datacenter = datacenter
        self._sampler = sampler
        self._monitor = monitor
        self._metrics = metrics
        self.capacity = int(capacity)
        self.balancer = balancer if balancer is not None else RoundRobinBalancer()
        self.vm_spec = vm_spec
        self.boot_delay = float(boot_delay)
        self._tracer = tracer
        self._active: List[AppInstance] = []
        self._booting: List[AppInstance] = []
        self._draining: List[AppInstance] = []
        self._next_instance_id = 0

    def _emit_vm(self, event_type: str, inst: AppInstance, **fields: object) -> None:
        """Trace one instance lifecycle transition (no-op untraced)."""
        if self._tracer is not None:
            self._tracer.emit(
                event_type, self._engine.now, instance=inst.instance_id, **fields
            )

    # ------------------------------------------------------------------
    # census
    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Instances currently accepting requests."""
        return len(self._active)

    @property
    def serving_count(self) -> int:
        """Instances provisioned for service (active + still booting).

        This is the fleet's notion of ``m`` — draining instances no
        longer count toward capacity.
        """
        return len(self._active) + len(self._booting)

    @property
    def live_count(self) -> int:
        """All non-destroyed instances (includes draining)."""
        return len(self._active) + len(self._booting) + len(self._draining)

    @property
    def active_instances(self) -> List[AppInstance]:
        """The ACTIVE list (read-only by convention)."""
        return self._active

    @property
    def live_instances(self) -> List[AppInstance]:
        """Every non-destroyed instance (a fresh list)."""
        return self._active + self._booting + self._draining

    # ------------------------------------------------------------------
    # dispatch (hot path)
    # ------------------------------------------------------------------
    def dispatch(self, arrival_time: float) -> bool:
        """Route one request; ``False`` means every instance is full.

        The ``False`` case is exactly the paper's admission-control
        rejection condition.
        """
        inst = self.balancer.select(self._active)
        if inst is None:
            return False
        inst.accept(arrival_time)
        return True

    # ------------------------------------------------------------------
    # scaling
    # ------------------------------------------------------------------
    def scale_to(self, target: int) -> int:
        """Adjust the serving fleet toward ``target`` instances.

        Returns the serving count actually reached (placement limits
        may cap growth).  Never raises on data-center exhaustion — the
        provisioner treats the achieved size as the new plan, matching
        a real IaaS quota refusal.
        """
        if target < 0:
            raise ConfigurationError(f"target fleet size must be >= 0, got {target}")
        current = self.serving_count
        if target > current:
            self._grow(target - current)
        elif target < current:
            self._shrink(current - target)
        return self.serving_count

    def _grow(self, count: int) -> None:
        now = self._engine.now
        # 1. Revive draining instances (most recently drained first —
        #    they are the least drained and retain the most capacity).
        while count > 0 and self._draining:
            inst = self._draining.pop()
            inst.activate()
            self._active.append(inst)
            count -= 1
        # 2. Create fresh VMs.
        while count > 0:
            if self._create_instance(self.vm_spec) is None:
                break  # quota/capacity reached; serve with what we have
            count -= 1
        self._after_membership_change()

    def _create_instance(self, spec: VMSpec):
        """Place one VM of ``spec`` and wrap it in an instance.

        Returns ``None`` when the data center refuses placement.
        Callers are responsible for :meth:`_after_membership_change`.
        """
        now = self._engine.now
        try:
            vm = self._datacenter.create_vm(now, spec)
        except PlacementError:
            return None
        inst = AppInstance(
            self._next_instance_id,
            vm,
            self.capacity,
            self._engine,
            self._sampler,
            self._monitor,
            self._on_drained,
        )
        self._next_instance_id += 1
        if self.boot_delay > 0.0:
            self._booting.append(inst)
            self._engine.schedule(self.boot_delay, lambda i=inst: self._boot_done(i))
        else:
            vm.boot_completed()
            inst.activate()
            self._active.append(inst)
        self._emit_vm("vm.created", inst, booting=self.boot_delay > 0.0)
        return inst

    def grow_with_spec(self, spec: VMSpec):
        """Add one instance backed by an arbitrary VM class.

        Used by heterogeneous-fleet policies (§IV-B future work); the
        caller may adjust the returned instance's ``speed`` and
        ``capacity`` to reflect the class.  Returns ``None`` when no
        host can fit the spec.
        """
        inst = self._create_instance(spec)
        if inst is not None:
            self._after_membership_change()
        return inst

    def scale_down_instance(self, inst: AppInstance) -> None:
        """Retire one specific instance (idle → destroy, busy → drain)."""
        now = self._engine.now
        if inst in self._booting:
            self._booting.remove(inst)
            inst.mark_destroyed()
            self._datacenter.destroy_vm(inst.vm, now)
            self._emit_vm("vm.destroyed", inst, reason="cancelled")
        elif inst in self._active:
            self._active.remove(inst)
            if inst.is_idle:
                inst.mark_destroyed()
                self._datacenter.destroy_vm(inst.vm, now)
                self._emit_vm("vm.destroyed", inst, reason="idle")
            else:
                self._draining.append(inst)
                self._emit_vm("vm.draining", inst)
                inst.drain()
        self._after_membership_change()

    def _boot_done(self, inst: AppInstance) -> None:
        if inst.state is not InstanceState.BOOTING:
            return  # was cancelled while booting
        self._booting.remove(inst)
        inst.vm.boot_completed()
        inst.activate()
        self._active.append(inst)
        self._after_membership_change()

    def _shrink(self, count: int) -> None:
        now = self._engine.now
        # 1. Cancel instances that have not even booted yet.
        while count > 0 and self._booting:
            inst = self._booting.pop()
            inst.mark_destroyed()
            self._datacenter.destroy_vm(inst.vm, now)
            self._emit_vm("vm.destroyed", inst, reason="cancelled")
            count -= 1
        if count <= 0:
            self._after_membership_change()
            return
        # 2. Destroy idle actives immediately ("the first ... to be
        #    destroyed are the idle ones").
        idle = [inst for inst in self._active if inst.is_idle]
        for inst in idle[:count]:
            self._active.remove(inst)
            inst.mark_destroyed()
            self._datacenter.destroy_vm(inst.vm, now)
            self._emit_vm("vm.destroyed", inst, reason="idle")
        count -= min(count, len(idle))
        if count <= 0:
            self._after_membership_change()
            return
        # 3. Drain the busiest-to-least? No: "the instances with smaller
        #    number of requests in progress are chosen to be destroyed".
        victims = sorted(self._active, key=lambda i: (i.occupancy, i.instance_id))[:count]
        for inst in victims:
            self._active.remove(inst)
            self._draining.append(inst)
            self._emit_vm("vm.draining", inst)
            inst.drain()  # may call _on_drained synchronously if idle
        self._after_membership_change()

    def set_speed(self, inst: AppInstance, speed: int) -> bool:
        """Vertically scale one instance to ``speed`` cores.

        Linear-speedup model: an instance pinned to ``speed`` cores
        serves requests ``speed``× faster (subsequent service starts
        only).  Returns ``False`` when the host cannot grow the VM.
        """
        if speed < 1:
            raise ConfigurationError(f"speed must be >= 1, got {speed}")
        if not self._datacenter.resize_vm(inst.vm, int(speed), self._engine.now):
            return False
        inst.speed = float(speed)
        return True

    def kill(self, inst: AppInstance, reason: str = "crashed") -> int:
        """Crash ``inst`` (failure/revocation injection); returns requests lost.

        Unlike a drain, the instance's queued and in-service requests
        die with it; they are recorded as losses, not rejections.
        ``reason`` tags the ``vm.destroyed`` trace event (``"crashed"``
        for faults, ``"revoked"`` for spot reclamation).
        """
        if inst.state is InstanceState.DESTROYED:
            return 0
        for bucket in (self._active, self._booting, self._draining):
            if inst in bucket:
                bucket.remove(inst)
                break
        lost = inst.crash()
        self._datacenter.destroy_vm(inst.vm, self._engine.now)
        self._emit_vm("vm.destroyed", inst, reason=reason, lost=lost)
        self._metrics.record_loss(lost)
        self._after_membership_change()
        return lost

    def _on_drained(self, inst: AppInstance) -> None:
        """A draining instance emptied — destroy it now."""
        if inst.state is InstanceState.DESTROYED:
            return
        if inst in self._draining:
            self._draining.remove(inst)
        inst.mark_destroyed()
        self._datacenter.destroy_vm(inst.vm, self._engine.now)
        self._emit_vm("vm.destroyed", inst, reason="drained")
        self._metrics.record_fleet_size(self._engine.now, self.live_count)

    def _after_membership_change(self) -> None:
        self.balancer.notify_membership_change(len(self._active))
        self._metrics.record_fleet_size(self._engine.now, self.live_count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ApplicationFleet active={len(self._active)} "
            f"booting={len(self._booting)} draining={len(self._draining)}>"
        )
