"""Physical host model.

The simulated data center (paper §V-A) has 1000 hosts, each with two
quad-core processors (8 cores) and 16 GB of RAM.  A host tracks the
cores and RAM consumed by its pinned VMs; there is no over-subscription
and no CPU time-sharing.
"""

from __future__ import annotations

from typing import Dict

from ..errors import CapacityError
from .vm import VMSpec, VirtualMachine

__all__ = ["Host"]


class Host:
    """One physical server in the data center.

    Parameters
    ----------
    host_id:
        Data-center-unique identifier.
    cores:
        Total physical cores (paper: 2 × quad-core = 8).
    ram_mb:
        Total RAM in MB (paper: 16384).
    """

    __slots__ = ("host_id", "cores", "ram_mb", "free_cores", "free_ram_mb", "_vms")

    def __init__(self, host_id: int, cores: int = 8, ram_mb: int = 16_384) -> None:
        if cores < 1 or ram_mb < 1:
            raise ValueError(f"host needs positive capacity, got cores={cores} ram={ram_mb}")
        self.host_id = host_id
        self.cores = cores
        self.ram_mb = ram_mb
        self.free_cores = cores
        self.free_ram_mb = ram_mb
        self._vms: Dict[int, VirtualMachine] = {}

    # ------------------------------------------------------------------
    @property
    def vm_count(self) -> int:
        """Number of VMs currently pinned to this host."""
        return len(self._vms)

    def can_fit(self, spec: VMSpec) -> bool:
        """Whether the host has free cores and RAM for ``spec``."""
        return self.free_cores >= spec.cores and self.free_ram_mb >= spec.ram_mb

    def attach(self, vm: VirtualMachine) -> None:
        """Pin ``vm`` to this host, reserving its cores and RAM.

        Raises
        ------
        CapacityError
            If the host cannot fit the VM (placement policies must call
            :meth:`can_fit` first; this is a consistency backstop).
        """
        if not self.can_fit(vm.spec):
            raise CapacityError(
                f"host {self.host_id} cannot fit VM {vm.vm_id} "
                f"(free cores={self.free_cores}, free ram={self.free_ram_mb} MB)"
            )
        if vm.vm_id in self._vms:
            raise CapacityError(f"VM {vm.vm_id} already attached to host {self.host_id}")
        self.free_cores -= vm.allocated_cores
        self.free_ram_mb -= vm.spec.ram_mb
        self._vms[vm.vm_id] = vm

    def detach(self, vm: VirtualMachine) -> None:
        """Release the resources of ``vm`` (called on VM destruction)."""
        if self._vms.pop(vm.vm_id, None) is None:
            raise CapacityError(f"VM {vm.vm_id} is not attached to host {self.host_id}")
        self.free_cores += vm.allocated_cores
        self.free_ram_mb += vm.spec.ram_mb

    def can_resize(self, vm: VirtualMachine, new_cores: int) -> bool:
        """Whether ``vm`` can grow/shrink to ``new_cores`` on this host."""
        if vm.vm_id not in self._vms:
            return False
        return self.free_cores >= new_cores - vm.allocated_cores

    def apply_resize(self, vm: VirtualMachine, new_cores: int) -> None:
        """Adjust the core reservation of an attached VM.

        The caller (the data center) is responsible for updating the
        VM's own ledger via
        :meth:`~repro.cloud.vm.VirtualMachine.record_resize`.
        """
        if vm.vm_id not in self._vms:
            raise CapacityError(f"VM {vm.vm_id} is not attached to host {self.host_id}")
        delta = new_cores - vm.allocated_cores
        if delta > self.free_cores:
            raise CapacityError(
                f"host {self.host_id} cannot grow VM {vm.vm_id} by {delta} cores "
                f"(free={self.free_cores})"
            )
        self.free_cores -= delta

    def utilization(self) -> float:
        """Fraction of cores currently allocated to VMs."""
        return 1.0 - self.free_cores / self.cores

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Host {self.host_id} vms={self.vm_count} "
            f"free={self.free_cores}c/{self.free_ram_mb}MB>"
        )
