"""Virtualized application instance — the M/M/1/k station of Figure 2.

One instance ``s_j`` runs inside one VM ``v_j`` (the paper's one-to-one
mapping) and serves requests FIFO from a bounded queue: at most ``k``
requests may be present (one in service plus ``k − 1`` waiting), with
``k = ⌊Ts/Tr⌋`` enforced upstream by admission control — an instance is
never *offered* a request while full.

Lifecycle (paper §IV-C):

``BOOTING`` → ``ACTIVE`` → (``DRAINING`` ⇄ ``ACTIVE``) → ``DESTROYED``

A draining instance stops receiving work but finishes what it holds;
the provisioner may *revive* it back to ACTIVE if load returns before
it empties — exactly the paper's "removes them from the list of
instances to be destroyed".

This class sits on the DES hot path; it stores arrival timestamps as
plain floats in a ``deque`` and uses ``__slots__``.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Optional

from ..sim.engine import Engine
from ..workloads.base import ServiceTimeSampler
from .monitor import Monitor
from .vm import VirtualMachine

__all__ = ["InstanceState", "AppInstance"]


class InstanceState(enum.Enum):
    """Lifecycle state of an application instance."""

    BOOTING = "booting"
    ACTIVE = "active"
    DRAINING = "draining"
    DESTROYED = "destroyed"


class AppInstance:
    """A single-server bounded-queue application instance.

    Parameters
    ----------
    instance_id:
        Fleet-unique identifier (``j`` of ``s_j``).
    vm:
        The backing :class:`~repro.cloud.vm.VirtualMachine`.
    capacity:
        Maximum requests present at once (the paper's ``k``).
    engine:
        The simulation engine (for completion events).
    sampler:
        Per-request service-time sampler.
    monitor:
        Metric/monitoring sink notified of completions.
    on_drained:
        Callback ``(instance) -> None`` fired when a DRAINING instance
        empties and can be destroyed.
    """

    __slots__ = (
        "instance_id",
        "vm",
        "capacity",
        "state",
        "busy_seconds",
        "served",
        "_engine",
        "_sampler",
        "_monitor",
        "_on_drained",
        "_queue",
        "_in_service",
        "_pending",
        "speed",
    )

    def __init__(
        self,
        instance_id: int,
        vm: VirtualMachine,
        capacity: int,
        engine: Engine,
        sampler: ServiceTimeSampler,
        monitor: Monitor,
        on_drained: Callable[["AppInstance"], None],
    ) -> None:
        if capacity < 1:
            raise ValueError(f"instance capacity must be >= 1, got {capacity}")
        self.instance_id = instance_id
        self.vm = vm
        self.capacity = capacity
        self.state = InstanceState.BOOTING
        self.busy_seconds = 0.0
        self.served = 0
        self._engine = engine
        self._sampler = sampler
        self._monitor = monitor
        self._on_drained = on_drained
        self._queue: deque = deque()
        self._in_service = False
        self._pending = None  # completion-event handle, for crash cancellation
        #: Service-speed multiplier (vertical scaling): a request's
        #: service time is the sampled base time divided by ``speed``.
        #: Changing it affects services that start afterwards.
        self.speed = 1.0

    # ------------------------------------------------------------------
    # state inspection (hot path uses these constantly)
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Requests currently present (waiting + in service)."""
        return len(self._queue) + (1 if self._in_service else 0)

    @property
    def is_full(self) -> bool:
        """Whether admission must not offer another request."""
        return len(self._queue) + (1 if self._in_service else 0) >= self.capacity

    @property
    def is_idle(self) -> bool:
        """Whether the instance holds no requests at all."""
        return not self._in_service and not self._queue

    @property
    def accepting(self) -> bool:
        """Whether the dispatcher may route requests here."""
        return self.state is InstanceState.ACTIVE

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """BOOTING/DRAINING → ACTIVE (boot completed or revived)."""
        if self.state is InstanceState.DESTROYED:
            raise ValueError(f"instance {self.instance_id} is destroyed")
        self.state = InstanceState.ACTIVE

    def drain(self) -> None:
        """ACTIVE → DRAINING; fires ``on_drained`` at once if empty."""
        if self.state is not InstanceState.ACTIVE:
            raise ValueError(
                f"instance {self.instance_id} cannot drain from {self.state.name}"
            )
        self.state = InstanceState.DRAINING
        if self.is_idle:
            self._on_drained(self)

    def mark_destroyed(self) -> None:
        """Terminal transition; the fleet destroys the backing VM."""
        self.state = InstanceState.DESTROYED

    def crash(self) -> int:
        """Hard-kill the instance; returns the number of requests lost.

        Cancels the outstanding completion event (the in-service
        request dies with the VM) and empties the queue.  The fleet is
        responsible for VM destruction and metric accounting.
        """
        lost = self.occupancy
        if self._pending is not None:
            self._engine.discard(self._pending)
            self._pending = None
        self._in_service = False
        self._queue.clear()
        self.state = InstanceState.DESTROYED
        return lost

    # ------------------------------------------------------------------
    # request flow (hot path)
    # ------------------------------------------------------------------
    def accept(self, arrival_time: float) -> None:
        """Take responsibility for a request that arrived at ``arrival_time``.

        The dispatcher guarantees ``not self.is_full`` and
        ``self.accepting``; violating that is a programming error and
        raises immediately rather than corrupting the queue invariant.
        """
        if self.is_full or self.state is not InstanceState.ACTIVE:
            raise RuntimeError(
                f"instance {self.instance_id} offered a request while "
                f"{'full' if self.is_full else self.state.name}"
            )
        if self._in_service:
            self._queue.append(arrival_time)
        else:
            self._start_service(arrival_time)

    def _start_service(self, arrival_time: float) -> None:
        self._in_service = True
        service_time = self._sampler.draw() / self.speed
        self._pending = self._engine.schedule(
            service_time,
            lambda: self._complete(arrival_time, service_time),
        )

    def _complete(self, arrival_time: float, service_time: float) -> None:
        now = self._engine.now
        self.busy_seconds += service_time
        self.served += 1
        self._in_service = False
        self._pending = None
        self._monitor.record_response(now - arrival_time, service_time)
        if self._queue:
            self._start_service(self._queue.popleft())
        elif self.state is InstanceState.DRAINING:
            self._on_drained(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AppInstance {self.instance_id} {self.state.name} "
            f"occ={self.occupancy}/{self.capacity}>"
        )
