"""Load-balancing strategies for request dispatch.

The paper's application provisioner forwards each accepted request to a
virtualized application instance "following a round-robin strategy"
(§IV-C), noting that with low service-time variability this keeps load
even at negligible monitoring cost.  :class:`RoundRobinBalancer`
implements that default; :class:`LeastConnectionsBalancer` and
:class:`RandomBalancer` are the provider-supplied alternatives the
paper alludes to (Amazon Load-Balancer / GoGrid Controller) and feed
the load-balancer ablation benchmark.

A balancer must return an instance that is *accepting* and *not full*,
or ``None`` — ``None`` is precisely the admission-control rejection
condition ("all virtualized application instances have k requests in
their queues").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from .instance import AppInstance

__all__ = [
    "LoadBalancer",
    "RoundRobinBalancer",
    "LeastConnectionsBalancer",
    "RandomBalancer",
]


class LoadBalancer(ABC):
    """Strategy interface: pick a dispatch target among active instances."""

    #: Identifier used in reports and benchmark labels.
    name: str = "balancer"

    @abstractmethod
    def select(self, active: List[AppInstance]) -> Optional[AppInstance]:
        """Return a non-full instance from ``active``, or ``None``.

        ``active`` contains only instances in the ACTIVE state; the
        balancer is responsible for skipping full ones.
        """

    def notify_membership_change(self, active_count: int) -> None:
        """Hook called when instances join/leave the active set."""


class RoundRobinBalancer(LoadBalancer):
    """The paper's default: cycle through instances, skipping full ones.

    The pointer advances past the chosen instance so consecutive
    requests spread across the fleet.  When every instance is full the
    scan costs O(m) — the unavoidable price of the "all full?"
    admission question — but the common case is O(1).
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, active: List[AppInstance]) -> Optional[AppInstance]:
        n = len(active)
        if n == 0:
            return None
        start = self._next % n
        for i in range(n):
            inst = active[start + i - n if start + i >= n else start + i]
            if not inst.is_full:
                self._next = (start + i + 1) % n
                return inst
        return None

    def notify_membership_change(self, active_count: int) -> None:
        if active_count > 0:
            self._next %= active_count
        else:
            self._next = 0


class LeastConnectionsBalancer(LoadBalancer):
    """Route to the instance with the smallest occupancy.

    O(m) per request — used in ablations, not in the big benchmarks.
    Ties break on the lower index for determinism.
    """

    name = "least-connections"

    def select(self, active: List[AppInstance]) -> Optional[AppInstance]:
        best: Optional[AppInstance] = None
        best_occ = None
        for inst in active:
            occ = inst.occupancy
            if occ >= inst.capacity:
                continue
            if best_occ is None or occ < best_occ:
                best, best_occ = inst, occ
                if occ == 0:
                    break
        return best


class RandomBalancer(LoadBalancer):
    """Uniformly random among non-full instances.

    Parameters
    ----------
    rng:
        Dedicated random stream (keeps workload streams untouched).
    """

    name = "random"

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def select(self, active: List[AppInstance]) -> Optional[AppInstance]:
        candidates = [inst for inst in active if not inst.is_full]
        if not candidates:
            return None
        return candidates[int(self._rng.integers(len(candidates)))]
