"""Monitoring service — the simulator's Amazon-CloudWatch stand-in.

The load predictor & performance modeler "obtains current service times
for each application instance ... via regular monitoring tools or by
Cloud monitoring services such as Amazon CloudWatch" (paper §IV-B).
:class:`Monitor` is that service:

* it is the single sink for request completions/rejections (forwarding
  them to the run's :class:`~repro.metrics.collector.MetricsCollector`),
* it keeps an exponentially-weighted estimate of the mean request
  service time ``T_m`` — the monitored quantity Algorithm 1 consumes,
* it optionally samples the observed arrival rate on a fixed cadence,
  which is the input history for the *reactive* predictors
  (:mod:`repro.prediction`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..metrics.collector import MetricsCollector
from ..sim.engine import Engine
from ..sim.events import PRIORITY_LOW

__all__ = ["Monitor"]


class Monitor:
    """Runtime observability for one application deployment.

    Parameters
    ----------
    engine:
        Simulation engine (used only when rate sampling is enabled).
    metrics:
        The run's metric accumulator.
    default_service_time:
        ``T_m`` reported before any completion has been observed — the
        provisioner must make its first decision with no history, so it
        starts from the negotiated/estimated request execution time.
    ewma_alpha:
        Smoothing weight of the service-time estimate.  The default 0.05
        averages over roughly the last 40 completions.
    rate_sample_interval:
        When set, the monitor counts arrivals per interval and stores a
        bounded history of ``(time, rate)`` pairs for reactive
        predictors.
    history_length:
        Maximum retained rate samples.
    tracer:
        Optional :class:`repro.obs.bus.TraceBus`.  When set, each
        completion emits ``request.completed`` and each rate sample
        emits ``monitor.sample`` (carrying the current ``T_m``
        estimate); ``None`` keeps the hot path unchanged.
    registry:
        Optional :class:`repro.obs.metrics.MetricsRegistry`.  When set,
        every recorded response also feeds the ``qos.response_time``
        histogram (one buffered list append per completion on the
        scalar path, one searchsorted per span on the bulk path);
        ``None`` keeps the hot path unchanged.
    """

    def __init__(
        self,
        engine: Engine,
        metrics: MetricsCollector,
        default_service_time: float,
        ewma_alpha: float = 0.05,
        rate_sample_interval: Optional[float] = None,
        history_length: int = 4096,
        tracer: Optional[object] = None,
        registry: Optional[object] = None,
    ) -> None:
        if default_service_time <= 0.0:
            raise ConfigurationError(
                f"default service time must be > 0, got {default_service_time}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigurationError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self._engine = engine
        self._metrics = metrics
        self._tm = float(default_service_time)
        self._alpha = float(ewma_alpha)
        self._seen_completion = False
        self._tracer = tracer
        self._resp_hist = (
            registry.histogram("qos.response_time") if registry is not None else None
        )
        # -- arrival-rate sampling ------------------------------------
        self._rate_interval = rate_sample_interval
        self._arrivals_in_window = 0
        self.rate_history: Deque[Tuple[float, float]] = deque(maxlen=history_length)
        if rate_sample_interval is not None:
            if rate_sample_interval <= 0.0:
                raise ConfigurationError(
                    f"rate sample interval must be > 0, got {rate_sample_interval}"
                )
            engine.schedule(rate_sample_interval, self._sample_rate, PRIORITY_LOW)

    # ------------------------------------------------------------------
    # hot-path sinks
    # ------------------------------------------------------------------
    def record_response(self, response_time: float, service_time: float) -> None:
        """Observe one completed request (called by instances)."""
        self._metrics.record_response(response_time, service_time)
        if self._resp_hist is not None:
            self._resp_hist.observe(response_time)
        if self._seen_completion:
            self._tm += self._alpha * (service_time - self._tm)
        else:
            self._tm = service_time
            self._seen_completion = True
        if self._tracer is not None:
            self._tracer.emit(
                "request.completed",
                self._engine.now,
                response_time=response_time,
                service_time=service_time,
            )

    def record_acceptance(self) -> None:
        """Observe one admitted request (called by admission control)."""
        self._metrics.record_acceptance()

    def record_rejection(self) -> None:
        """Observe one rejected request (called by admission control)."""
        self._metrics.record_rejection()

    def record_arrival(self) -> None:
        """Observe one arrival (only counted when sampling is enabled)."""
        self._arrivals_in_window += 1

    # ------------------------------------------------------------------
    # bulk sinks (vectorized data plane)
    # ------------------------------------------------------------------
    def record_responses(
        self,
        response_times: np.ndarray,
        service_times: np.ndarray,
        completion_times: Optional[np.ndarray] = None,
    ) -> None:
        """Observe a batch of completions in departure order.

        Semantically ``record_response`` in a loop; the ``T_m`` EWMA is
        folded in closed form:
        ``tm' = (1-α)^n·tm + α·Σᵢ (1-α)^(n-1-i)·sᵢ``.  When every sample
        equals the current estimate (the jitterless scenarios), each
        sequential step would add exactly ``α·0``, so the update is
        skipped outright — keeping ``T_m`` bit-identical to the scalar
        path where the cross-backend tests require it.

        ``completion_times`` (departure timestamps) is only consulted
        when tracing, to stamp the per-request events.
        """
        services = np.asarray(service_times, dtype=np.float64)
        n = services.size
        if n == 0:
            return
        self._metrics.record_responses(response_times, services)
        if self._resp_hist is not None:
            self._resp_hist.observe_many(response_times)
        start = 0
        if not self._seen_completion:
            self._tm = float(services[0])
            self._seen_completion = True
            start = 1
        tail = services[start:]
        if tail.size and not (
            float(tail.min()) == self._tm and float(tail.max()) == self._tm
        ):
            alpha = self._alpha
            weights = (1.0 - alpha) ** np.arange(
                tail.size - 1, -1, -1, dtype=np.float64
            )
            self._tm = float(
                (1.0 - alpha) ** tail.size * self._tm
                + alpha * float(np.dot(weights, tail))
            )
        if self._tracer is not None:
            responses = np.asarray(response_times, dtype=np.float64)
            if completion_times is None:
                completion_times = np.full(n, self._engine.now)
            for t, resp, svc in zip(
                completion_times.tolist(), responses.tolist(), services.tolist()
            ):
                self._tracer.emit(
                    "request.completed", t, response_time=resp, service_time=svc
                )

    def record_acceptances(self, count: int) -> None:
        """Observe ``count`` admitted requests at once."""
        self._metrics.record_acceptances(count)

    def record_rejections(self, count: int) -> None:
        """Observe ``count`` rejected requests at once."""
        self._metrics.record_rejections(count)

    def record_arrivals(self, count: int) -> None:
        """Observe ``count`` arrivals at once (rate-sampling counter)."""
        self._arrivals_in_window += int(count)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def mean_service_time(self) -> float:
        """Current monitored estimate of ``T_m`` (seconds)."""
        return self._tm

    @property
    def rate_sample_interval(self) -> Optional[float]:
        """Arrival-rate sampling cadence, or ``None`` when disabled."""
        return self._rate_interval

    def observed_rate(self) -> Optional[float]:
        """Most recent sampled arrival rate, or ``None``."""
        if not self.rate_history:
            return None
        return self.rate_history[-1][1]

    # ------------------------------------------------------------------
    def _sample_rate(self) -> None:
        assert self._rate_interval is not None
        rate = self._arrivals_in_window / self._rate_interval
        self.rate_history.append((self._engine.now, rate))
        self._arrivals_in_window = 0
        if self._tracer is not None:
            self._tracer.emit(
                "monitor.sample",
                self._engine.now,
                rate=rate,
                service_time_estimate=self._tm,
            )
        self._engine.schedule(self._rate_interval, self._sample_rate, PRIORITY_LOW)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Monitor Tm={self._tm:.6g}s samples={len(self.rate_history)}>"
