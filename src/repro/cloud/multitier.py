"""Multi-tier (composite-service) deployments in the DES.

The analytic side of §VII's composite-service future work lives in
:mod:`repro.queueing.tandem`; this module is its *simulated*
counterpart: a chain of tier fleets where a request admitted at the
front traverses every tier in order, and only the last tier's
completion records the end-to-end response.

The chaining needs no change to the hot-path instance code: an
:class:`AppInstance` reports completions to a monitor-like sink, so
each non-final tier gets a :class:`TierForwarder` sink that

* books the tier's service time as busy time (utilization stays
  correct),
* reconstructs the request's *original* arrival timestamp
  (``engine.now − response_so_far``), and
* submits it to the next tier's admission gate with that timestamp —
  so when the final tier completes, ``now − arrival`` is exactly the
  end-to-end sojourn, and the run-level metrics are directly
  comparable with the single-tier experiments.

A request rejected by a downstream tier's admission counts as a
rejection in the run metrics (the work already invested upstream stays
in the busy-time ledger, mirroring a real mid-pipeline drop).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..metrics.collector import MetricsCollector
from ..sim.engine import Engine
from ..sim.rng import RandomStreams
from ..workloads.base import Workload
from .admission import AdmissionControl
from .datacenter import Datacenter
from .fleet import ApplicationFleet
from .monitor import Monitor

__all__ = ["TierSpec", "TierForwarder", "MultiTierDeployment"]


class TierSpec:
    """Configuration of one tier in a composite deployment.

    Parameters
    ----------
    name:
        Tier label.
    workload:
        Supplies the tier's service-time law (``base_service_time`` +
        jitter); arrival generation of the front tier comes from the
        scenario's broker, not from here.
    capacity:
        Per-instance queue capacity ``k`` for the tier.
    instances:
        Initial fleet size.
    """

    def __init__(
        self, name: str, workload: Workload, capacity: int, instances: int = 1
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"tier {name!r}: capacity must be >= 1")
        if instances < 1:
            raise ConfigurationError(f"tier {name!r}: instances must be >= 1")
        self.name = name
        self.workload = workload
        self.capacity = int(capacity)
        self.instances = int(instances)


class TierForwarder:
    """Monitor-like completion sink that chains a request to the next tier."""

    __slots__ = ("_engine", "_metrics", "_next_admission", "forwarded", "dropped")

    def __init__(
        self,
        engine: Engine,
        metrics: MetricsCollector,
        next_admission: AdmissionControl,
    ) -> None:
        self._engine = engine
        self._metrics = metrics
        self._next_admission = next_admission
        self.forwarded = 0
        self.dropped = 0

    # Monitor interface used by AppInstance -----------------------------
    def record_response(self, response_time: float, service_time: float) -> None:
        self._metrics.record_intermediate(service_time)
        original_arrival = self._engine.now - response_time
        if self._next_admission.submit(original_arrival):
            self.forwarded += 1
        else:
            self.dropped += 1

    def record_rejection(self) -> None:  # pragma: no cover - unused path
        self._metrics.record_rejection()

    def record_acceptance(self) -> None:  # pragma: no cover - unused path
        pass

    def record_arrival(self) -> None:  # pragma: no cover - unused path
        pass

    def mean_service_time(self) -> float:  # pragma: no cover - diagnostics
        return 0.0


class MultiTierDeployment:
    """A chain of tier fleets sharing one data center and one metrics run.

    Parameters
    ----------
    engine, datacenter, streams, metrics:
        The shared substrate of the run.
    tiers:
        Tier definitions in traversal order (≥ 1).
    boot_delay:
        VM boot latency applied to every tier.

    Attributes
    ----------
    front_admission:
        The entry gate — wire the workload source here.
    fleets:
        ``{tier name: ApplicationFleet}`` for the control plane.
    monitors:
        The *final* tier has a real :class:`Monitor` (its completions
        are the end-to-end responses); intermediate tiers expose their
        :class:`TierForwarder` for diagnostics.
    """

    def __init__(
        self,
        engine: Engine,
        datacenter: Datacenter,
        streams: RandomStreams,
        metrics: MetricsCollector,
        tiers: Sequence[TierSpec],
        boot_delay: float = 0.0,
    ) -> None:
        if not tiers:
            raise ConfigurationError("a composite deployment needs at least one tier")
        self.engine = engine
        self.datacenter = datacenter
        self.metrics = metrics
        self.tiers = list(tiers)
        self.fleets: Dict[str, ApplicationFleet] = {}
        self.forwarders: Dict[str, TierForwarder] = {}

        # Build back-to-front so each tier can point at its successor.
        next_admission: Optional[AdmissionControl] = None
        final_monitor: Optional[Monitor] = None
        for position, tier in reversed(list(enumerate(self.tiers))):
            is_final = next_admission is None
            if is_final:
                sink = Monitor(
                    engine, metrics, default_service_time=tier.workload.mean_service_time
                )
                final_monitor = sink
            else:
                sink = TierForwarder(engine, metrics, next_admission)
                self.forwarders[tier.name] = sink
            sampler = tier.workload.service_sampler(
                streams.get(f"service.{tier.name}")
            )
            fleet = ApplicationFleet(
                engine=engine,
                datacenter=datacenter,
                sampler=sampler,
                monitor=sink,
                metrics=metrics,
                capacity=tier.capacity,
                boot_delay=boot_delay,
            )
            fleet.scale_to(tier.instances)
            self.fleets[tier.name] = fleet
            # The admission gate in front of THIS tier.  Only the front
            # gate records global acceptances; mid-pipeline gates let
            # the forwarder account drops (already-accepted requests).
            if position == 0:
                gate_monitor = final_monitor if is_final else Monitor(
                    engine, metrics, default_service_time=tier.workload.mean_service_time
                )
                next_admission = AdmissionControl(fleet, gate_monitor)
            else:
                next_admission = _MidPipelineGate(fleet, metrics)
        self.front_admission = next_admission
        self.final_monitor = final_monitor

    def tier_fleet(self, name: str) -> ApplicationFleet:
        """Fleet of tier ``name`` (KeyError for unknown tiers)."""
        return self.fleets[name]


class _MidPipelineGate:
    """Admission gate between tiers.

    A refusal here drops an *already-accepted* request, recorded via
    :meth:`~repro.metrics.collector.MetricsCollector.record_downstream_drop`
    so the run-level ``loss_rate`` reflects every user-visible loss,
    whichever tier caused it, without double-counting arrivals.
    """

    __slots__ = ("_fleet", "_metrics")

    def __init__(self, fleet: ApplicationFleet, metrics: MetricsCollector) -> None:
        self._fleet = fleet
        self._metrics = metrics

    def submit(self, arrival_time: float) -> bool:
        if self._fleet.dispatch(arrival_time):
            return True
        self._metrics.record_downstream_drop()
        return False
