"""VM-to-host placement policies (the IaaS *resource provisioner*).

The paper treats resource provisioning as out of scope and assumes a
"simple load-balance policy ... where new VMs are created, if possible,
in the host with fewer running virtualized application instances"
(§V-A).  :class:`LeastLoadedPlacement` implements exactly that;
:class:`FirstFitPlacement` and :class:`RandomPlacement` exist for the
placement-sensitivity ablation (they must not change any application-
level metric, because instances are homogeneous — a property the test
suite asserts).

Implementation note: least-loaded selection uses a lazy min-heap keyed
by VM count rather than a linear scan, so placing the 150th VM into a
1000-host data center stays O(log n).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from .host import Host
from .vm import VMSpec

__all__ = [
    "PlacementPolicy",
    "LeastLoadedPlacement",
    "FirstFitPlacement",
    "RandomPlacement",
]


class PlacementPolicy(ABC):
    """Chooses a host for a new VM, or ``None`` when nothing fits."""

    @abstractmethod
    def select(self, hosts: Sequence[Host], spec: VMSpec) -> Optional[Host]:
        """Return a host with room for ``spec``, or ``None``."""

    def notify_detach(self, host: Host) -> None:
        """Hook invoked when a VM leaves ``host`` (default: no-op)."""


class LeastLoadedPlacement(PlacementPolicy):
    """Paper's policy: host with the fewest running VMs wins.

    Maintains a lazy heap of ``(vm_count, host_id)`` entries; stale
    entries are discarded on pop.  Ties break on the lower host id,
    which makes placement deterministic and therefore reproducible.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._initialized = False

    def _rebuild(self, hosts: Sequence[Host]) -> None:
        self._heap = [(h.vm_count, h.host_id, h) for h in hosts]
        heapq.heapify(self._heap)
        self._initialized = True

    def select(self, hosts: Sequence[Host], spec: VMSpec) -> Optional[Host]:
        if not self._initialized:
            self._rebuild(hosts)
        heap = self._heap
        popped = []
        chosen: Optional[Host] = None
        while heap:
            count, hid, host = heap[0]
            if count != host.vm_count:
                # Stale entry — refresh it in place.
                heapq.heapreplace(heap, (host.vm_count, hid, host))
                continue
            if host.can_fit(spec):
                chosen = host
                break
            popped.append(heapq.heappop(heap))
        # Hosts that could not fit stay eligible for future (smaller) specs.
        for entry in popped:
            heapq.heappush(heap, entry)
        if chosen is not None:
            # Account for the imminent attach so consecutive selections
            # spread across hosts even before attach() is called.
            heapq.heapreplace(heap, (chosen.vm_count + 1, chosen.host_id, chosen))
        return chosen

    def notify_detach(self, host: Host) -> None:
        if self._initialized:
            heapq.heappush(self._heap, (host.vm_count, host.host_id, host))


class FirstFitPlacement(PlacementPolicy):
    """Scan hosts in id order and take the first with room."""

    def select(self, hosts: Sequence[Host], spec: VMSpec) -> Optional[Host]:
        for host in hosts:
            if host.can_fit(spec):
                return host
        return None


class RandomPlacement(PlacementPolicy):
    """Uniformly random host among those with room.

    Parameters
    ----------
    rng:
        Dedicated random stream (see :class:`repro.sim.RandomStreams`)
        so placement randomness never perturbs workload randomness.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def select(self, hosts: Sequence[Host], spec: VMSpec) -> Optional[Host]:
        candidates = [h for h in hosts if h.can_fit(spec)]
        if not candidates:
            return None
        return candidates[int(self._rng.integers(len(candidates)))]
