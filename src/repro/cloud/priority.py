"""Priority-aware admission — the paper's §VII future-work extension.

"We will extend the model to support other QoS parameters such as
deadline and incentive/budget to ensure that high-priority requests are
served first in case of intense competition for resources and limited
resource availability."

:class:`PriorityAdmissionControl` implements the standard *trunk
reservation* discipline on top of the paper's queue-length gate:
requests carry a priority class; low-priority requests are additionally
rejected whenever the fleet's free capacity falls to or below a
reserved headroom, so under contention the remaining slots are kept for
high-priority traffic.  With zero reservation it degrades exactly to
the paper's admission control.

Per-class acceptance/rejection counters make the differentiated loss
visible (the run-level :class:`~repro.metrics.collector.MetricsCollector`
still sees every event, keeping Figure-5/6 metrics comparable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import ConfigurationError
from .fleet import ApplicationFleet
from .monitor import Monitor

__all__ = ["PriorityClassStats", "PriorityAdmissionControl", "HIGH", "LOW"]

#: Conventional class labels; any hashable class key is accepted.
HIGH = "high"
LOW = "low"


@dataclass
class PriorityClassStats:
    """Acceptance accounting for one priority class."""

    accepted: int = 0
    rejected: int = 0

    @property
    def total(self) -> int:
        """Arrivals observed in this class."""
        return self.accepted + self.rejected

    @property
    def rejection_rate(self) -> float:
        """Class-conditional rejection probability."""
        return self.rejected / self.total if self.total else 0.0


class PriorityAdmissionControl:
    """Trunk-reservation admission over the fleet's bounded queues.

    Parameters
    ----------
    fleet:
        Dispatch target.
    monitor:
        Monitoring sink (global metrics still flow through it).
    reserved_slots:
        Number of request slots (across the whole fleet) kept free for
        privileged classes: a request of a *non*-privileged class is
        rejected when free slots ≤ ``reserved_slots``.
    privileged:
        The class keys exempt from the reservation (default: ``HIGH``).
    """

    def __init__(
        self,
        fleet: ApplicationFleet,
        monitor: Monitor,
        reserved_slots: int = 0,
        privileged: tuple = (HIGH,),
    ) -> None:
        if reserved_slots < 0:
            raise ConfigurationError(f"reserved slots must be >= 0, got {reserved_slots}")
        self._fleet = fleet
        self._monitor = monitor
        self.reserved_slots = int(reserved_slots)
        self.privileged = frozenset(privileged)
        self.per_class: Dict[object, PriorityClassStats] = {}

    # ------------------------------------------------------------------
    def free_slots(self) -> int:
        """Unoccupied request slots across the ACTIVE fleet."""
        fleet = self._fleet
        return sum(
            inst.capacity - inst.occupancy for inst in fleet.active_instances
        )

    def _stats(self, klass: object) -> PriorityClassStats:
        stats = self.per_class.get(klass)
        if stats is None:
            stats = self.per_class[klass] = PriorityClassStats()
        return stats

    def submit(self, arrival_time: float, klass: object = HIGH) -> bool:
        """Admit or reject one request of class ``klass``."""
        stats = self._stats(klass)
        if klass not in self.privileged and self.free_slots() <= self.reserved_slots:
            stats.rejected += 1
            self._monitor.record_rejection()
            return False
        if self._fleet.dispatch(arrival_time):
            stats.accepted += 1
            self._monitor.record_acceptance()
            return True
        stats.rejected += 1
        self._monitor.record_rejection()
        return False
