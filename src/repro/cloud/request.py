"""Request-level data types.

The DES hot path deliberately moves *floats*, not objects (an arrival
is just its timestamp; a completion is ``now − arrival``), because the
web scenario pushes millions of requests through the engine.  The
types here serve the public API: examples, traces, and tests that want
a readable record of a request's fate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["RequestOutcome", "RequestRecord"]


class RequestOutcome(enum.Enum):
    """Terminal state of an end-user request."""

    #: Served within the negotiated response time ``Ts``.
    SERVED = "served"
    #: Served, but the response time exceeded ``Ts`` (a QoS violation).
    VIOLATED = "violated"
    #: Rejected by admission control (all instances held ``k`` requests).
    REJECTED = "rejected"
    #: Still in the system when the simulation horizon was reached.
    IN_FLIGHT = "in-flight"


@dataclass(frozen=True)
class RequestRecord:
    """Full trace record of one request (API/trace use only).

    Attributes
    ----------
    request_id:
        Sequence number of the request within its workload (``r_l``).
    arrival_time:
        Simulation time ``t_l`` the request reached the provisioner.
    outcome:
        Terminal :class:`RequestOutcome`.
    instance_id:
        Identifier of the application instance that served it, or
        ``None`` for rejected requests.
    start_time:
        When service began (``None`` if rejected).
    completion_time:
        When service finished (``None`` if rejected / in flight).
    """

    request_id: int
    arrival_time: float
    outcome: RequestOutcome
    instance_id: Optional[int] = None
    start_time: Optional[float] = None
    completion_time: Optional[float] = None

    @property
    def response_time(self) -> Optional[float]:
        """End-to-end sojourn ``T_r`` or ``None`` when not served."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def waiting_time(self) -> Optional[float]:
        """Queueing delay before service started, or ``None``."""
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time
