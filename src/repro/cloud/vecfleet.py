"""Vectorized application fleet — the batched DES data plane.

:class:`VectorFleet` is the array twin of
:class:`~repro.cloud.fleet.ApplicationFleet`: same instance lifecycle
(revive-first growth, cancel-booting / idle-first / graceful-drain
shrink, round-robin dispatch), but the per-request hot loop runs on the
structure-of-arrays kernel in :mod:`repro.sim.batch` instead of one
engine event per arrival and completion.

Epoch model
-----------
The ``des-vec`` backend drives the fleet with an *epoch loop*: before
every engine event (control alerts, Algorithm-1 decisions, VM boots,
monitor samples) it calls :meth:`advance` up to the event's timestamp.
``advance`` consumes the pending arrival buffer in *blocks*:

1. drain completions up to the next arrival (:meth:`SoAQueues.drain`);
2. if every active station is full, bulk-reject arrivals up to the
   first completion (one ``searchsorted``);
3. otherwise assign a block of arrivals cyclically over the non-full
   stations in round-robin-pointer order, bounded by
   :func:`~repro.sim.batch.safe_block_length` (no station overflows)
   and by the first completion of a *full* station (the full set cannot
   shrink mid-block) — exactly the conditions under which blocked
   cyclic assignment reproduces the scalar balancer's pointer walk,
   arrival by arrival.

Statistics are flushed once per ``advance`` span: completions are
merged across drain waves, sorted by departure time, and recorded
through the monitor/metrics *bulk* interfaces, whose arithmetic is
documented (and tested) to be exact for the jitterless cross-check
scenarios.  Because span boundaries are engine events — never block
boundaries — every recorded quantity is invariant to the block size
(the hypothesis property test in ``tests/test_batch_engine.py``).

Fidelity to the scalar fleet, and the two documented deviations:

* the service-time stream is drawn per *window* (``draw_many``) instead
  of per service *start*, so under service jitter the two backends see
  the same distribution but different per-request draws (jitterless
  runs are bit-identical);
* simultaneous events of measure zero (an arrival or completion at
  exactly a control epoch) resolve in a fixed documented order rather
  than by engine sequence number.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, PlacementError
from ..metrics.collector import MetricsCollector
from ..sim.batch import SoAQueues
from ..sim.engine import Engine
from ..workloads.base import ServiceTimeSampler
from .datacenter import Datacenter
from .loadbalancer import LoadBalancer, RoundRobinBalancer
from .monitor import Monitor
from .vm import DEFAULT_VM_SPEC, VirtualMachine, VMSpec

__all__ = ["VectorFleet"]


class VectorFleet:
    """Array-backed instance fleet satisfying the FleetActuator protocol.

    Parameters mirror :class:`~repro.cloud.fleet.ApplicationFleet`;
    additionally ``max_block`` caps the arrival-block size (purely a
    memory/latency knob — results are block-size invariant),
    ``count_arrivals`` enables the monitor's arrival-rate counter, and
    ``registry`` (a :class:`repro.obs.metrics.MetricsRegistry`) counts
    flushed spans and the requests they carried — span-cadence updates,
    so the per-request hot loop stays untouched.

    Only round-robin dispatch is implemented: a ``balancer`` argument
    must be ``None`` or a :class:`RoundRobinBalancer` (other strategies
    need the scalar backend).
    """

    def __init__(
        self,
        engine: Engine,
        datacenter: Datacenter,
        sampler: ServiceTimeSampler,
        monitor: Monitor,
        metrics: MetricsCollector,
        capacity: int,
        balancer: Optional[LoadBalancer] = None,
        vm_spec: VMSpec = DEFAULT_VM_SPEC,
        boot_delay: float = 0.0,
        tracer: Optional[object] = None,
        max_block: int = 65_536,
        count_arrivals: bool = False,
        registry: Optional[object] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"queue capacity k must be >= 1, got {capacity}")
        if boot_delay < 0.0:
            raise ConfigurationError(f"boot delay must be >= 0, got {boot_delay}")
        if balancer is not None and not isinstance(balancer, RoundRobinBalancer):
            raise ConfigurationError(
                "the vectorized fleet implements round-robin dispatch only; "
                f"use backend='des' for {type(balancer).__name__}"
            )
        if max_block < 1:
            raise ConfigurationError(f"max_block must be >= 1, got {max_block}")
        self._engine = engine
        self._datacenter = datacenter
        self._sampler = sampler
        self._monitor = monitor
        self._metrics = metrics
        self.capacity = int(capacity)
        self.vm_spec = vm_spec
        self.boot_delay = float(boot_delay)
        self._tracer = tracer
        self._max_block = int(max_block)
        self._count_arrivals = bool(count_arrivals)
        if registry is not None:
            self._m_spans = registry.counter("batch.spans")
            self._m_flushed = registry.counter("batch.flushed_requests")
        else:
            self._m_spans = None
            self._m_flushed = None
        self._last_span_t = 0.0
        # -- station state ---------------------------------------------
        self._soa = SoAQueues(self.capacity)
        self._vms: Dict[int, VirtualMachine] = {}
        self._active: List[int] = []
        self._booting: List[int] = []
        self._draining: List[int] = []
        self._active_idx = np.empty(0, dtype=np.intp)
        self._live_idx = np.empty(0, dtype=np.intp)
        self._rr = 0
        # -- arrival buffer (the broker's sink) ------------------------
        self._times = np.empty(0)
        self._services = np.empty(0)
        self._pos = 0
        # -- span accumulators (reset at every flush) ------------------
        self._chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._span_accepted = 0
        self._span_rejected = 0
        self._pending_destroy: List[Tuple[float, int]] = []
        self._accepting: Optional[bool] = None
        # -- counters --------------------------------------------------
        self.arrivals_processed = 0
        self.completions_processed = 0
        self.spans = 0

    def _emit_vm(self, event_type: str, idx: int, t: Optional[float] = None, **fields: object) -> None:
        """Trace one instance lifecycle transition (no-op untraced)."""
        if self._tracer is not None:
            when = self._engine.now if t is None else t
            self._tracer.emit(event_type, when, instance=idx, **fields)

    # ------------------------------------------------------------------
    # census (FleetActuator surface + scalar-fleet parity)
    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Instances currently accepting requests."""
        return len(self._active)

    @property
    def serving_count(self) -> int:
        """Instances provisioned for service (active + still booting)."""
        return len(self._active) + len(self._booting)

    @property
    def live_count(self) -> int:
        """All non-destroyed instances (includes draining)."""
        return len(self._active) + len(self._booting) + len(self._draining)

    def occupancy(self, idx: int) -> int:
        """Requests on board one station (in service + queued)."""
        return int(self._soa.qlen[idx]) + int(self._soa.svc_end[idx] != np.inf)

    @property
    def in_flight(self) -> int:
        """Admitted requests not yet completed across the fleet."""
        live = self._live_idx
        if live.size == 0:
            return 0
        return int(self._soa.occupancy(live).sum())

    # ------------------------------------------------------------------
    # scaling (identical ordering semantics to ApplicationFleet)
    # ------------------------------------------------------------------
    def scale_to(self, target: int) -> int:
        """Adjust the serving fleet toward ``target`` instances."""
        if target < 0:
            raise ConfigurationError(f"target fleet size must be >= 0, got {target}")
        current = self.serving_count
        if target > current:
            self._grow(target - current)
        elif target < current:
            self._shrink(current - target)
        return self.serving_count

    def _grow(self, count: int) -> None:
        # 1. Revive draining instances, most recently drained first.
        while count > 0 and self._draining:
            self._active.append(self._draining.pop())
            count -= 1
        # 2. Create fresh VMs.
        while count > 0:
            if self._create_instance() is None:
                break  # quota/capacity reached; serve with what we have
            count -= 1
        self._after_membership_change()

    def _create_instance(self) -> Optional[int]:
        now = self._engine.now
        try:
            vm = self._datacenter.create_vm(now, self.vm_spec)
        except PlacementError:
            return None
        idx = self._soa.alloc()
        self._vms[idx] = vm
        if self.boot_delay > 0.0:
            self._booting.append(idx)
            self._engine.schedule(self.boot_delay, lambda i=idx: self._boot_done(i))
        else:
            vm.boot_completed()
            self._active.append(idx)
        self._emit_vm("vm.created", idx, booting=self.boot_delay > 0.0)
        return idx

    def _boot_done(self, idx: int) -> None:
        if idx not in self._booting:
            return  # cancelled while booting
        self._booting.remove(idx)
        self._vms[idx].boot_completed()
        self._active.append(idx)
        self._after_membership_change()

    def _shrink(self, count: int) -> None:
        now = self._engine.now
        # 1. Cancel instances that have not even booted yet.
        while count > 0 and self._booting:
            idx = self._booting.pop()
            self._destroy(idx, now, "cancelled")
            count -= 1
        if count <= 0:
            self._after_membership_change()
            return
        # 2. Destroy idle actives immediately.
        occ = {i: self.occupancy(i) for i in self._active}
        idle = [i for i in self._active if occ[i] == 0]
        for idx in idle[:count]:
            self._active.remove(idx)
            self._destroy(idx, now, "idle")
        count -= min(count, len(idle))
        if count <= 0:
            self._after_membership_change()
            return
        # 3. Drain the least-loaded remaining actives.
        victims = sorted(self._active, key=lambda i: (occ[i], i))[:count]
        for idx in victims:
            self._active.remove(idx)
            self._draining.append(idx)
            self._emit_vm("vm.draining", idx)
        self._after_membership_change()

    def _destroy(self, idx: int, t: float, reason: str) -> None:
        self._soa.clear(idx)
        self._datacenter.destroy_vm(self._vms.pop(idx), t)
        self._emit_vm("vm.destroyed", idx, t=t, reason=reason)

    @property
    def live_instances(self) -> List[int]:
        """Every non-destroyed station index (a fresh list).

        Scalar-fleet parity surface for the failure/revocation
        injectors: station indices are allocated monotonically and
        never reused, so index order *is* creation order — the same
        ordering the scalar fleet's ``instance_id`` carries.
        """
        return self._active + self._booting + self._draining

    def kill(self, idx: int, reason: str = "crashed") -> int:
        """Crash one station (failure/revocation); returns requests lost.

        Mirrors :meth:`ApplicationFleet.kill` exactly: queued and
        in-service requests die with the station and are recorded as
        losses, not rejections.  The injector fires at
        ``PRIORITY_HIGH``, i.e. after the epoch loop's strict drain up
        to *now* — so a request that would complete at the kill instant
        is still aboard and is lost, matching the scalar engine's
        event ordering (kill cancels the pending completion).
        """
        for bucket in (self._active, self._booting, self._draining):
            if idx in bucket:
                bucket.remove(idx)
                break
        else:
            return 0  # already destroyed
        lost = self._soa.clear(idx)
        self._datacenter.destroy_vm(self._vms.pop(idx), self._engine.now)
        self._emit_vm("vm.destroyed", idx, reason=reason, lost=lost)
        self._metrics.record_loss(lost)
        self._after_membership_change()
        return lost

    def _after_membership_change(self) -> None:
        n = len(self._active)
        self._rr = self._rr % n if n else 0
        self._refresh_index_cache()
        self._metrics.record_fleet_size(self._engine.now, self.live_count)

    def _refresh_index_cache(self) -> None:
        self._active_idx = np.array(self._active, dtype=np.intp)
        self._live_idx = np.array(self._active + self._draining, dtype=np.intp)

    # ------------------------------------------------------------------
    # arrival sink (the broker's window hand-off)
    # ------------------------------------------------------------------
    def load(self, times: np.ndarray) -> None:
        """Buffer one window's sorted arrival batch.

        Service times are drawn here, one vectorized block per window.
        A window's batch normally drains before the next is generated;
        leftovers (a misbehaving workload model) are merged, keeping
        the buffer sorted.
        """
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            return
        services = self._sampler.draw_many(times.size)
        if self._pos < self._times.size:
            times = np.concatenate((self._times[self._pos :], times))
            services = np.concatenate((self._services[self._pos :], services))
            order = np.argsort(times, kind="stable")
            times = times[order]
            services = services[order]
        self._times = times
        self._services = services
        self._pos = 0

    @property
    def buffered(self) -> int:
        """Arrivals loaded but not yet admitted or rejected."""
        return int(self._times.size - self._pos)

    # ------------------------------------------------------------------
    # the epoch hot loop
    # ------------------------------------------------------------------
    def advance(self, t_end: float) -> None:
        """Process all arrivals and completions strictly before ``t_end``.

        Called by the backend before each engine event fires; the
        strictness mirrors the scalar priority order, where a
        same-instant control event (PRIORITY_HIGH) precedes data-plane
        events.  Flushes span statistics so the event's control logic
        observes exactly the pre-epoch state.
        """
        t_end = float(t_end)
        self._consume_arrivals(t_end)
        self._drain_until(t_end, strict=True)
        self._flush(t_end)

    def finish(self, horizon: float) -> None:
        """Close the data plane at the horizon (completions inclusive).

        Consumes the arrivals remaining after the last engine event,
        then drains completions *including* those at exactly the
        horizon — the scalar engine fires those events, while the epoch
        loop's strict drains exclude them.
        """
        horizon = float(horizon)
        self._consume_arrivals(horizon)
        self._drain_until(horizon, strict=False)
        self._flush(horizon)

    def _consume_arrivals(self, t_end: float) -> None:
        """Admit or reject every buffered arrival strictly before ``t_end``."""
        soa = self._soa
        times = self._times
        services = self._services
        i = self._pos
        n = times.size
        k = self.capacity
        while i < n and times[i] < t_end:
            t_arr = float(times[i])
            self._drain_until(t_arr, strict=False)
            act = self._active_idx
            na = act.size
            if na == 0:
                j = int(np.searchsorted(times, t_end, side="left"))
                self._reject_block(times, i, j)
                i = j
                continue
            occ = soa.qlen[act] + (soa.svc_end[act] != np.inf)
            open_mask = occ < k
            if not open_mask.any():
                # All full: the paper's rejection condition, in bulk up
                # to the first slot-freeing completion.
                t_free = float(soa.svc_end[act].min())
                j = int(np.searchsorted(times, min(t_free, t_end), side="left"))
                self._reject_block(times, i, j)
                i = j
                continue
            # Cyclic station order from the round-robin pointer.
            order = np.concatenate((np.arange(self._rr, na), np.arange(self._rr)))
            order_open = order[open_mask[order]]
            stations = act[order_open]
            n_open = stations.size
            occ_open = occ[order_open]
            l_safe = int(np.min(np.arange(n_open) + (k - occ_open) * n_open))
            if open_mask.all():
                t_full = t_end
            else:
                t_full = float(soa.svc_end[act[~open_mask]].min())
            j = int(np.searchsorted(times, min(t_full, t_end), side="left"))
            j = min(j, i + l_safe, i + self._max_block)
            block = j - i
            for r in range(0, block, n_open):
                c = min(n_open, block - r)
                soa.assign(stations[:c], times[i + r : i + r + c], services[i + r : i + r + c])
            self._accept_block(times, i, j)
            self._rr = int((order_open[(block - 1) % n_open] + 1) % na)
            i = j
        self._pos = i

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _drain_until(self, t: float, strict: bool) -> None:
        live = self._live_idx
        if live.size == 0:
            return
        waves = self._soa.drain(live, t, strict=strict)
        if not waves:
            return
        draining = self._draining
        soa = self._soa
        # Graceful-drain completions: the emptied test runs against the
        # *post-drain* state, so a draining station that completes
        # several requests within the drain appears in every one of its
        # waves.  Collapse to one entry per station, keyed on its last
        # departure (the instant it actually emptied) — waves arrive in
        # time order, so the dict keeps the latest.
        drained_at: Dict[int, float] = {}
        for done, dep, arr, svc in waves:
            self._chunks.append((dep, arr, svc))
            if draining:
                dr_mask = np.isin(done, np.array(draining, dtype=np.intp))
                if dr_mask.any():
                    cand = done[dr_mask]
                    emptied = soa.svc_end[cand] == np.inf
                    for idx, t_done in zip(
                        cand[emptied].tolist(), dep[dr_mask][emptied].tolist()
                    ):
                        drained_at[idx] = t_done
        for idx, t_done in drained_at.items():
            self._pending_destroy.append((t_done, idx))

    def _accept_block(self, times: np.ndarray, i: int, j: int) -> None:
        count = j - i
        self._span_accepted += count
        tracer = self._tracer
        if tracer is not None:
            if self._accepting is not True:
                self._accepting = True
                tracer.emit("admission.state", float(times[i]), accepting=True)
            for t in times[i:j].tolist():
                tracer.emit("request.admitted", t)

    def _reject_block(self, times: np.ndarray, i: int, j: int) -> None:
        count = j - i
        if count <= 0:
            return
        self._span_rejected += count
        tracer = self._tracer
        if tracer is not None:
            if self._accepting is not False:
                self._accepting = False
                tracer.emit("admission.state", float(times[i]), accepting=False)
            for t in times[i:j].tolist():
                tracer.emit("request.rejected", t)

    def _flush(self, t_end: float) -> None:
        """Post the span's accumulated effects in deterministic order."""
        completions = 0
        chunks = self._chunks
        if chunks:
            if len(chunks) == 1:
                dep, arr, svc = chunks[0]
            else:
                dep = np.concatenate([c[0] for c in chunks])
                arr = np.concatenate([c[1] for c in chunks])
                svc = np.concatenate([c[2] for c in chunks])
            order = np.lexsort((arr, dep))
            dep = dep[order]
            arr = arr[order]
            svc = svc[order]
            completions = int(dep.size)
            self.completions_processed += completions
            self._monitor.record_responses(dep - arr, svc, dep)
            self._chunks = []
        accepted = self._span_accepted
        rejected = self._span_rejected
        if accepted or rejected:
            self.arrivals_processed += accepted + rejected
            if self._count_arrivals:
                self._monitor.record_arrivals(accepted + rejected)
            if accepted:
                self._monitor.record_acceptances(accepted)
            if rejected:
                self._monitor.record_rejections(rejected)
            self._span_accepted = 0
            self._span_rejected = 0
        if self._pending_destroy:
            for t_done, idx in sorted(self._pending_destroy):
                self._draining.remove(idx)
                self._destroy(idx, t_done, "drained")
                self._metrics.record_fleet_size(t_done, self.live_count)
            self._pending_destroy = []
            self._refresh_index_cache()
        if accepted or rejected or completions:
            if self._tracer is not None:
                self._tracer.emit(
                    "batch.span",
                    t_end,
                    arrivals=accepted + rejected,
                    completions=completions,
                    rejected=rejected,
                    stations=len(self._active),
                    width=t_end - self._last_span_t,
                )
            if self._m_spans is not None:
                self._m_spans.inc()
                self._m_flushed.inc(accepted + rejected + completions)
            self.spans += 1
            self._last_span_t = t_end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<VectorFleet active={len(self._active)} "
            f"booting={len(self._booting)} draining={len(self._draining)} "
            f"buffered={self.buffered}>"
        )
