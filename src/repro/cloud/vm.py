"""Virtual-machine model.

Matches the paper's setup (§V-A): every application VM requests one
core and 2 GB of RAM, is pinned to an idle core of a physical host
(no CPU time-sharing between VMs), and hosts exactly one application
instance (the paper's one-to-one ``s_j`` ↔ ``v_j`` mapping).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["VMState", "VMSpec", "VirtualMachine", "DEFAULT_VM_SPEC"]


class VMState(enum.Enum):
    """Lifecycle of a virtual machine."""

    #: Requested but still booting (image transfer, OS start-up).
    PROVISIONING = "provisioning"
    #: Running and able to serve its application instance.
    RUNNING = "running"
    #: Destroyed; its core and RAM are back in the host's free pool.
    DESTROYED = "destroyed"


@dataclass(frozen=True)
class VMSpec:
    """Resource requirements of a VM class.

    Attributes
    ----------
    cores:
        Physical cores pinned to the VM (the paper uses 1).
    ram_mb:
        RAM in megabytes (the paper uses 2048).
    name:
        Label of the VM class, e.g. ``"app-small"``.
    """

    cores: int = 1
    ram_mb: int = 2048
    name: str = "app-small"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"a VM needs at least one core, got {self.cores}")
        if self.ram_mb < 1:
            raise ValueError(f"a VM needs positive RAM, got {self.ram_mb}")


#: The single VM class used by every experiment in the paper.
DEFAULT_VM_SPEC = VMSpec()


@dataclass
class VirtualMachine:
    """A placed VM.

    Attributes
    ----------
    vm_id:
        Data-center-unique identifier.
    spec:
        Resource class the VM was created from (its *initial* size).
    host_id:
        Identifier of the physical host the VM is pinned to.
    created_at:
        Simulation time the placement was made.
    state:
        Current :class:`VMState`.
    destroyed_at:
        Simulation time the VM was destroyed, if it was.
    allocated_cores:
        Cores currently pinned to the VM.  Starts at ``spec.cores``;
        vertical-scaling policies change it at runtime through
        :meth:`repro.cloud.datacenter.Datacenter.resize_vm` (the paper's
        §VI comparator, Zhu & Agrawal-style reconfiguration).
    """

    vm_id: int
    spec: VMSpec
    host_id: int
    created_at: float
    state: VMState = VMState.PROVISIONING
    destroyed_at: Optional[float] = field(default=None)
    allocated_cores: int = field(default=0)
    _core_seconds_closed: float = field(default=0.0, repr=False)
    _segment_start: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.allocated_cores == 0:
            self.allocated_cores = self.spec.cores
        self._segment_start = self.created_at

    def boot_completed(self) -> None:
        """Transition PROVISIONING → RUNNING (idempotent on RUNNING)."""
        if self.state is VMState.DESTROYED:
            raise ValueError(f"VM {self.vm_id} is destroyed and cannot boot")
        self.state = VMState.RUNNING

    def destroy(self, when: float) -> None:
        """Transition to DESTROYED, recording the time."""
        if self.state is VMState.DESTROYED:
            raise ValueError(f"VM {self.vm_id} destroyed twice")
        self._close_segment(when)
        self.state = VMState.DESTROYED
        self.destroyed_at = when

    def lifetime(self, now: float) -> float:
        """Wall-clock seconds from creation to destruction (or ``now``).

        This is the quantity summed into the paper's *VM hours* metric.
        """
        end = self.destroyed_at if self.destroyed_at is not None else now
        return max(0.0, end - self.created_at)

    # -- core-seconds ledger (vertical scaling) -------------------------
    def _close_segment(self, now: float) -> None:
        self._core_seconds_closed += self.allocated_cores * max(
            0.0, now - self._segment_start
        )
        self._segment_start = now

    def record_resize(self, new_cores: int, now: float) -> None:
        """Account a core-allocation change (called by the data center)."""
        if new_cores < 1:
            raise ValueError(f"a VM needs at least one core, got {new_cores}")
        if self.state is VMState.DESTROYED:
            raise ValueError(f"VM {self.vm_id} is destroyed and cannot resize")
        self._close_segment(now)
        self.allocated_cores = new_cores

    def core_seconds(self, now: float) -> float:
        """Σ cores × wall-clock seconds — the vertical-scaling cost unit.

        For VMs that were never resized this equals
        ``spec.cores × lifetime``.
        """
        if self.state is VMState.DESTROYED:
            return self._core_seconds_closed
        return self._core_seconds_closed + self.allocated_cores * max(
            0.0, now - self._segment_start
        )
