"""The paper's contribution: adaptive QoS-driven VM provisioning.

Components (paper §IV, Figure 1):

* :class:`WorkloadAnalyzer` — arrival-rate estimation and alerts;
* :class:`PerformanceModeler` — Algorithm 1 over the Figure-2 queueing
  network, returning the fleet size ``m`` that meets QoS at acceptable
  utilization;
* :class:`ControlPlane` — the backend-agnostic analyzer-cadence →
  modeler → actuation loop shared by the DES and fluid backends
  (:mod:`repro.core.controlplane`);
* :class:`ApplicationProvisioner` — the DES adapter that actuates
  modeler decisions through the fleet (create / revive / drain
  instances);
* :class:`QoSTarget` — the negotiated contract and the Eq.-1 capacity
  rule;
* :class:`AdaptivePolicy` / :class:`StaticPolicy` — the evaluated
  provisioning policies, attachable to a :class:`SimulationContext`.
"""

from .analyzer import WorkloadAnalyzer
from .context import SimulationContext
from .controlplane import (
    ControlClock,
    ControlPlane,
    FleetActuator,
    RecordingActuator,
    alert_schedule,
    next_alert_time,
)
from .mixed import MixedFleetPolicy, MixedFleetProvisioner
from .modeler import PerformanceModeler, ProvisioningDecision
from .policies import AdaptivePolicy, ProvisioningPolicy, StaticPolicy, default_predictor
from .provisioner import ApplicationProvisioner, ScalingAction
from .qos import QoSTarget
from .sla import SLAAwareAdmission, SLAContract, SLAPortfolio
from .vertical import VerticalProvisioner, VerticalScalingAction, VerticalScalingPolicy

__all__ = [
    "QoSTarget",
    "PerformanceModeler",
    "ProvisioningDecision",
    "WorkloadAnalyzer",
    "ApplicationProvisioner",
    "ScalingAction",
    "ControlPlane",
    "ControlClock",
    "FleetActuator",
    "RecordingActuator",
    "next_alert_time",
    "alert_schedule",
    "SimulationContext",
    "ProvisioningPolicy",
    "StaticPolicy",
    "AdaptivePolicy",
    "VerticalScalingPolicy",
    "VerticalProvisioner",
    "VerticalScalingAction",
    "SLAContract",
    "SLAPortfolio",
    "SLAAwareAdmission",
    "MixedFleetPolicy",
    "MixedFleetProvisioner",
    "default_predictor",
]
