"""Workload analyzer — scheduled arrival-rate estimation.

The workload analyzer (paper §IV-A) "generates estimation (prediction)
of request arrival rate" and "alerts the load predictor and performance
modeler when service request rate is likely to change.  This alert
contains the expected arrival rate and must be issued before the
expected time for the rate to change, so the load predictor ... has
time to calculate changes and the application provisioner has time to
deploy or release the required VMs."

:class:`WorkloadAnalyzer` realizes that contract inside the DES:

* it fires on a fixed cadence (``update_interval``) **and** at every
  known rate-change boundary reported by its predictor (the web
  workload's six daily periods, the scientific workload's 8 a.m. /
  5 p.m. switches), each alert issued ``lead_time`` seconds early;
* each alert asks the predictor for the expected rate over the window
  that the alert governs (from this alert's effect to the next one's),
  then invokes the provisioning callback with it;
* before predicting, it replays any new monitored rate samples into the
  predictor, which is how the reactive predictors learn.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

from ..cloud.monitor import Monitor
from ..errors import ConfigurationError, PredictionError
from ..prediction.base import ArrivalRatePredictor
from ..sim.engine import Engine
from ..sim.events import PRIORITY_HIGH, PRIORITY_LOW
from .controlplane import alert_window_end, next_alert_time

__all__ = ["WorkloadAnalyzer"]


class WorkloadAnalyzer:
    """Drives predictions on a cadence aligned with known boundaries.

    Parameters
    ----------
    engine:
        Simulation engine.
    predictor:
        The arrival-rate estimator.
    on_estimate:
        Callback ``(expected_rate) -> None`` — the provisioning chain.
    horizon:
        Simulation end time; no alerts are scheduled beyond it.
    update_interval:
        Cadence of regular alerts (seconds).
    lead_time:
        How early an alert fires relative to the window it governs —
        the provisioning head start for VM deployment.
    monitor:
        Optional monitor whose sampled rate history feeds the
        predictor's :meth:`~repro.prediction.base.ArrivalRatePredictor.observe`.
    deviation_threshold:
        When set (e.g. 0.3), the analyzer also *watches* the monitored
        arrival rate between scheduled alerts: if an observed sample
        deviates from the last issued estimate by more than this
        relative threshold, an immediate corrective alert fires with
        the observed rate (inflated by ``deviation_safety``).  This is
        the feedback loop that protects the system when the predictor
        is simply wrong — the paper's "resilience to uncertainties".
        Requires a monitor with rate sampling enabled.
    deviation_safety:
        Inflation applied to the observed rate on a corrective alert.
    tracer:
        Optional :class:`repro.obs.bus.TraceBus`; every alert then
        emits a ``prediction.issued`` event (``corrective=True`` for
        deviation-triggered ones, which also carry the observed rate).
    """

    def __init__(
        self,
        engine: Engine,
        predictor: ArrivalRatePredictor,
        on_estimate: Callable[[float], None],
        horizon: float,
        update_interval: float = 900.0,
        lead_time: float = 60.0,
        monitor: Optional[Monitor] = None,
        deviation_threshold: Optional[float] = None,
        deviation_safety: float = 1.1,
        tracer: Optional[object] = None,
    ) -> None:
        if update_interval <= 0.0 or not math.isfinite(update_interval):
            raise ConfigurationError(
                f"update interval must be finite and > 0, got {update_interval!r}"
            )
        if lead_time < 0.0:
            raise ConfigurationError(f"lead time must be >= 0, got {lead_time!r}")
        if horizon <= 0.0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon!r}")
        self._engine = engine
        self._predictor = predictor
        self._on_estimate = on_estimate
        self.horizon = float(horizon)
        self.update_interval = float(update_interval)
        self.lead_time = float(lead_time)
        self._monitor = monitor
        self._tracer = tracer
        self._last_fed = -math.inf
        #: History of ``(alert_time, window_start, window_end, rate)``.
        self.alerts: List[Tuple[float, float, float, float]] = []
        # -- deviation watching -----------------------------------------
        if deviation_threshold is not None:
            if deviation_threshold <= 0.0:
                raise ConfigurationError(
                    f"deviation threshold must be > 0, got {deviation_threshold!r}"
                )
            if monitor is None or monitor.rate_sample_interval is None:
                raise ConfigurationError(
                    "deviation watching needs a monitor with rate sampling "
                    "(set the scenario's rate_sample_interval)"
                )
        if deviation_safety <= 0.0:
            raise ConfigurationError(
                f"deviation safety must be > 0, got {deviation_safety!r}"
            )
        self.deviation_threshold = deviation_threshold
        self.deviation_safety = float(deviation_safety)
        self._last_estimate: Optional[float] = None
        #: Times at which a corrective (deviation) alert fired.
        self.corrections: List[float] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first alert (and deviation checks) now."""
        self._engine.schedule_at(self._engine.now, self._alert, PRIORITY_HIGH)
        if self.deviation_threshold is not None:
            # PRIORITY_LOW and scheduled after the monitor's sampling
            # event, so each check sees the sample taken at the same
            # instant (FIFO among equal priorities).
            interval = self._monitor.rate_sample_interval
            self._engine.schedule(interval, self._deviation_check, PRIORITY_LOW)

    def _next_alert_time(self, now: float) -> float:
        """Shared cadence (see :func:`repro.core.controlplane.next_alert_time`)."""
        return next_alert_time(self._predictor, now, self.update_interval, self.lead_time)

    def _feed_monitor_history(self) -> None:
        if self._monitor is None:
            return
        for t, rate in self._monitor.rate_history:
            if t > self._last_fed:
                self._predictor.observe(t, rate)
                self._last_fed = t

    def _alert(self) -> None:
        now = self._engine.now
        nxt = self._next_alert_time(now)
        # The window this alert governs starts *now*: the fleet chosen
        # here serves everything until the next alert actuates, so a
        # scale-down must still cover the tail of the current regime.
        window_start = now
        window_end = alert_window_end(window_start, nxt, self.lead_time)
        self._feed_monitor_history()
        try:
            rate = self._predictor.predict(window_start, window_end)
        except PredictionError:
            # A reactive predictor with no history yet: skip this alert;
            # the next one will have samples.
            rate = None
        if rate is not None:
            self.alerts.append((now, window_start, window_end, rate))
            self._last_estimate = rate
            if self._tracer is not None:
                self._tracer.emit(
                    "prediction.issued",
                    now,
                    rate=rate,
                    window_start=window_start,
                    window_end=window_end,
                    corrective=False,
                )
            self._on_estimate(rate)
        if nxt < self.horizon:
            self._engine.schedule_at(nxt, self._alert, PRIORITY_HIGH)

    def _deviation_check(self) -> None:
        """Compare the latest observed rate with the issued estimate."""
        now = self._engine.now
        observed = self._monitor.observed_rate()
        estimate = self._last_estimate
        if observed is not None and estimate is not None:
            reference = max(estimate, 1e-12)
            if abs(observed - estimate) / reference > self.deviation_threshold:
                corrected = observed * self.deviation_safety
                self.alerts.append((now, now, now + self.update_interval, corrected))
                self.corrections.append(now)
                self._last_estimate = corrected
                if self._tracer is not None:
                    self._tracer.emit(
                        "prediction.issued",
                        now,
                        rate=corrected,
                        window_start=now,
                        window_end=now + self.update_interval,
                        corrective=True,
                        observed=observed,
                        previous_estimate=estimate,
                    )
                self._on_estimate(corrected)
        interval = self._monitor.rate_sample_interval
        nxt = now + interval
        if nxt < self.horizon:
            self._engine.schedule_at(nxt, self._deviation_check, PRIORITY_LOW)
