"""Simulation context — the wired-up deployment a policy plugs into.

The experiment runner builds one :class:`SimulationContext` per run
(engine, data center, fleet, monitor, metrics, admission, source) and
then hands it to a :class:`~repro.core.policies.ProvisioningPolicy`,
which contributes only the *control plane* (static sizing, or the
analyzer → modeler → provisioner chain).  Keeping the data plane
identical across policies is what makes the Figure-5/6 comparisons
fair, and the shared random streams make them variance-reduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cloud.admission import AdmissionControl
from ..cloud.broker import WorkloadSource
from ..cloud.datacenter import Datacenter
from ..cloud.fleet import ApplicationFleet
from ..cloud.monitor import Monitor
from ..metrics.collector import MetricsCollector
from ..sim.engine import Engine
from ..sim.rng import RandomStreams
from ..workloads.base import Workload
from .qos import QoSTarget

__all__ = ["SimulationContext"]


@dataclass
class SimulationContext:
    """Everything a provisioning policy needs to attach itself.

    Attributes
    ----------
    engine, streams:
        Simulation kernel and the run's random streams.
    workload, qos:
        The scenario's demand model and QoS contract.
    capacity:
        Per-instance queue size ``k`` (Eq. 1, already computed).
    datacenter, fleet, monitor, metrics, admission, source:
        The wired data plane.
    horizon:
        Simulation end time.
    provisioner:
        Set by adaptive policies after attaching (for diagnostics).
    analyzer:
        Set by adaptive policies after attaching (for diagnostics).
    tracer:
        Optional :class:`repro.obs.bus.TraceBus` shared by every
        instrumented component of the run (``None`` = tracing off).
    audit:
        Optional :class:`repro.obs.audit.DecisionAuditLog` that records
        every Algorithm-1 invocation for replay/explanation.
    registry:
        Optional :class:`repro.obs.metrics.MetricsRegistry` shared by
        every instrumented component (``None`` = metrics off).
    """

    engine: Engine
    streams: RandomStreams
    workload: Workload
    qos: QoSTarget
    capacity: int
    datacenter: Datacenter
    fleet: ApplicationFleet
    monitor: Monitor
    metrics: MetricsCollector
    admission: AdmissionControl
    source: WorkloadSource
    horizon: float
    provisioner: Optional[object] = field(default=None)
    analyzer: Optional[object] = field(default=None)
    tracer: Optional[object] = field(default=None)
    audit: Optional[object] = field(default=None)
    registry: Optional[object] = field(default=None)
