"""Backend-agnostic control plane — cadence, decision, actuation.

The paper's mechanism is one loop (Figure 1): the workload analyzer
estimates the arrival rate on a boundary-aligned cadence, the
performance modeler runs Algorithm 1, and the application provisioner
actuates the chosen fleet size.  The repo executes that loop on two
very different substrates — the event-driven simulator
(:mod:`repro.backends.des`) and the interval-analytical fluid engine
(:mod:`repro.backends.fluid`) — and this module is the single
implementation both drive:

* :func:`next_alert_time` / :func:`alert_schedule` — the analyzer
  cadence (regular interval pulled earlier by known rate boundaries,
  each boundary alerting both ``lead_time`` early and exactly on time);
* :class:`FleetActuator` — the narrow protocol a fleet must satisfy to
  be scaled (``serving_count`` + ``scale_to``);
  :class:`repro.cloud.fleet.ApplicationFleet` implements it with real
  instance mechanics, :class:`RecordingActuator` with a counter;
* :class:`ControlPlane` — predictor → Algorithm-1 modeler → actuator,
  recording every actuation as a :class:`ScalingAction`.

Keeping this in one place is what makes the DES-vs-fluid cross-check
(``tests/test_backend_xcheck.py``) a *correctness* tool: the two
backends cannot disagree on the control trajectory unless one of them
has a bug, because they execute the same code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

try:  # Protocol is typing-only; runtime_checkable keeps isinstance tests.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py3.7 fallback, not supported
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from ..errors import ConfigurationError, PredictionError
from .modeler import PerformanceModeler, ProvisioningDecision

__all__ = [
    "FleetActuator",
    "RecordingActuator",
    "ScalingAction",
    "ControlClock",
    "ControlPlane",
    "next_alert_time",
    "alert_schedule",
    "alert_window_end",
]


@runtime_checkable
class FleetActuator(Protocol):
    """What the control plane needs from a fleet — nothing more.

    :class:`repro.cloud.fleet.ApplicationFleet` satisfies this with the
    full instance lifecycle (revive / create / graceful drain);
    :class:`RecordingActuator` satisfies it with a counter, which is
    all the fluid backend needs.
    """

    @property
    def serving_count(self) -> int:
        """Instances currently provisioned for service."""
        ...  # pragma: no cover - protocol body

    def scale_to(self, target: int) -> int:
        """Scale toward ``target`` instances; return the size reached."""
        ...  # pragma: no cover - protocol body


class RecordingActuator:
    """A :class:`FleetActuator` with no data plane behind it.

    Used by the fluid backend (and unit tests): ``scale_to`` simply
    sets the counter, optionally capped at ``max_instances`` to mirror
    a data center's placement limit.
    """

    def __init__(self, initial: int = 0, max_instances: Optional[int] = None) -> None:
        if initial < 0:
            raise ConfigurationError(f"initial fleet size must be >= 0, got {initial}")
        self._count = int(initial)
        self.max_instances = max_instances

    @property
    def serving_count(self) -> int:
        return self._count

    def scale_to(self, target: int) -> int:
        target = max(0, int(target))
        if self.max_instances is not None:
            target = min(target, int(self.max_instances))
        self._count = target
        return target


@dataclass(frozen=True)
class ScalingAction:
    """One provisioning actuation, kept for diagnostics and figures.

    Attributes
    ----------
    time:
        When the decision was actuated.
    predicted_rate:
        The analyzer's ``λ`` estimate that triggered it.
    service_time:
        The monitored ``T_m`` used.
    before, target, after:
        Serving fleet size before the action, the modeler's target, and
        the size actually reached (placement limits may cap growth).
    decision:
        The full Algorithm-1 outcome.
    """

    time: float
    predicted_rate: float
    service_time: float
    before: int
    target: int
    after: int
    decision: ProvisioningDecision


class ControlClock:
    """Mutable time source for control-plane observability off the DES.

    The modeler's tracer/audit hooks need a ``time_fn``; inside the DES
    that is ``lambda: engine.now``, and on analytical backends it is one
    of these, advanced by the :class:`ControlPlane` at each decision.
    """

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# analyzer cadence (shared by WorkloadAnalyzer and the fluid backend)
# ----------------------------------------------------------------------
def next_alert_time(
    predictor,
    now: float,
    update_interval: float,
    lead_time: float,
) -> float:
    """Regular cadence, pulled earlier by any known boundary.

    Each boundary ``b`` reported by the predictor triggers *two*
    alerts: one at ``b − lead_time`` (so capacity for an upcoming rate
    increase is provisioned with the required head start) and one
    exactly at ``b`` (so capacity for a rate decrease is not released
    while the old, higher rate is still arriving).
    """
    nxt = now + update_interval
    for b in predictor.boundaries(now, nxt + lead_time):
        for candidate in (b - lead_time, b):
            if now < candidate < nxt:
                nxt = candidate
    return nxt


def alert_schedule(
    predictor,
    horizon: float,
    update_interval: float,
    lead_time: float,
) -> List[float]:
    """Every alert time in ``[0, horizon)`` under the shared cadence."""
    times = [0.0]
    t = 0.0
    while True:
        nxt = next_alert_time(predictor, t, update_interval, lead_time)
        if nxt >= horizon:
            return times
        times.append(nxt)
        t = nxt


def alert_window_end(now: float, next_alert: float, lead_time: float) -> float:
    """End of the window an alert at ``now`` governs.

    The window extends one lead time past the next alert so newly
    provisioned capacity overlaps its boot; the ``1e-9`` floor keeps
    degenerate zero-length windows well-posed for the predictors.
    """
    return max(next_alert + lead_time, now + 1e-9)


# ----------------------------------------------------------------------
# the control plane proper
# ----------------------------------------------------------------------
class ControlPlane:
    """Predictor → Algorithm-1 modeler → actuator, backend-agnostic.

    Inside the DES, :class:`~repro.core.provisioner.ApplicationProvisioner`
    wraps one of these (actuator = the real
    :class:`~repro.cloud.fleet.ApplicationFleet`, service time = the
    monitored EWMA) and the event-scheduled
    :class:`~repro.core.analyzer.WorkloadAnalyzer` feeds it estimates.
    On the fluid backend the plane is *self-driving*: the backend walks
    :meth:`alert_times` and calls :meth:`step` at each one.

    Parameters
    ----------
    modeler:
        Algorithm-1 implementation.
    actuator:
        The :class:`FleetActuator` decisions are applied to.
    service_time_fn:
        Zero-argument callable returning the current ``T_m`` estimate
        (monitored EWMA in the DES, analytic mean on the fluid path).
    predictor:
        Arrival-rate estimator.  Only required for the self-driving
        path (:meth:`alert_times` / :meth:`step`); the DES analyzer
        owns its predictor and calls :meth:`on_estimate` directly.
    update_interval, lead_time:
        Analyzer cadence parameters (see :func:`next_alert_time`).
    initial_instances:
        Fleet deployed by :meth:`start` before the first alert.
    tracer:
        Optional :class:`repro.obs.bus.TraceBus`; actuations then emit
        ``scaling.actuated`` events and self-driven predictions emit
        ``prediction.issued``.
    clock:
        Optional :class:`ControlClock` advanced at each decision — the
        ``time_fn`` to hand a traced/audited modeler off the DES.
    registry:
        Optional :class:`repro.obs.metrics.MetricsRegistry`; each
        actuation then increments the ``control.decisions`` counter and
        updates the ``fleet.size`` / ``fleet.target`` gauges.  Control
        decisions are epoch-cadence events, so the cost is negligible.
    """

    def __init__(
        self,
        modeler: PerformanceModeler,
        actuator: FleetActuator,
        service_time_fn: Callable[[], float],
        predictor=None,
        update_interval: float = 900.0,
        lead_time: float = 60.0,
        initial_instances: int = 0,
        tracer: Optional[object] = None,
        clock: Optional[ControlClock] = None,
        registry: Optional[object] = None,
    ) -> None:
        if update_interval <= 0.0 or not math.isfinite(update_interval):
            raise ConfigurationError(
                f"update interval must be finite and > 0, got {update_interval!r}"
            )
        if lead_time < 0.0:
            raise ConfigurationError(f"lead time must be >= 0, got {lead_time!r}")
        if initial_instances < 0:
            raise ConfigurationError(
                f"initial fleet size must be >= 0, got {initial_instances}"
            )
        self.modeler = modeler
        self.actuator = actuator
        self.service_time_fn = service_time_fn
        self.predictor = predictor
        self.update_interval = float(update_interval)
        self.lead_time = float(lead_time)
        self.initial_instances = int(initial_instances)
        self.tracer = tracer
        self.clock = clock if clock is not None else ControlClock()
        if registry is not None:
            self._m_decisions = registry.counter("control.decisions")
            self._m_fleet = registry.gauge("fleet.size")
            self._m_target = registry.gauge("fleet.target")
        else:
            self._m_decisions = None
            self._m_fleet = None
            self._m_target = None
        #: Actuation log in time order (both backends).
        self.actions: List[ScalingAction] = []

    # -- properties shared with diagnostics consumers -------------------
    @property
    def now(self) -> float:
        """Time of the most recent decision."""
        return self.clock.now

    @property
    def cache_hits(self) -> int:
        """Decision-cache hits of the underlying modeler."""
        return self.modeler.cache_hits

    @property
    def cache_misses(self) -> int:
        """Decision-cache misses of the underlying modeler."""
        return self.modeler.cache_misses

    @property
    def trajectory(self) -> Tuple[Tuple[float, int], ...]:
        """``(time, reached_fleet_size)`` per actuation — the control
        trajectory compared bit-for-bit across backends."""
        return tuple((a.time, a.after) for a in self.actions)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Deploy the initial fleet (no-op when ``initial_instances`` is 0)."""
        if self.initial_instances > 0:
            self.actuator.scale_to(self.initial_instances)

    def on_estimate(self, now: float, predicted_rate: float) -> int:
        """Run Algorithm 1 for one estimate and actuate the result.

        Returns the fleet size actually reached.
        """
        self.clock.now = float(now)
        tm = self.service_time_fn()
        before = self.actuator.serving_count
        decision = self.modeler.decide(predicted_rate, tm, max(1, before))
        after = self.actuator.scale_to(decision.instances)
        if self._m_decisions is not None:
            self._m_decisions.inc()
            self._m_target.set(decision.instances)
            self._m_fleet.set(after)
        if self.tracer is not None:
            self.tracer.emit(
                "scaling.actuated",
                now,
                predicted_rate=predicted_rate,
                before=before,
                target=decision.instances,
                after=after,
                service_time=tm,
            )
        self.actions.append(
            ScalingAction(
                time=now,
                predicted_rate=predicted_rate,
                service_time=tm,
                before=before,
                target=decision.instances,
                after=after,
                decision=decision,
            )
        )
        return after

    # -- self-driving path (analytical backends) ------------------------
    def alert_times(self, horizon: float) -> List[float]:
        """Every alert time in ``[0, horizon)`` (needs a predictor)."""
        if self.predictor is None:
            raise ConfigurationError(
                "a self-driving control plane needs a predictor; "
                "pass predictor= when constructing the ControlPlane"
            )
        return alert_schedule(
            self.predictor, horizon, self.update_interval, self.lead_time
        )

    def step(self, now: float) -> Optional[int]:
        """One self-driven control step: predict, decide, actuate.

        The governed window is recomputed exactly as the DES analyzer
        does — from ``now`` to one lead time past the *next* alert
        (:func:`next_alert_time` / :func:`alert_window_end`) — so the
        two backends issue identical predictions.  Returns the fleet
        size reached, or ``None`` when the predictor has no estimate
        yet (the DES analyzer skips such alerts too).
        """
        if self.predictor is None:
            raise ConfigurationError("ControlPlane.step needs a predictor")
        window_start = float(now)
        nxt = next_alert_time(
            self.predictor, window_start, self.update_interval, self.lead_time
        )
        window_end = alert_window_end(window_start, nxt, self.lead_time)
        try:
            rate = self.predictor.predict(window_start, window_end)
        except PredictionError:
            # A reactive predictor with no history yet: skip this alert.
            return None
        if self.tracer is not None:
            self.tracer.emit(
                "prediction.issued",
                now,
                rate=rate,
                window_start=window_start,
                window_end=window_end,
                corrective=False,
            )
        return self.on_estimate(now, rate)
