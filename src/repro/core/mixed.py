"""Mixed-fleet provisioning — heterogeneous VM classes (§IV-B).

"Virtual machines with different capacities might also be deployed in
the system.  In this case, the provisioner has to decide when to deploy
VMs with different capacity, and this topic is subject of future
research."

:class:`MixedFleetPolicy` implements that decision in the same
analyzer/Algorithm-1 framework:

1. Algorithm 1 runs against the *small* (1-core) instance model exactly
   as in the paper, yielding the equivalent small-fleet size ``m``;
2. the required capacity is then packed into VM classes greedily by
   core count — large instances (which serve ``c``× faster under the
   linear-speedup model) carry the bulk, small instances the
   remainder.  A ``large_threshold`` keeps small deployments on small
   VMs (large instances have coarse granularity and drain slowly);
3. scaling up prefers adding whichever class closes the core deficit
   with least overshoot; scaling down drains small instances first
   (cheapest capacity to release).

Because a ``c``-core instance is modeled as ``c`` small servers, the
per-instance queue capacity scales with the class (``k·c``), keeping
the Eq.-1 deadline guarantee intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..cloud.fleet import ApplicationFleet
from ..cloud.instance import AppInstance
from ..cloud.monitor import Monitor
from ..cloud.vm import VMSpec
from ..errors import ConfigurationError
from ..prediction.base import ArrivalRatePredictor
from ..sim.engine import Engine
from .analyzer import WorkloadAnalyzer
from .context import SimulationContext
from .modeler import PerformanceModeler
from .policies import ProvisioningPolicy, default_predictor

__all__ = ["MixedFleetAction", "MixedFleetProvisioner", "MixedFleetPolicy"]


@dataclass(frozen=True)
class MixedFleetAction:
    """One mixed-fleet actuation, for diagnostics."""

    time: float
    predicted_rate: float
    target_cores: int
    large_instances: int
    small_instances: int


class MixedFleetProvisioner:
    """Packs the Algorithm-1 core requirement into two VM classes."""

    def __init__(
        self,
        engine: Engine,
        fleet: ApplicationFleet,
        modeler: PerformanceModeler,
        monitor: Monitor,
        large_cores: int = 4,
        large_threshold: int = 8,
    ) -> None:
        if large_cores < 2:
            raise ConfigurationError(f"large class needs >= 2 cores, got {large_cores}")
        if large_threshold < large_cores:
            raise ConfigurationError(
                f"large threshold ({large_threshold}) must be >= large class "
                f"size ({large_cores})"
            )
        self._engine = engine
        self._fleet = fleet
        self._modeler = modeler
        self._monitor = monitor
        self.large_cores = int(large_cores)
        self.large_threshold = int(large_threshold)
        self.large_spec = VMSpec(
            cores=self.large_cores,
            ram_mb=2048 * self.large_cores,
            name=f"app-large-{self.large_cores}c",
        )
        self.actions: List[MixedFleetAction] = []

    # ------------------------------------------------------------------
    def plan(self, target_cores: int) -> Tuple[int, int]:
        """Split a core requirement into (large, small) instance counts.

        Below the threshold everything stays small; above it, large
        instances carry the bulk and small ones the remainder.
        """
        if target_cores < self.large_threshold:
            return 0, max(1, target_cores)
        large = target_cores // self.large_cores
        small = target_cores - large * self.large_cores
        return large, small

    def _census(self) -> Tuple[List[AppInstance], List[AppInstance]]:
        small, large = [], []
        for inst in self._fleet.active_instances:
            (large if inst.vm.allocated_cores > 1 else small).append(inst)
        return small, large

    def on_estimate(self, predicted_rate: float) -> None:
        """Analyzer callback — re-plan the class mix."""
        tm = self._monitor.mean_service_time()
        # The monitored Tm mixes speeds; correct back to single-core
        # time using the current weighted average speed.
        small, large = self._census()
        total_cores_now = len(small) + self.large_cores * len(large)
        instances_now = len(small) + len(large)
        avg_speed = (total_cores_now / instances_now) if instances_now else 1.0
        tm_base = tm * avg_speed
        decision = self._modeler.decide(
            predicted_rate, tm_base, max(1, total_cores_now)
        )
        target_cores = decision.instances
        want_large, want_small = self.plan(target_cores)
        self._actuate(want_large, want_small)
        self.actions.append(
            MixedFleetAction(
                time=self._engine.now,
                predicted_rate=predicted_rate,
                target_cores=target_cores,
                large_instances=want_large,
                small_instances=want_small,
            )
        )

    def _actuate(self, want_large: int, want_small: int) -> None:
        fleet = self._fleet
        small, large = self._census()
        # Grow/shrink the large class first (bulk capacity).
        for _ in range(max(0, want_large - len(large))):
            if not self._grow_one(self.large_spec, self.large_cores):
                break
        for inst in large[want_large:]:
            fleet.scale_down_instance(inst)
        # Then the small class.
        for _ in range(max(0, want_small - len(small))):
            if not self._grow_one(fleet.vm_spec, 1):
                break
        for inst in small[want_small:]:
            fleet.scale_down_instance(inst)

    def _grow_one(self, spec: VMSpec, speed: int) -> bool:
        inst = self._fleet.grow_with_spec(spec)
        if inst is None:
            return False
        inst.speed = float(speed)
        # A c-core instance absorbs c small-instance queues while
        # keeping the same per-request deadline bound (k·c requests,
        # each finished c× faster).
        inst.capacity = self._fleet.capacity * speed
        return True


class MixedFleetPolicy(ProvisioningPolicy):
    """Adaptive provisioning over heterogeneous VM classes.

    Parameters
    ----------
    large_cores:
        Core count of the large class (paper hosts fit up to 8).
    large_threshold:
        Core requirement below which only small VMs are used.
    update_interval, lead_time, rho_max, predictor_factory:
        As for :class:`~repro.core.policies.AdaptivePolicy`.
    """

    name = "Mixed"

    def __init__(
        self,
        large_cores: int = 4,
        large_threshold: int = 8,
        update_interval: float = 900.0,
        lead_time: float = 60.0,
        rho_max: float = 0.85,
        predictor_factory: Callable[[SimulationContext], ArrivalRatePredictor] = default_predictor,
    ) -> None:
        self.large_cores = int(large_cores)
        self.large_threshold = int(large_threshold)
        self.update_interval = float(update_interval)
        self.lead_time = float(lead_time)
        self.rho_max = float(rho_max)
        self.predictor_factory = predictor_factory
        self.name = f"Mixed-{large_cores}c"

    def attach(self, ctx: SimulationContext) -> None:
        modeler = PerformanceModeler(
            qos=ctx.qos,
            capacity=ctx.capacity,
            max_vms=ctx.datacenter.max_vms(ctx.fleet.vm_spec),
            rho_max=self.rho_max,
        )
        provisioner = MixedFleetProvisioner(
            engine=ctx.engine,
            fleet=ctx.fleet,
            modeler=modeler,
            monitor=ctx.monitor,
            large_cores=self.large_cores,
            large_threshold=self.large_threshold,
        )
        analyzer = WorkloadAnalyzer(
            engine=ctx.engine,
            predictor=self.predictor_factory(ctx),
            on_estimate=provisioner.on_estimate,
            horizon=ctx.horizon,
            update_interval=self.update_interval,
            lead_time=self.lead_time,
            monitor=ctx.monitor,
        )
        analyzer.start()
        ctx.provisioner = provisioner
        ctx.analyzer = analyzer
