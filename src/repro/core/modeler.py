"""Load predictor & performance modeler — Algorithm 1.

This component (paper §IV-B) "solves an analytical model based on the
observed system performance and predicted load to decide the number of
VM instances that should be allocated to an application".  The model is
the Figure-2 queueing network (:class:`repro.queueing.ProvisioningNetwork`):
an M/M/∞ dispatch station feeding ``m`` parallel M/M/1/k instances,
each offered ``λ/m``.

Algorithm 1 (reproduced faithfully, with two documented fixes):

1. start from the current fleet size ``m``; bounds ``min = 1``,
   ``max = MaxVMs``;
2. evaluate blocking ``Pr(S_k)`` and response time ``T_q`` at ``m``;
3. if QoS is not met: record ``m`` as insufficient (``min ← oldm + 1``
   — the paper prints ``min ← m + 1`` *after* growing ``m``, which
   would push the lower bound above the candidate; we use the evident
   intent), grow ``m ← m + m/2`` capped at ``max``;
4. else if predicted utilization is below the threshold: ``max ← m``,
   bisect down ``m ← min + (max − min)/2``, reverting to ``oldm`` when
   the bisection cannot move;
5. stop when ``m`` does not change (plus an explicit ``min > max``
   guard, the second fix).

QoS-check calibration (DESIGN.md §3): the scenarios declare a 0 %
rejection *target* while the reported fleet sizes correspond to
per-instance loads ρ ≈ 0.8–0.85 — where an M/M/1/2 model predicts ~26 %
blocking but the low-variability simulated workload rejects ≈ nothing.
The modeler therefore accepts a candidate when its *offered load* stays
below ``rho_max`` (default 0.85): the blocking tolerance is derived as
``mm1k_blocking(rho_max, k)`` so the check is still expressed in the
paper's terms (``Pr(S_k)`` against a tolerance) and still responds to
``k``.  Utilization in step 4 is predicted as offered load ``ρ`` capped
at 1 — the carried load of a lightly-variable system.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..queueing.mm1k import MM1KQueue, mm1k_blocking
from ..queueing.network import NetworkPerformance, ProvisioningNetwork
from .qos import QoSTarget

__all__ = ["ProvisioningDecision", "PerformanceModeler"]


def _round_sig(x: float, sig: int) -> float:
    """Round ``x`` to ``sig`` significant digits (scale-free grid)."""
    if x == 0.0:
        return 0.0
    return round(x, sig - 1 - int(math.floor(math.log10(abs(x)))))


@dataclass(frozen=True)
class ProvisioningDecision:
    """Outcome of one Algorithm-1 run.

    Attributes
    ----------
    instances:
        The fleet size ``m`` selected.
    predicted:
        Network performance at the selected ``m``.
    iterations:
        Search iterations used (the algorithm's loop count).
    meets_qos:
        Whether the selected ``m`` satisfies the QoS check (it may not
        when ``MaxVMs`` caps the search).
    trace:
        Sequence of candidate fleet sizes examined, for diagnostics.
    """

    instances: int
    predicted: NetworkPerformance
    iterations: int
    meets_qos: bool
    trace: List[int] = field(default_factory=list)


class PerformanceModeler:
    """Runs Algorithm 1 against the analytical network model.

    Parameters
    ----------
    qos:
        The application's QoS contract.
    capacity:
        Per-instance queue capacity ``k`` (Eq. 1).
    max_vms:
        ``MaxVMs`` — quota negotiated with the IaaS provider.
    min_vms:
        Floor on the fleet size (≥ 1).
    rho_max:
        Maximum acceptable per-instance offered load; the blocking
        tolerance is ``mm1k_blocking(rho_max, k)`` unless
        ``rejection_tolerance`` is given explicitly.
    rejection_tolerance:
        Explicit override of the predicted-blocking tolerance.
    instance_model:
        Queue-model factory ``(lam, mu, k) -> QueueModel`` for each
        instance station (ablations swap in M/D/1/K etc.).
    dispatch_time:
        Mean delay of the M/M/∞ dispatch station (default 0).
    response_percentile:
        When set (e.g. 0.95), the QoS check requires the *percentile*
        of the per-instance sojourn distribution — not just its mean —
        to stay within ``Ts``.  A §VII-style richer QoS target; needs
        an instance model exposing ``response_time_quantile`` (the
        default M/M/1/K does).
    decision_cache_size:
        Capacity of the quantized LRU decision cache (0 disables it).
        Analyzer ticks under steady load re-pose the same
        ``(λ, T_m, m)`` point every interval; caching skips the whole
        grow/shrink search on those hits.
    cache_significant_digits:
        ``λ`` and ``T_m`` are rounded to this many significant digits
        to form the cache key, so near-identical monitored inputs
        (e.g. an EWMA ``T_m`` wobbling in its last digits) collapse
        onto one cache line.  The grid is scale-free; 3 digits keeps
        key collisions well inside the search's own ±1-instance noise.
    tracer:
        Optional :class:`repro.obs.bus.TraceBus`; every invocation of
        :meth:`decide` then emits a ``decision`` event carrying the
        inputs, the grow/shrink search path, and whether it was a
        cache hit.  Needs ``time_fn`` for timestamps.
    time_fn:
        Zero-argument callable returning the current simulation time
        (``lambda: engine.now``); required when ``tracer`` or
        ``audit`` is set, ignored otherwise.
    audit:
        Optional :class:`repro.obs.audit.DecisionAuditLog` receiving a
        :class:`~repro.obs.audit.DecisionRecord` per invocation — the
        in-process form of the trace's ``decision`` events.

    Notes
    -----
    The cache is invalidated automatically when :attr:`qos` is
    reassigned.  Mutating other decision inputs in place
    (``rho_max``, ``rejection_tolerance``, ``capacity`` …) requires an
    explicit :meth:`clear_cache`.  Hit/miss counters are exposed via
    :attr:`cache_hits` / :attr:`cache_misses` / :meth:`cache_info`.
    """

    def __init__(
        self,
        qos: QoSTarget,
        capacity: int,
        max_vms: int,
        min_vms: int = 1,
        rho_max: float = 0.85,
        rejection_tolerance: Optional[float] = None,
        instance_model: Callable[[float, float, int], object] = MM1KQueue,
        dispatch_time: float = 0.0,
        response_percentile: Optional[float] = None,
        decision_cache_size: int = 256,
        cache_significant_digits: int = 3,
        tracer: Optional[object] = None,
        time_fn: Optional[Callable[[], float]] = None,
        audit: Optional[object] = None,
    ) -> None:
        if decision_cache_size < 0:
            raise ConfigurationError(
                f"decision cache size must be >= 0, got {decision_cache_size}"
            )
        if cache_significant_digits < 1:
            raise ConfigurationError(
                f"cache significant digits must be >= 1, got {cache_significant_digits}"
            )
        self._cache: "OrderedDict[Tuple[float, float, int], ProvisioningDecision]" = OrderedDict()
        self._cache_size = int(decision_cache_size)
        self._cache_sig = int(cache_significant_digits)
        #: Decision-cache hit counter (observability).
        self.cache_hits = 0
        #: Decision-cache miss counter (observability).
        self.cache_misses = 0
        if capacity < 1:
            raise ConfigurationError(f"capacity k must be >= 1, got {capacity}")
        if min_vms < 1 or max_vms < min_vms:
            raise ConfigurationError(
                f"need 1 <= min_vms <= max_vms, got min={min_vms} max={max_vms}"
            )
        if not 0.0 < rho_max < 1.0:
            raise ConfigurationError(f"rho_max must be in (0, 1), got {rho_max!r}")
        self.qos = qos
        self.capacity = int(capacity)
        self.max_vms = int(max_vms)
        self.min_vms = int(min_vms)
        self.rho_max = float(rho_max)
        if rejection_tolerance is None:
            rejection_tolerance = mm1k_blocking(rho_max, capacity)
        if not 0.0 <= rejection_tolerance <= 1.0:
            raise ConfigurationError(
                f"rejection tolerance must be in [0, 1], got {rejection_tolerance!r}"
            )
        self.rejection_tolerance = float(rejection_tolerance)
        if response_percentile is not None and not 0.0 < response_percentile < 1.0:
            raise ConfigurationError(
                f"response percentile must be in (0, 1), got {response_percentile!r}"
            )
        self.response_percentile = response_percentile
        self._instance_model = instance_model
        self._dispatch_time = float(dispatch_time)
        if (tracer is not None or audit is not None) and time_fn is None:
            raise ConfigurationError(
                "a modeler with a tracer or audit log needs time_fn "
                "(e.g. lambda: engine.now) to timestamp decisions"
            )
        #: Optional trace bus (``decision`` events).
        self.tracer = tracer
        #: Optional decision audit log.
        self.audit = audit
        #: Simulation-clock accessor for decision timestamps.
        self.time_fn = time_fn

    # ------------------------------------------------------------------
    # decision cache
    # ------------------------------------------------------------------
    @property
    def qos(self) -> QoSTarget:
        """The QoS contract; reassigning it invalidates the cache."""
        return self._qos

    @qos.setter
    def qos(self, value: QoSTarget) -> None:
        self._qos = value
        self.clear_cache()

    def clear_cache(self) -> None:
        """Drop all cached decisions (counters are preserved)."""
        self._cache.clear()

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size snapshot of the decision cache."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "size": len(self._cache),
            "maxsize": self._cache_size,
        }

    def _cache_key(
        self, arrival_rate: float, service_time: float, m: int
    ) -> Tuple[float, float, int]:
        sig = self._cache_sig
        return (_round_sig(arrival_rate, sig), _round_sig(service_time, sig), m)

    # ------------------------------------------------------------------
    def _network(self, service_time: float) -> ProvisioningNetwork:
        return ProvisioningNetwork(
            service_time=service_time,
            capacity=self.capacity,
            dispatch_time=self._dispatch_time,
            instance_model=self._instance_model,
        )

    def meets_qos(self, perf: NetworkPerformance) -> bool:
        """The paper's line-9 test: do ``Pr(S_k)`` and ``T_q`` meet QoS?"""
        if not (
            perf.blocking_probability <= self.rejection_tolerance
            and perf.response_time <= self.qos.max_response_time
            and perf.rho <= self.rho_max
        ):
            return False
        if self.response_percentile is not None:
            if perf.per_instance_lambda <= 0.0 or perf.rho <= 0.0:
                return True  # no traffic: nothing can be late
            # Recover the service rate from the performance record so
            # this check needs no hidden state: mu = lam_i / rho.
            mu = perf.per_instance_lambda / perf.rho
            station = self._instance_model(perf.per_instance_lambda, mu, self.capacity)
            quantile = getattr(station, "response_time_quantile", None)
            if quantile is None:
                raise ConfigurationError(
                    f"{type(station).__name__} does not expose "
                    "response_time_quantile; percentile QoS needs it"
                )
            if quantile(self.response_percentile) > self.qos.max_response_time:
                return False
        return True

    def predicted_utilization(self, perf: NetworkPerformance) -> float:
        """Offered per-instance load capped at 1 (see module docstring)."""
        return min(1.0, perf.rho)

    # ------------------------------------------------------------------
    def decide(
        self,
        arrival_rate: float,
        service_time: float,
        current_instances: int,
    ) -> ProvisioningDecision:
        """Run Algorithm 1 and return the target fleet size.

        Parameters
        ----------
        arrival_rate:
            ``λ`` — the analyzer's predicted request arrival rate.
        service_time:
            ``T_m`` — the monitored average request execution time.
        current_instances:
            The fleet size the search starts from (Algorithm 1 line 1).

        Notes
        -----
        Results are served from the quantized LRU cache when an
        equivalent ``(λ, T_m, m)`` point was decided recently; see the
        class docstring for the quantization and invalidation rules.
        """
        if arrival_rate < 0.0 or not math.isfinite(arrival_rate):
            raise ConfigurationError(
                f"arrival rate must be finite and >= 0, got {arrival_rate!r}"
            )
        if service_time <= 0.0 or not math.isfinite(service_time):
            raise ConfigurationError(
                f"service time must be finite and > 0, got {service_time!r}"
            )
        if self._cache_size == 0:
            decision = self._decide_uncached(arrival_rate, service_time, current_instances)
            if self.tracer is not None or self.audit is not None:
                self._observe(decision, arrival_rate, service_time, current_instances, False)
            return decision
        start = min(max(int(current_instances), self.min_vms), self.max_vms)
        key = self._cache_key(arrival_rate, service_time, start)
        cache = self._cache
        hit = cache.get(key)
        if hit is not None:
            cache.move_to_end(key)
            self.cache_hits += 1
            if self.tracer is not None or self.audit is not None:
                self._observe(hit, arrival_rate, service_time, current_instances, True)
            return hit
        decision = self._decide_uncached(arrival_rate, service_time, current_instances)
        self.cache_misses += 1
        cache[key] = decision
        if len(cache) > self._cache_size:
            cache.popitem(last=False)
        if self.tracer is not None or self.audit is not None:
            self._observe(decision, arrival_rate, service_time, current_instances, False)
        return decision

    def _observe(
        self,
        decision: ProvisioningDecision,
        arrival_rate: float,
        service_time: float,
        current_instances: int,
        cache_hit: bool,
    ) -> None:
        """Report one invocation to the tracer and/or audit log.

        Called only when at least one consumer is attached, so the
        untraced :meth:`decide` path pays a single attribute check.
        """
        t = self.time_fn()
        perf = decision.predicted
        if self.audit is not None:
            from ..obs.audit import DecisionRecord

            self.audit.record(
                DecisionRecord(
                    time=t,
                    arrival_rate=arrival_rate,
                    service_time=service_time,
                    current=int(current_instances),
                    chosen=decision.instances,
                    iterations=decision.iterations,
                    meets_qos=decision.meets_qos,
                    cache_hit=cache_hit,
                    path=tuple(decision.trace),
                    rho=perf.rho,
                    blocking=perf.blocking_probability,
                    response=perf.response_time,
                )
            )
        if self.tracer is not None:
            self.tracer.emit(
                "decision",
                t,
                arrival_rate=arrival_rate,
                service_time=service_time,
                current=int(current_instances),
                chosen=decision.instances,
                iterations=decision.iterations,
                meets_qos=decision.meets_qos,
                cache_hit=cache_hit,
                path=list(decision.trace),
                rho=perf.rho,
                blocking=perf.blocking_probability,
                response=perf.response_time,
            )

    def _decide_uncached(
        self,
        arrival_rate: float,
        service_time: float,
        current_instances: int,
    ) -> ProvisioningDecision:
        """Algorithm 1 proper (no cache in front); inputs pre-validated."""
        net = self._network(service_time)
        if arrival_rate == 0.0:
            # No expected traffic: the floor fleet.  (The paper's search
            # cannot reach its own lower bound because line 18 reverts
            # any bisection that lands on it; short-circuit instead.)
            perf = net.evaluate(0.0, self.min_vms)
            return ProvisioningDecision(
                instances=self.min_vms,
                predicted=perf,
                iterations=0,
                meets_qos=self.meets_qos(perf),
                trace=[self.min_vms],
            )
        lo, hi = self.min_vms, self.max_vms
        m = min(max(int(current_instances), lo), hi)
        trace: List[int] = []
        iterations = 0
        # The search space is [1, MaxVMs]; each iteration either grows m
        # geometrically or halves the bracket, so 4·log2(MaxVMs) + a
        # constant bounds the loop.  The explicit cap is a safety net.
        max_iterations = 8 * (int(math.log2(max(2, self.max_vms))) + 2)
        while True:
            iterations += 1
            oldm = m
            trace.append(m)
            perf = net.evaluate(arrival_rate, m)
            if not self.meets_qos(perf):
                lo = oldm + 1  # documented fix of paper line 11
                m = m + max(1, m // 2)  # line 10 (integer semantics)
                if m > hi:
                    m = hi
                if lo > hi:  # nothing feasible: run at the quota
                    m = hi
                    break
            elif self.predicted_utilization(perf) < self.qos.min_utilization:
                hi = m  # line 16
                m = lo + (hi - lo) // 2  # line 17
                if m <= lo:
                    m = oldm  # lines 18–19
            if m == oldm or iterations >= max_iterations:
                break
        final = net.evaluate(arrival_rate, m)
        return ProvisioningDecision(
            instances=m,
            predicted=final,
            iterations=iterations,
            meets_qos=self.meets_qos(final),
            trace=trace,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PerformanceModeler k={self.capacity} max_vms={self.max_vms} "
            f"rho_max={self.rho_max} tol={self.rejection_tolerance:.4f}>"
        )
