"""Provisioning policies — the paper's Adaptive vs Static-N comparison.

A policy contributes the *control plane* of a deployment:

* :class:`AdaptivePolicy` — the paper's mechanism: workload analyzer →
  load predictor & performance modeler (Algorithm 1) → application
  provisioner.
* :class:`StaticPolicy` — the baseline: a fixed fleet deployed at time
  zero and never changed ("a fixed number of instances is made
  available to execute the same workloads"), with the *same* admission
  control in front.

Policies are deliberately tiny objects; all heavy machinery lives in
:mod:`repro.core` and :mod:`repro.cloud`, so a policy can be described
in a benchmark table by its name alone (``Adaptive``, ``Static-50``…).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Optional

from types import SimpleNamespace

from ..errors import ConfigurationError
from ..prediction.base import ArrivalRatePredictor
from ..prediction.timebased import ModelInformedPredictor, ScientificModePredictor
from ..workloads.scientific import ScientificWorkload
from .analyzer import WorkloadAnalyzer
from .context import SimulationContext
from .controlplane import ControlClock, ControlPlane, RecordingActuator
from .modeler import PerformanceModeler
from .provisioner import ApplicationProvisioner

__all__ = ["ProvisioningPolicy", "StaticPolicy", "AdaptivePolicy", "default_predictor"]


def default_predictor(ctx: SimulationContext) -> ArrivalRatePredictor:
    """The paper's analyzer for the scenario's workload type.

    * :class:`ScientificWorkload` → the §V-B2 mode-based estimator;
    * anything else → the model-informed curve predictor (web's
      time-based scheme).

    Scaled workloads are transparent: both predictors consult the
    scaled model's own rate curve / parameters.
    """
    inner = getattr(ctx.workload, "inner", ctx.workload)
    if isinstance(inner, ScientificWorkload):
        pred = ScientificModePredictor(inner)
        if inner is not ctx.workload:
            # Rescale the mode-based constants to the scaled stream.
            factor = ctx.workload.factor  # type: ignore[attr-defined]
            return _ScaledPredictor(pred, factor)
        return pred
    return ModelInformedPredictor(ctx.workload, mode="max")


class _ScaledPredictor(ArrivalRatePredictor):
    """Divides an inner predictor's rate by the workload scale factor."""

    def __init__(self, inner: ArrivalRatePredictor, factor: float) -> None:
        self.inner = inner
        self.factor = float(factor)
        self.name = f"{inner.name}@1/{factor:g}"

    def predict(self, t0: float, t1: float) -> float:
        return self.inner.predict(t0, t1) / self.factor

    def observe(self, t: float, rate: float) -> None:
        self.inner.observe(t, rate * self.factor)

    def boundaries(self, t0: float, t1: float):
        return self.inner.boundaries(t0, t1)


class ProvisioningPolicy(ABC):
    """Attachable control plane for one deployment."""

    #: Label used in figure tables (``Adaptive``, ``Static-75`` …).
    name: str = "policy"

    @abstractmethod
    def attach(self, ctx: SimulationContext) -> None:
        """Wire the policy into a built simulation context.

        Called after the data plane exists but before the engine runs.
        """


class StaticPolicy(ProvisioningPolicy):
    """Fixed fleet of ``instances`` VMs for the whole run.

    Parameters
    ----------
    instances:
        The constant fleet size (the paper sweeps 50–150 for web and
        15–75 for scientific).
    """

    def __init__(self, instances: int) -> None:
        if instances < 1:
            raise ConfigurationError(f"static fleet size must be >= 1, got {instances}")
        self.instances = int(instances)
        self.name = f"Static-{self.instances}"

    def attach(self, ctx: SimulationContext) -> None:
        reached = ctx.fleet.scale_to(self.instances)
        if reached < self.instances:
            raise ConfigurationError(
                f"{self.name}: data center placed only {reached} of "
                f"{self.instances} instances"
            )


class AdaptivePolicy(ProvisioningPolicy):
    """The paper's adaptive provisioning mechanism.

    Parameters
    ----------
    update_interval:
        Analyzer cadence (seconds).  The default of 900 s together with
        boundary-aligned alerts reproduces the paper's tracking
        behaviour on both scenarios.
    lead_time:
        How early alerts fire (provisioning head start).
    rho_max:
        Modeler's maximum acceptable per-instance offered load
        (DESIGN.md §3 calibration; default 0.85).
    initial_instances:
        Fleet deployed before the time-zero alert (0 = let the first
        alert size it).
    min_instances / max_instances:
        Fleet bounds; ``max_instances=None`` uses the data center's
        placement capacity (``MaxVMs``).
    predictor_factory:
        ``(ctx) -> ArrivalRatePredictor``; defaults to the paper's
        analyzer for the workload type.
    rejection_tolerance:
        Explicit override of the modeler's blocking tolerance.
    deviation_threshold, deviation_safety:
        Enable corrective alerts when the monitored arrival rate
        deviates from the issued estimate (see
        :class:`~repro.core.analyzer.WorkloadAnalyzer`); the scenario
        must enable monitor rate sampling.
    """

    name = "Adaptive"

    def __init__(
        self,
        update_interval: float = 900.0,
        lead_time: float = 60.0,
        rho_max: float = 0.85,
        initial_instances: int = 0,
        min_instances: int = 1,
        max_instances: Optional[int] = None,
        predictor_factory: Callable[[SimulationContext], ArrivalRatePredictor] = default_predictor,
        rejection_tolerance: Optional[float] = None,
        deviation_threshold: Optional[float] = None,
        deviation_safety: float = 1.1,
    ) -> None:
        if update_interval <= 0.0 or not math.isfinite(update_interval):
            raise ConfigurationError(
                f"update interval must be finite and > 0, got {update_interval!r}"
            )
        self.update_interval = float(update_interval)
        self.lead_time = float(lead_time)
        self.rho_max = float(rho_max)
        self.initial_instances = int(initial_instances)
        self.min_instances = int(min_instances)
        self.max_instances = max_instances
        self.predictor_factory = predictor_factory
        self.rejection_tolerance = rejection_tolerance
        self.deviation_threshold = deviation_threshold
        self.deviation_safety = float(deviation_safety)

    def _build_modeler(
        self,
        qos,
        capacity: int,
        max_vms: int,
        tracer=None,
        audit=None,
        time_fn=None,
    ) -> PerformanceModeler:
        """One Algorithm-1 modeler, identically parameterized on every
        backend — the piece that must not drift between DES and fluid."""
        return PerformanceModeler(
            qos=qos,
            capacity=capacity,
            max_vms=max_vms,
            min_vms=self.min_instances,
            rho_max=self.rho_max,
            rejection_tolerance=self.rejection_tolerance,
            tracer=tracer,
            audit=audit,
            time_fn=time_fn,
        )

    def control_plane(
        self,
        workload,
        qos,
        capacity: int,
        max_vms: int,
        tracer=None,
        audit=None,
        registry=None,
    ) -> ControlPlane:
        """A self-driving :class:`~repro.core.controlplane.ControlPlane`
        for analytical backends (no engine, monitor, or fleet).

        The actuator is a :class:`RecordingActuator`, the service time
        is the workload's analytic mean (what the DES monitor's EWMA
        converges to), and the predictor comes from the policy's own
        ``predictor_factory`` — so the fluid backend executes the same
        cadence/decision code as the DES, not a re-implementation.
        """
        if self.deviation_threshold is not None:
            raise ConfigurationError(
                "deviation watching needs the DES monitor; "
                "it is not available on analytical backends"
            )
        if self.max_instances is not None:
            max_vms = self.max_instances
        clock = ControlClock()
        observed = tracer is not None or audit is not None
        modeler = self._build_modeler(
            qos,
            capacity,
            max_vms,
            tracer=tracer,
            audit=audit,
            time_fn=clock if observed else None,
        )
        predictor = self.predictor_factory(SimpleNamespace(workload=workload))
        return ControlPlane(
            modeler=modeler,
            actuator=RecordingActuator(0, max_instances=max_vms),
            service_time_fn=lambda st=workload.mean_service_time: st,
            predictor=predictor,
            update_interval=self.update_interval,
            lead_time=self.lead_time,
            initial_instances=self.initial_instances,
            tracer=tracer,
            clock=clock,
            registry=registry,
        )

    def attach(self, ctx: SimulationContext) -> None:
        max_vms = self.max_instances
        if max_vms is None:
            max_vms = ctx.datacenter.max_vms(ctx.fleet.vm_spec)
        observed = ctx.tracer is not None or ctx.audit is not None
        modeler = self._build_modeler(
            ctx.qos,
            ctx.capacity,
            max_vms,
            tracer=ctx.tracer,
            audit=ctx.audit,
            time_fn=(lambda e=ctx.engine: e.now) if observed else None,
        )
        provisioner = ApplicationProvisioner(
            engine=ctx.engine,
            fleet=ctx.fleet,
            modeler=modeler,
            monitor=ctx.monitor,
            initial_instances=self.initial_instances,
            tracer=ctx.tracer,
            registry=ctx.registry,
        )
        predictor = self.predictor_factory(ctx)
        analyzer = WorkloadAnalyzer(
            engine=ctx.engine,
            predictor=predictor,
            on_estimate=provisioner.on_estimate,
            horizon=ctx.horizon,
            update_interval=self.update_interval,
            lead_time=self.lead_time,
            monitor=ctx.monitor,
            deviation_threshold=self.deviation_threshold,
            deviation_safety=self.deviation_safety,
            tracer=ctx.tracer,
        )
        provisioner.start()
        analyzer.start()
        ctx.provisioner = provisioner
        ctx.analyzer = analyzer
