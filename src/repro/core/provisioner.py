"""Application provisioner — the DES adapter of the control plane.

"VM and application provisioning is performed by the application
provisioner component based on the estimated number of application
instances calculated by the load predictor and performance modeler"
(paper §IV-C).  :class:`ApplicationProvisioner` is the event-driven
face of the backend-agnostic :class:`~repro.core.controlplane.ControlPlane`:
it binds the plane to the simulation engine's clock, the real
:class:`~repro.cloud.fleet.ApplicationFleet` (which implements the
idle-first / graceful-drain actuation mechanics behind the
:class:`~repro.core.controlplane.FleetActuator` protocol), and the
monitor's mean-service-time estimate, then forwards each analyzer
estimate into the shared decide-and-actuate step.
"""

from __future__ import annotations

from typing import List, Optional

from ..cloud.fleet import ApplicationFleet
from ..cloud.monitor import Monitor
from ..core.modeler import PerformanceModeler
from ..sim.engine import Engine
from .controlplane import ControlPlane, ScalingAction

__all__ = ["ScalingAction", "ApplicationProvisioner"]


class ApplicationProvisioner:
    """Scales the fleet on every analyzer estimate (DES backend).

    Parameters
    ----------
    engine:
        Simulation engine (the control plane's time source).
    fleet:
        The actuation target (a real :class:`FleetActuator`).
    modeler:
        Algorithm-1 implementation.
    monitor:
        Source of the monitored mean service time ``T_m``.
    initial_instances:
        Fleet size deployed before the first request arrives.  The
        default of 0 lets the analyzer's time-zero alert size the
        initial fleet, so the run's minimum-instances metric reflects
        steady off-peak operation rather than a cold-start artifact.
    tracer:
        Optional :class:`repro.obs.bus.TraceBus`; each actuation then
        emits a ``scaling.actuated`` event (before/target/after), the
        companion of the modeler's ``decision`` event.
    registry:
        Optional :class:`repro.obs.metrics.MetricsRegistry`, forwarded
        to the control plane (decision counter, fleet gauges).
    """

    def __init__(
        self,
        engine: Engine,
        fleet: ApplicationFleet,
        modeler: PerformanceModeler,
        monitor: Monitor,
        initial_instances: int = 0,
        tracer: Optional[object] = None,
        registry: Optional[object] = None,
    ) -> None:
        self._engine = engine
        self.control = ControlPlane(
            modeler=modeler,
            actuator=fleet,
            service_time_fn=monitor.mean_service_time,
            initial_instances=initial_instances,
            tracer=tracer,
            clock=_EngineClock(engine),
            registry=registry,
        )
        self.initial_instances = self.control.initial_instances

    @property
    def modeler(self) -> PerformanceModeler:
        """The Algorithm-1 modeler (exposes decision-cache counters)."""
        return self.control.modeler

    @property
    def actions(self) -> List[ScalingAction]:
        """Actuation log in time order (owned by the control plane)."""
        return self.control.actions

    def start(self) -> None:
        """Deploy the initial fleet (call before the run starts).

        With ``initial_instances == 0`` this is a no-op and the first
        analyzer alert (scheduled at time zero, before any arrival)
        performs the initial sizing.
        """
        self.control.start()

    def on_estimate(self, predicted_rate: float) -> None:
        """Analyzer callback: run Algorithm 1 and actuate the result."""
        self.control.on_estimate(self._engine.now, predicted_rate)


class _EngineClock:
    """A :class:`ControlClock` stand-in slaved to the simulation engine.

    Writes from the control plane are discarded — the engine is the
    single source of truth for DES time.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: Engine) -> None:
        self._engine = engine

    @property
    def now(self) -> float:
        return self._engine.now

    @now.setter
    def now(self, value: float) -> None:
        pass

    def __call__(self) -> float:
        return self._engine.now
