"""Application provisioner — the decision-to-actuation bridge.

"VM and application provisioning is performed by the application
provisioner component based on the estimated number of application
instances calculated by the load predictor and performance modeler"
(paper §IV-C).  :class:`ApplicationProvisioner` receives each analyzer
estimate, obtains the monitored mean service time ``T_m``, runs the
performance modeler (Algorithm 1), and instructs the fleet to scale —
the fleet implements the idle-first / graceful-drain mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cloud.fleet import ApplicationFleet
from ..cloud.monitor import Monitor
from ..errors import ConfigurationError
from ..sim.engine import Engine
from .modeler import PerformanceModeler, ProvisioningDecision

__all__ = ["ScalingAction", "ApplicationProvisioner"]


@dataclass(frozen=True)
class ScalingAction:
    """One provisioning actuation, kept for diagnostics and figures.

    Attributes
    ----------
    time:
        When the decision was actuated.
    predicted_rate:
        The analyzer's ``λ`` estimate that triggered it.
    service_time:
        The monitored ``T_m`` used.
    before, target, after:
        Serving fleet size before the action, the modeler's target, and
        the size actually reached (placement limits may cap growth).
    decision:
        The full Algorithm-1 outcome.
    """

    time: float
    predicted_rate: float
    service_time: float
    before: int
    target: int
    after: int
    decision: ProvisioningDecision


class ApplicationProvisioner:
    """Scales the fleet on every analyzer estimate.

    Parameters
    ----------
    engine:
        Simulation engine (for timestamps).
    fleet:
        The actuation target.
    modeler:
        Algorithm-1 implementation.
    monitor:
        Source of the monitored mean service time ``T_m``.
    initial_instances:
        Fleet size deployed before the first request arrives.  The
        default of 0 lets the analyzer's time-zero alert size the
        initial fleet, so the run's minimum-instances metric reflects
        steady off-peak operation rather than a cold-start artifact.
    tracer:
        Optional :class:`repro.obs.bus.TraceBus`; each actuation then
        emits a ``scaling.actuated`` event (before/target/after), the
        companion of the modeler's ``decision`` event.
    """

    def __init__(
        self,
        engine: Engine,
        fleet: ApplicationFleet,
        modeler: PerformanceModeler,
        monitor: Monitor,
        initial_instances: int = 0,
        tracer: Optional[object] = None,
    ) -> None:
        if initial_instances < 0:
            raise ConfigurationError(
                f"initial fleet size must be >= 0, got {initial_instances}"
            )
        self._engine = engine
        self._fleet = fleet
        self._modeler = modeler
        self._monitor = monitor
        self.initial_instances = int(initial_instances)
        self._tracer = tracer
        #: Actuation log in time order.
        self.actions: List[ScalingAction] = []

    @property
    def modeler(self) -> PerformanceModeler:
        """The Algorithm-1 modeler (exposes decision-cache counters)."""
        return self._modeler

    def start(self) -> None:
        """Deploy the initial fleet (call before the run starts).

        With ``initial_instances == 0`` this is a no-op and the first
        analyzer alert (scheduled at time zero, before any arrival)
        performs the initial sizing.
        """
        if self.initial_instances > 0:
            self._fleet.scale_to(self.initial_instances)

    def on_estimate(self, predicted_rate: float) -> None:
        """Analyzer callback: run Algorithm 1 and actuate the result."""
        tm = self._monitor.mean_service_time()
        before = self._fleet.serving_count
        decision = self._modeler.decide(predicted_rate, tm, max(1, before))
        after = self._fleet.scale_to(decision.instances)
        if self._tracer is not None:
            self._tracer.emit(
                "scaling.actuated",
                self._engine.now,
                predicted_rate=predicted_rate,
                before=before,
                target=decision.instances,
                after=after,
                service_time=tm,
            )
        self.actions.append(
            ScalingAction(
                time=self._engine.now,
                predicted_rate=predicted_rate,
                service_time=tm,
                before=before,
                target=decision.instances,
                after=after,
                decision=decision,
            )
        )
