"""QoS targets and the Eq. 1 queue-capacity rule.

The paper's QoS contract has two end-user-visible targets — the
negotiated maximum response time ``Ts`` and the maximum request
rejection rate ``Rej(Gs)`` — plus one provider-side efficiency target,
the minimum resource-utilization threshold (80 % in both evaluation
scenarios).

Eq. 1 couples the targets to the admission controller:
``k = ⌊Ts / Tr⌋`` — with at most ``k`` requests per instance, every
*accepted* request is expected to finish within ``Ts``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["QoSTarget"]


@dataclass(frozen=True)
class QoSTarget:
    """The negotiated QoS contract of one application.

    Attributes
    ----------
    max_response_time:
        ``Ts`` — negotiated maximum response time of a request (s).
    max_rejection_rate:
        ``Rej(Gs)`` target — maximum acceptable fraction of rejected
        requests (the paper's scenarios use 0.0: "the system is
        required to serve all requests").
    min_utilization:
        Provider-side minimum resource-utilization threshold (paper:
        0.80); Algorithm 1 shrinks the fleet when predicted utilization
        falls below it.
    """

    max_response_time: float
    max_rejection_rate: float = 0.0
    min_utilization: float = 0.80

    def __post_init__(self) -> None:
        if not (self.max_response_time > 0.0 and math.isfinite(self.max_response_time)):
            raise ConfigurationError(
                f"Ts must be finite and > 0, got {self.max_response_time!r}"
            )
        if not 0.0 <= self.max_rejection_rate <= 1.0:
            raise ConfigurationError(
                f"rejection target must be in [0, 1], got {self.max_rejection_rate!r}"
            )
        if not 0.0 <= self.min_utilization < 1.0:
            raise ConfigurationError(
                f"minimum utilization must be in [0, 1), got {self.min_utilization!r}"
            )

    def queue_capacity(self, service_time: float) -> int:
        """Eq. 1: ``k = ⌊Ts / Tr⌋`` given the request execution time.

        Raises
        ------
        ConfigurationError
            If ``service_time`` is non-positive or exceeds ``Ts`` (then
            even an empty instance cannot meet the deadline and no
            admission threshold exists).

        Examples
        --------
        >>> QoSTarget(max_response_time=0.250).queue_capacity(0.100)
        2
        >>> QoSTarget(max_response_time=700.0).queue_capacity(300.0)
        2
        """
        if service_time <= 0.0 or not math.isfinite(service_time):
            raise ConfigurationError(
                f"service time must be finite and > 0, got {service_time!r}"
            )
        k = int(self.max_response_time // service_time)
        if k < 1:
            raise ConfigurationError(
                f"Ts={self.max_response_time}s is smaller than one service time "
                f"({service_time}s); no queue capacity can satisfy the deadline"
            )
        return k

    def scaled(self, factor: float) -> "QoSTarget":
        """QoS contract matching a rate/service rescaled workload.

        ``Ts`` scales with service times (DESIGN.md §4); the rejection
        and utilization targets are dimensionless and unchanged.
        """
        if factor <= 0.0 or not math.isfinite(factor):
            raise ConfigurationError(f"scale factor must be finite and > 0, got {factor!r}")
        return QoSTarget(
            max_response_time=self.max_response_time * factor,
            max_rejection_rate=self.max_rejection_rate,
            min_utilization=self.min_utilization,
        )
