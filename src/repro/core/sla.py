"""SLA economics — the paper's final future-work item (§VII).

"For the latter scenario, we will also address the problem of SLA
management for trade-offs of QoS between different requests,
potentially with different priorities and incentives, in order to
effectively manage QoS violations."

This module adds the *incentive* layer on top of the priority
extension:

* :class:`SLAContract` — the economics of one request class: revenue
  earned per served request, penalty per rejection, penalty per late
  (QoS-violating) response.
* :class:`SLAPortfolio` — a set of contracts with the derived *value
  ranking*: a class's marginal value of one served request is
  ``revenue + rejection_penalty`` (serving it both earns and avoids
  paying).
* :class:`SLAAwareAdmission` — trunk reservation whose per-class
  barriers follow the value ranking: the most valuable class sees no
  barrier, each next class must leave ``reservation_step`` more slots
  free.  Under contention, capacity automatically flows to the
  contracts where it is worth most; under light load every class is
  served (barriers only bind when slots run out).
* :meth:`SLAAwareAdmission.profit` — the realized income of the run,
  the quantity the SLA-management benchmark maximizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..cloud.fleet import ApplicationFleet
from ..cloud.monitor import Monitor
from ..cloud.priority import PriorityClassStats
from ..errors import ConfigurationError

__all__ = ["SLAContract", "SLAPortfolio", "SLAAwareAdmission"]


@dataclass(frozen=True)
class SLAContract:
    """Economic terms of one request class.

    Attributes
    ----------
    name:
        Class key carried by requests.
    revenue_per_request:
        Income per successfully served request.
    rejection_penalty:
        Cost per rejected request (SLA credit, churn, bad press).
    violation_penalty:
        Cost per served-but-late request.  With Eq.-1 admission this is
        structurally zero, but contracts carry it so relaxed admission
        schemes can be evaluated too.
    """

    name: str
    revenue_per_request: float
    rejection_penalty: float = 0.0
    violation_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.revenue_per_request < 0.0:
            raise ConfigurationError(
                f"contract {self.name!r}: revenue must be >= 0"
            )
        if self.rejection_penalty < 0.0 or self.violation_penalty < 0.0:
            raise ConfigurationError(
                f"contract {self.name!r}: penalties must be >= 0"
            )

    @property
    def marginal_value(self) -> float:
        """Value of serving one request: revenue plus avoided penalty."""
        return self.revenue_per_request + self.rejection_penalty


class SLAPortfolio:
    """An application's set of SLA contracts, ranked by value."""

    def __init__(self, contracts: Sequence[SLAContract]) -> None:
        if not contracts:
            raise ConfigurationError("a portfolio needs at least one contract")
        names = [c.name for c in contracts]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate contract names: {names}")
        self.contracts: Dict[str, SLAContract] = {c.name: c for c in contracts}
        #: Contract names from most to least valuable.
        self.ranking: List[str] = [
            c.name
            for c in sorted(
                contracts, key=lambda c: (-c.marginal_value, c.name)
            )
        ]

    def rank(self, name: str) -> int:
        """0 = most valuable.  KeyError-free: unknown classes rank last."""
        try:
            return self.ranking.index(name)
        except ValueError:
            return len(self.ranking)

    def __getitem__(self, name: str) -> SLAContract:
        return self.contracts[name]


class SLAAwareAdmission:
    """Value-ranked trunk reservation over the fleet's bounded queues.

    Parameters
    ----------
    fleet, monitor:
        The dispatch target and the run-level metric sink.
    portfolio:
        The SLA contracts.
    reservation_step:
        Extra free slots each lower-ranked class must leave untouched.
        0 disables differentiation (flat admission).
    """

    def __init__(
        self,
        fleet: ApplicationFleet,
        monitor: Monitor,
        portfolio: SLAPortfolio,
        reservation_step: int = 0,
    ) -> None:
        if reservation_step < 0:
            raise ConfigurationError(
                f"reservation step must be >= 0, got {reservation_step}"
            )
        self._fleet = fleet
        self._monitor = monitor
        self.portfolio = portfolio
        self.reservation_step = int(reservation_step)
        self.per_class: Dict[str, PriorityClassStats] = {
            name: PriorityClassStats() for name in portfolio.ranking
        }

    def free_slots(self) -> int:
        """Unoccupied request slots across the ACTIVE fleet."""
        return sum(
            inst.capacity - inst.occupancy for inst in self._fleet.active_instances
        )

    def barrier(self, klass: str) -> int:
        """Free slots a class must leave untouched (0 = top class)."""
        return self.portfolio.rank(klass) * self.reservation_step

    def submit(self, arrival_time: float, klass: str) -> bool:
        """Admit or reject one request of contract class ``klass``."""
        stats = self.per_class.setdefault(klass, PriorityClassStats())
        barrier = self.barrier(klass)
        if barrier > 0 and self.free_slots() <= barrier:
            stats.rejected += 1
            self._monitor.record_rejection()
            return False
        if self._fleet.dispatch(arrival_time):
            stats.accepted += 1
            self._monitor.record_acceptance()
            return True
        stats.rejected += 1
        self._monitor.record_rejection()
        return False

    def profit(self) -> float:
        """Realized income: Σ served·revenue − rejected·penalty.

        Violation penalties would be added from per-class violation
        counts; with Eq.-1 admission they are structurally zero.
        """
        total = 0.0
        for name, stats in self.per_class.items():
            if name not in self.portfolio.contracts:
                continue
            contract = self.portfolio[name]
            total += stats.accepted * contract.revenue_per_request
            total -= stats.rejected * contract.rejection_penalty
        return total
