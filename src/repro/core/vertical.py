"""Vertical-scaling baseline — the paper's §VI comparator.

Zhu & Agrawal (HPDC'10) "considers reconfiguration of available virtual
instances (increase or decrease their capacity) and not
increasing/decreasing number of instances"; the paper also lists
per-VM capacity changes as its own future work (§VII).
:class:`VerticalScalingPolicy` implements that alternative inside the
same analyzer/QoS framework so the two actuation styles can be compared
like-for-like:

* the fleet size ``n`` is *fixed*;
* on every analyzer estimate the controller picks the smallest integer
  per-instance core count ``s`` such that the per-core offered load
  ``λ·T̂m / (n·s)`` stays below ``rho_max`` (``T̂m`` is the monitored
  service time corrected back to single-core speed), clamped to the
  host's physical ceiling;
* every instance is resized to ``s`` cores (linear speedup).

The cost unit becomes **core-hours** (``RunResult.core_hours``), which
equals VM-hours for the paper's one-core horizontal policies — so the
``bench_baseline_vertical`` benchmark can compare the two directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List

from ..cloud.fleet import ApplicationFleet
from ..cloud.monitor import Monitor
from ..errors import ConfigurationError
from ..prediction.base import ArrivalRatePredictor
from ..sim.engine import Engine
from .analyzer import WorkloadAnalyzer
from .context import SimulationContext
from .policies import ProvisioningPolicy, default_predictor

__all__ = ["VerticalScalingAction", "VerticalProvisioner", "VerticalScalingPolicy"]


@dataclass(frozen=True)
class VerticalScalingAction:
    """One vertical actuation, for diagnostics.

    Attributes
    ----------
    time, predicted_rate:
        When and on which estimate the resize happened.
    speed:
        The per-instance core count chosen.
    resized:
        How many instances the data center actually resized.
    """

    time: float
    predicted_rate: float
    speed: int
    resized: int


class VerticalProvisioner:
    """Resizes a fixed fleet's cores on every analyzer estimate."""

    def __init__(
        self,
        engine: Engine,
        fleet: ApplicationFleet,
        monitor: Monitor,
        instances: int,
        max_speed: int = 8,
        rho_max: float = 0.85,
    ) -> None:
        if instances < 1:
            raise ConfigurationError(f"fleet size must be >= 1, got {instances}")
        if max_speed < 1:
            raise ConfigurationError(f"max speed must be >= 1, got {max_speed}")
        if not 0.0 < rho_max < 1.0:
            raise ConfigurationError(f"rho_max must be in (0, 1), got {rho_max!r}")
        self._engine = engine
        self._fleet = fleet
        self._monitor = monitor
        self.instances = int(instances)
        self.max_speed = int(max_speed)
        self.rho_max = float(rho_max)
        self.actions: List[VerticalScalingAction] = []
        self._current_speed = 1

    def start(self) -> None:
        """Deploy the fixed fleet at single-core speed."""
        reached = self._fleet.scale_to(self.instances)
        if reached < self.instances:
            raise ConfigurationError(
                f"data center placed only {reached} of {self.instances} instances"
            )

    def target_speed(self, predicted_rate: float) -> int:
        """Smallest integer cores/instance keeping ρ ≤ rho_max."""
        observed_tm = self._monitor.mean_service_time()
        # The monitor observes sped-up services; undo the current speed
        # to recover the single-core service time the sizing law needs.
        tm_base = observed_tm * self._current_speed
        if predicted_rate <= 0.0:
            return 1
        needed = predicted_rate * tm_base / (self.rho_max * self.instances)
        return max(1, min(self.max_speed, int(math.ceil(needed))))

    def on_estimate(self, predicted_rate: float) -> None:
        """Analyzer callback — resize the whole fleet."""
        speed = self.target_speed(predicted_rate)
        resized = 0
        for inst in self._fleet.active_instances:
            if self._fleet.set_speed(inst, speed):
                resized += 1
        self._current_speed = speed
        self.actions.append(
            VerticalScalingAction(
                time=self._engine.now,
                predicted_rate=predicted_rate,
                speed=speed,
                resized=resized,
            )
        )


class VerticalScalingPolicy(ProvisioningPolicy):
    """Fixed fleet, adaptive per-VM capacity.

    Parameters
    ----------
    instances:
        The fixed fleet size ``n``.
    max_speed:
        Core ceiling per instance (paper hosts: 8).
    rho_max:
        Target per-core load band upper edge.
    update_interval, lead_time:
        Analyzer cadence, as for :class:`AdaptivePolicy`.
    predictor_factory:
        Arrival-rate predictor, as for :class:`AdaptivePolicy`.
    """

    def __init__(
        self,
        instances: int,
        max_speed: int = 8,
        rho_max: float = 0.85,
        update_interval: float = 900.0,
        lead_time: float = 60.0,
        predictor_factory: Callable[[SimulationContext], ArrivalRatePredictor] = default_predictor,
    ) -> None:
        self.instances = int(instances)
        self.max_speed = int(max_speed)
        self.rho_max = float(rho_max)
        self.update_interval = float(update_interval)
        self.lead_time = float(lead_time)
        self.predictor_factory = predictor_factory
        self.name = f"Vertical-{self.instances}"

    def attach(self, ctx: SimulationContext) -> None:
        provisioner = VerticalProvisioner(
            engine=ctx.engine,
            fleet=ctx.fleet,
            monitor=ctx.monitor,
            instances=self.instances,
            max_speed=self.max_speed,
            rho_max=self.rho_max,
        )
        analyzer = WorkloadAnalyzer(
            engine=ctx.engine,
            predictor=self.predictor_factory(ctx),
            on_estimate=provisioner.on_estimate,
            horizon=ctx.horizon,
            update_interval=self.update_interval,
            lead_time=self.lead_time,
            monitor=ctx.monitor,
        )
        provisioner.start()
        analyzer.start()
        ctx.provisioner = provisioner
        ctx.analyzer = analyzer
