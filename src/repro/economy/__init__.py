"""Economics subsystem — pricing, profit accounting, and profit-aware policies.

The paper answers "how many VMs keep QoS?"; this package answers "what
does that fleet *earn*?".  It layers strictly between the execution
substrates (``repro.cloud`` / ``repro.sim`` / ``repro.core``) and the
backends: backends and campaigns import it, it never imports them.

* :class:`PricingModel` — the economic contract (per-request revenue,
  on-demand and spot core-hour costs, SLA penalties), configurable from
  scenario and campaign TOML.
* :class:`ProfitLedger` / :class:`EconomyTotals` — deterministic,
  merge-associative per-interval and end-of-run profit accounting over
  counters the simulation already keeps.
* :class:`ProfitPolicy` / :class:`SpotPolicy` — profit-maximizing
  ``m*`` search and the on-demand/spot split, both as
  :class:`~repro.core.policies.AdaptivePolicy` subclasses so all three
  backends execute them through the shared control plane.
* :class:`RevocationInjector` — deterministic spot reclamation built on
  :class:`~repro.cloud.failures.FailureInjector`.

See ``docs/economy.md`` for the model, the ``m*`` derivation sketch,
and the TOML reference.
"""

from .ledger import EconomyTotals, IntervalRecord, ProfitLedger, publish_totals
from .policies import ProfitModeler, ProfitPolicy, SpotPolicy
from .pricing import PricingModel
from .revocation import RevocationInjector

__all__ = [
    "EconomyTotals",
    "IntervalRecord",
    "PricingModel",
    "ProfitLedger",
    "ProfitModeler",
    "ProfitPolicy",
    "RevocationInjector",
    "SpotPolicy",
    "publish_totals",
]
