"""Profit ledger — deterministic per-interval and end-of-run accounting.

The ledger folds counters the simulation already keeps (completions,
rejections, QoS violations from :class:`~repro.metrics.collector.
MetricsCollector`; core-hours from the datacenter) into an economic
trajectory: one immutable :class:`IntervalRecord` per accounting
interval, and exact end-of-run totals.

Determinism and mergeability are the load-bearing properties, mirroring
the Chan-merge contract of the metrics registry:

* records are plain tuples of the interval's *deltas*, so a record is
  independent of every other record;
* totals are computed with :func:`math.fsum` over the record set, so
  they are the correctly-rounded true sums — **exactly** invariant
  under record order;
* :meth:`ProfitLedger.merge` is multiset union plus a canonical sort,
  which makes merge associative, commutative, and idempotent-free in
  the same sense as concatenation (property-tested in
  ``tests/test_economy.py``).

On the DES backends the ledger installs a low-priority periodic engine
tick (same cadence discipline as
:class:`~repro.obs.metrics.RunTelemetry`); the fluid backend skips
interval sampling and bills straight from its aggregates via
:meth:`EconomyTotals.from_aggregates`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

from .pricing import PricingModel

__all__ = ["EconomyTotals", "IntervalRecord", "ProfitLedger", "publish_totals"]


def publish_totals(
    totals: "EconomyTotals",
    now: float,
    violating_intervals: int = 0,
    tracer=None,
    registry=None,
) -> None:
    """Publish end-of-run billing to the obs plane.

    The single home of the literal ``economy.*`` metric names and the
    ``economy.summary`` emit — used by :meth:`ProfitLedger.finalize`
    (DES backends) and directly by the fluid backend, which bills from
    aggregates without a ledger.
    """
    if registry is not None:
        registry.gauge("economy.revenue").set(totals.revenue)
        registry.gauge("economy.cost").set(totals.cost)
        registry.gauge("economy.penalty").set(totals.penalty)
        registry.gauge("economy.profit").set(totals.profit)
        registry.gauge("economy.spot_vm_hours").set(totals.spot_vm_hours)
        registry.counter("economy.revocations").set_total(totals.revocations)
    if tracer is not None:
        tracer.emit(
            "economy.summary",
            now,
            revenue=totals.revenue,
            cost=totals.cost,
            penalty=totals.penalty,
            profit=totals.profit,
            spot_vm_hours=totals.spot_vm_hours,
            revocations=totals.revocations,
            violating_intervals=int(violating_intervals),
        )


class IntervalRecord(NamedTuple):
    """Deltas of one accounting interval ``[start, start + duration)``."""

    start: float
    duration: float
    completed: int
    rejected: int
    violations: int
    core_seconds: float
    spot_core_seconds: float


@dataclass(frozen=True)
class EconomyTotals:
    """End-of-run economic summary (all in the pricing model's units)."""

    revenue: float = 0.0
    cost: float = 0.0
    penalty: float = 0.0
    spot_vm_hours: float = 0.0
    revocations: int = 0

    @property
    def profit(self) -> float:
        return self.revenue - self.cost - self.penalty

    @classmethod
    def from_aggregates(
        cls,
        pricing: PricingModel,
        completed: float,
        core_hours: float,
        vm_hours: float,
        spot_fraction: float = 0.0,
        violating_intervals: int = 0,
        revocations: int = 0,
    ) -> "EconomyTotals":
        """Bill a run straight from its aggregate counters.

        The spot-split billing model charges a constant ``spot_fraction``
        of all capacity-hours at the discounted rate — the declared
        on-demand/spot split of the fleet, not a per-VM tag.
        """
        spot_core_hours = spot_fraction * float(core_hours)
        return cls(
            revenue=pricing.revenue(completed),
            cost=pricing.capacity_cost(core_hours, spot_core_hours),
            penalty=pricing.sla_penalty * int(violating_intervals),
            spot_vm_hours=spot_fraction * float(vm_hours),
            revocations=int(revocations),
        )


class ProfitLedger:
    """Interval-sampled profit accounting for one (or a merge of) runs.

    Parameters
    ----------
    pricing:
        The economic contract to bill against.
    interval:
        Accounting-interval length in seconds (DES sampling cadence).
    cores_per_vm:
        Cores billed per fleet instance (VM-seconds → core-seconds).
    spot_fraction:
        Declared fraction of capacity billed at the spot rate.
    collector:
        The run's :class:`~repro.metrics.collector.MetricsCollector`
        (read-only; the ledger samples its cumulative counters).
    vm_hours_fn:
        ``now -> cumulative VM-hours`` (the datacenter ledger).
    tracer / registry:
        Optional obs wiring: ``economy.interval`` / ``economy.summary``
        trace events and the ``economy.*`` gauges/counters.
    """

    def __init__(
        self,
        pricing: PricingModel,
        interval: float,
        cores_per_vm: float = 1.0,
        spot_fraction: float = 0.0,
        collector=None,
        vm_hours_fn: Optional[Callable[[float], float]] = None,
        tracer=None,
        registry=None,
        records: Sequence[IntervalRecord] = (),
    ) -> None:
        if not interval > 0.0:
            from ..errors import ConfigurationError

            raise ConfigurationError(
                f"ledger interval must be > 0 seconds, got {interval!r}"
            )
        self.pricing = pricing
        self.interval = float(interval)
        self.cores_per_vm = float(cores_per_vm)
        self.spot_fraction = float(spot_fraction)
        self._collector = collector
        self._vm_hours_fn = vm_hours_fn
        self._tracer = tracer
        self._registry = registry
        self.records: List[IntervalRecord] = sorted(records)
        # Cumulative state at the last sample (delta baseline).
        self._last_t = 0.0
        self._last = (0, 0, 0, 0.0)  # completed, rejected, violations, vm_hours

    # ------------------------------------------------------------------
    # DES sampling
    # ------------------------------------------------------------------
    def install(self, engine) -> None:
        """Schedule the periodic accounting tick on the engine."""
        from ..sim.events import PRIORITY_LOW

        def _tick() -> None:
            self.sample(engine.now)
            engine.schedule(self.interval, _tick, PRIORITY_LOW)

        engine.schedule(self.interval, _tick, PRIORITY_LOW)

    def sample(self, now: float) -> Optional[IntervalRecord]:
        """Close the accounting interval ending at ``now``.

        Reads the cumulative counters, converts them to deltas against
        the previous sample, and appends one record.  Zero-length
        intervals (finalize landing exactly on a tick) are skipped.
        """
        duration = now - self._last_t
        if duration <= 0.0:
            return None
        completed = int(self._collector.completed) if self._collector else 0
        rejected = int(self._collector.rejected) if self._collector else 0
        violations = int(self._collector.violations) if self._collector else 0
        vm_hours = float(self._vm_hours_fn(now)) if self._vm_hours_fn else 0.0
        last_c, last_r, last_v, last_h = self._last
        core_seconds = (vm_hours - last_h) * 3600.0 * self.cores_per_vm
        record = IntervalRecord(
            start=self._last_t,
            duration=duration,
            completed=completed - last_c,
            rejected=rejected - last_r,
            violations=violations - last_v,
            core_seconds=core_seconds,
            spot_core_seconds=self.spot_fraction * core_seconds,
        )
        self.records.append(record)
        self._last_t = now
        self._last = (completed, rejected, violations, vm_hours)
        if self._tracer is not None:
            self._tracer.emit(
                "economy.interval",
                now,
                duration=record.duration,
                completed=record.completed,
                rejected=record.rejected,
                violations=record.violations,
                core_seconds=record.core_seconds,
                spot_core_seconds=record.spot_core_seconds,
                violating=self.pricing.interval_violates(
                    record.completed, record.violations
                ),
            )
        return record

    # ------------------------------------------------------------------
    # Totals / merge
    # ------------------------------------------------------------------
    @property
    def violating_intervals(self) -> int:
        return sum(
            1
            for r in self.records
            if self.pricing.interval_violates(r.completed, r.violations)
        )

    def totals(self, revocations: int = 0) -> EconomyTotals:
        """Exact (fsum, order-invariant) totals over the record set."""
        core_hours = math.fsum(r.core_seconds for r in self.records) / 3600.0
        spot_core_hours = math.fsum(r.spot_core_seconds for r in self.records) / 3600.0
        completed = sum(r.completed for r in self.records)
        vm_hours = core_hours / self.cores_per_vm if self.cores_per_vm else 0.0
        return EconomyTotals(
            revenue=self.pricing.revenue(completed),
            cost=self.pricing.capacity_cost(core_hours, spot_core_hours),
            penalty=self.pricing.sla_penalty * self.violating_intervals,
            spot_vm_hours=self.spot_fraction * vm_hours,
            revocations=int(revocations),
        )

    def merge(self, other: "ProfitLedger") -> "ProfitLedger":
        """Combine two ledgers' record sets (associative, order-invariant).

        The merged record list is the sorted multiset union, and totals
        are fsum-exact over it, so ``(a ∪ b) ∪ c == a ∪ (b ∪ c)`` holds
        bit-for-bit — the same contract the registry's Chan merge keeps
        for Welford moments.
        """
        return ProfitLedger(
            pricing=self.pricing,
            interval=self.interval,
            cores_per_vm=self.cores_per_vm,
            spot_fraction=self.spot_fraction,
            records=list(self.records) + list(other.records),
        )

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------
    def finalize(self, now: float, revocations: int = 0) -> EconomyTotals:
        """Close the tail interval, publish obs state, return totals."""
        self.sample(now)
        totals = self.totals(revocations=revocations)
        publish_totals(
            totals,
            now,
            violating_intervals=self.violating_intervals,
            tracer=self._tracer,
            registry=self._registry,
        )
        return totals
