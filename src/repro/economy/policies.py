"""Profit-aware provisioning policies.

Two policies beside the paper's adaptive-QoS mechanism, both built by
*subclassing* :class:`~repro.core.policies.AdaptivePolicy` so every
piece of shared machinery — analyzer cadence, predictor, decision
cache, control-plane extraction, fluid execution — is inherited rather
than re-implemented:

* :class:`ProfitPolicy` swaps Algorithm 1 for a profit-maximizing
  ``m*`` search (:class:`ProfitModeler`): pick the fleet size that
  maximizes ``r·λ·(1 − B(m)) − c·cores·m / 3600`` where ``B(m)`` is
  the closed-form blocking probability of the m-parallel M/M/1/K
  network.  This is the Mazzucco et al. revenue/cost tradeoff expressed
  through the repo's existing Erlang library.
* :class:`SpotPolicy` keeps Algorithm 1's sizing but declares a
  fraction of the fleet as cheap-but-revocable spot capacity: the
  ledger bills that fraction at the discounted rate, and a
  :class:`~repro.economy.revocation.RevocationInjector` reclaims
  instances at seeded exponential intervals (EC2-fleet-style
  on-demand/spot split).

The ``m*`` search exploits that the marginal profit of one more
instance, ``Δ(m) = profit(m+1) − profit(m)``, is decreasing in ``m``
(blocking is convex-decreasing): the optimum is the first ``m`` with
``Δ(m) ≤ 0``.  Warm-started from the current fleet size with a
two-sided galloping bracket plus bisection, a steady-state decision
costs ~3 network evaluations — the same order as a converged
Algorithm-1 pass, which is what keeps the ``profit_policy_overhead``
bench gate under 1.10x.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.modeler import PerformanceModeler, ProvisioningDecision
from ..core.policies import AdaptivePolicy
from ..errors import ConfigurationError
from .pricing import PricingModel
from .revocation import RevocationInjector

__all__ = ["ProfitModeler", "ProfitPolicy", "SpotPolicy"]

#: Name of the dedicated random stream revocation schedules draw from.
#: FNV-1a spawn keys make the stream a pure function of ``(seed, name)``,
#: so every backend sees the identical schedule.
REVOCATION_STREAM = "economy.revocation"


class ProfitModeler(PerformanceModeler):
    """Profit-maximizing ``m*`` search over the M/M/1/K network.

    Inherits the full :class:`PerformanceModeler` surface — quantized
    LRU decision cache, tracer/audit observability, the network
    builder — and replaces only the uncached search.
    """

    def __init__(
        self,
        pricing: PricingModel,
        cores_per_vm: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.pricing = pricing
        self.cores_per_vm = float(cores_per_vm)
        # (λ·Ts, m*) of the last uncached decision.  Per-instance load
        # at the optimum is nearly invariant as λ moves, so rescaling
        # the previous optimum by the offered load lands the warm start
        # within ~1 instance of the new optimum — the bracketing then
        # certifies it with 3-4 network evaluations, which is what
        # keeps the ``profit_policy_overhead`` gate under 1.10x.  A
        # pure accelerator: the certified answer does not depend on it.
        self._opt_hint: Optional[tuple] = None

    def profit_rate(self, arrival_rate: float, service_time: float, m: int) -> float:
        """Expected profit per second of running ``m`` instances."""
        perf = self._network(service_time).evaluate(arrival_rate, m)
        return self._profit_value(arrival_rate, perf, m)

    def _profit_value(self, arrival_rate: float, perf, m: int) -> float:
        revenue = (
            self.pricing.revenue_per_request
            * arrival_rate
            * (1.0 - perf.blocking_probability)
        )
        cost = self.pricing.cost_per_core_hour * self.cores_per_vm * m / 3600.0
        return revenue - cost

    def _decide_uncached(
        self,
        arrival_rate: float,
        service_time: float,
        current_instances: int,
    ) -> ProvisioningDecision:
        net = self._network(service_time)
        lo_bound, hi_bound = self.min_vms, self.max_vms
        if arrival_rate == 0.0:
            perf = net.evaluate(0.0, lo_bound)
            return ProvisioningDecision(
                instances=lo_bound,
                predicted=perf,
                iterations=0,
                meets_qos=self.meets_qos(perf),
                trace=[lo_bound],
            )

        evals = {}

        def profit(m: int) -> float:
            cached = evals.get(m)
            if cached is None:
                perf = net.evaluate(arrival_rate, m)
                cached = evals[m] = (self._profit_value(arrival_rate, perf, m), perf)
            return cached[0]

        def falling(m: int) -> bool:
            # Δ(m) ≤ 0: adding the (m+1)-th instance no longer pays.
            return profit(m + 1) - profit(m) <= 0.0

        trace: List[int] = []
        iterations = 0
        m = min(max(int(current_instances), lo_bound), hi_bound)
        hint = self._opt_hint
        if hint is not None and hint[0] > 0.0:
            load = arrival_rate * service_time
            m = min(max(int(round(hint[1] * load / hint[0])), lo_bound), hi_bound)
        trace.append(m)
        # Bracket the optimum (the first m where Δ(m) ≤ 0) around the
        # warm start with a doubling gallop, then bisect inside it.
        if m < hi_bound and not falling(m):
            lo, hi, probe, step = m + 1, hi_bound, m, 1
            while True:
                iterations += 1
                probe = min(hi_bound, probe + step)
                trace.append(probe)
                if probe >= hi_bound or falling(probe):
                    hi = probe
                    break
                lo = probe + 1
                step *= 2
        else:
            # Δ(m) ≤ 0: the optimum is at or below the warm start.
            # Gallop down until a probe with Δ(probe) > 0 brackets it
            # from below; at steady state the first probe (m − 1) does,
            # so the whole search costs one extra network evaluation.
            lo, hi = lo_bound, m
            probe, step = m, 1
            while True:
                iterations += 1
                probe = max(lo_bound, probe - step)
                trace.append(probe)
                if not falling(probe):
                    lo = probe + 1
                    break
                hi = probe
                step *= 2
                if probe <= lo_bound:
                    break
        while lo < hi:
            iterations += 1
            mid = (lo + hi) // 2
            trace.append(mid)
            if mid < hi_bound and not falling(mid):
                lo = mid + 1
            else:
                hi = mid
        best = lo
        self._opt_hint = (arrival_rate * service_time, best)
        perf = evals[best][1] if best in evals else net.evaluate(arrival_rate, best)
        return ProvisioningDecision(
            instances=best,
            predicted=perf,
            iterations=iterations,
            meets_qos=self.meets_qos(perf),
            trace=trace,
        )


class ProfitPolicy(AdaptivePolicy):
    """Adaptive provisioning that sizes for profit, not the QoS target.

    Identical control loop to :class:`AdaptivePolicy` (analyzer →
    predictor → modeler → provisioner, on the same cadence); only the
    modeler changes, so DES/des-vec/fluid all execute it through the
    inherited plumbing.
    """

    name = "Profit"

    def __init__(
        self,
        pricing=None,
        cores_per_vm: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.pricing = PricingModel.coerce(pricing) or PricingModel()
        self.cores_per_vm = float(cores_per_vm)

    def _build_modeler(
        self,
        qos,
        capacity: int,
        max_vms: int,
        tracer=None,
        audit=None,
        time_fn=None,
    ) -> PerformanceModeler:
        return ProfitModeler(
            pricing=self.pricing,
            cores_per_vm=self.cores_per_vm,
            qos=qos,
            capacity=capacity,
            max_vms=max_vms,
            min_vms=self.min_instances,
            rho_max=self.rho_max,
            rejection_tolerance=self.rejection_tolerance,
            tracer=tracer,
            audit=audit,
            time_fn=time_fn,
        )


class SpotPolicy(AdaptivePolicy):
    """Adaptive-QoS sizing over an on-demand/spot split fleet.

    Algorithm 1 is untouched — the fleet is *sized* exactly like the
    paper's mechanism.  The policy declares ``spot_fraction`` of the
    capacity as revocable: the profit ledger bills that share at the
    pricing model's spot rate, and on the DES backends a
    :class:`~repro.economy.revocation.RevocationInjector` kills the
    newest live instance at seeded exponential intervals (mean
    ``pricing.spot_mtbf``).  The revocation schedule is drawn up front
    from the named ``"economy.revocation"`` stream, so ``des`` and
    ``des-vec`` see bit-identical revocations and the fluid backend can
    replay the same schedule as fleet-size interventions.
    """

    def __init__(
        self,
        spot_fraction: float,
        pricing=None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not 0.0 < spot_fraction < 1.0:
            raise ConfigurationError(
                f"spot_fraction must be in (0, 1), got {spot_fraction!r}"
            )
        self.spot_fraction = float(spot_fraction)
        self.pricing = PricingModel.coerce(pricing) or PricingModel()
        self.name = f"Spot-{int(round(self.spot_fraction * 100))}"

    def revocation_schedule(self, streams, horizon: float) -> List[float]:
        """Draw the run's revocation times (identical on every backend).

        Cumulative sums of exponential(``spot_mtbf``) gaps from the
        dedicated per-name stream, truncated at the horizon.
        """
        rng = streams.get(REVOCATION_STREAM)
        times: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(self.pricing.spot_mtbf))
            if not t < horizon or not math.isfinite(t):
                return times
            times.append(t)

    def attach(self, ctx) -> None:
        super().attach(ctx)
        schedule = self.revocation_schedule(ctx.streams, ctx.horizon)
        injector = RevocationInjector(
            engine=ctx.engine,
            fleet=ctx.fleet,
            schedule=schedule,
            horizon=ctx.horizon,
            tracer=ctx.tracer,
        )
        injector.start()
        # Backends read the injector back for RunMetrics accounting.
        ctx.revoker = injector
