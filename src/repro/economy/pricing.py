"""Pricing model — the economic contract a provisioning run is judged by.

The paper sizes fleets purely against the QoS target; this module adds
the missing half of the Mazzucco et al. "Squeezing out the Cloud"
question: what does a fleet *earn*?  A :class:`PricingModel` carries the
four knobs of a simple cloud-economics contract:

* ``revenue_per_request`` — income earned per *completed* request;
* ``cost_per_core_hour`` — on-demand price of one core for one hour;
* ``spot_cost_factor`` — discount multiplier for revocable ("spot")
  capacity (0.3 = spot core-hours cost 30 % of on-demand);
* ``sla_penalty`` — flat fine charged per accounting interval whose
  QoS-violation fraction exceeds ``sla_tolerance``.

``spot_mtbf`` is not a price: it parameterizes the *reliability* of the
discounted capacity — the mean time between revocation events injected
by :class:`~repro.economy.revocation.RevocationInjector` when a
spot-split policy runs.

Instances are frozen, hashable, and round-trip through the sorted
``(name, value)`` tuple form campaign specs use as hash material
(:meth:`as_tuple` / :meth:`coerce`), so a pricing table participates in
the content-addressed cell key like any other scenario parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError

__all__ = ["PricingModel"]


@dataclass(frozen=True)
class PricingModel:
    """Economic parameters of one provisioning run.

    Attributes
    ----------
    revenue_per_request:
        Income per completed request (currency units).
    cost_per_core_hour:
        On-demand cost of one core-hour.
    spot_cost_factor:
        Spot core-hours are billed at this fraction of the on-demand
        price (must be in ``(0, 1]``).
    sla_penalty:
        Fine per accounting interval whose violation fraction exceeds
        ``sla_tolerance``.
    sla_tolerance:
        Fraction of an interval's completions allowed to miss ``Ts``
        before the interval counts as violating.
    spot_mtbf:
        Mean seconds between spot revocation events (exponential
        inter-event times drawn from the run's seeded
        ``"economy.revocation"`` stream).
    """

    revenue_per_request: float = 0.0005
    cost_per_core_hour: float = 0.08
    spot_cost_factor: float = 0.3
    sla_penalty: float = 0.0
    sla_tolerance: float = 0.01
    spot_mtbf: float = 14400.0

    def __post_init__(self) -> None:
        for name in ("revenue_per_request", "cost_per_core_hour", "sla_penalty"):
            value = getattr(self, name)
            if not (isinstance(value, (int, float)) and math.isfinite(value) and value >= 0.0):
                raise ConfigurationError(
                    f"pricing: {name} must be a finite number >= 0, got {value!r}"
                )
        if not 0.0 < self.spot_cost_factor <= 1.0:
            raise ConfigurationError(
                f"pricing: spot_cost_factor must be in (0, 1], got {self.spot_cost_factor!r}"
            )
        if not 0.0 <= self.sla_tolerance <= 1.0:
            raise ConfigurationError(
                f"pricing: sla_tolerance must be in [0, 1], got {self.sla_tolerance!r}"
            )
        if not (math.isfinite(self.spot_mtbf) and self.spot_mtbf > 0.0):
            raise ConfigurationError(
                f"pricing: spot_mtbf must be finite and > 0 seconds, got {self.spot_mtbf!r}"
            )

    # ------------------------------------------------------------------
    # Canonical forms (campaign hash material / TOML round-trip)
    # ------------------------------------------------------------------
    def as_tuple(self) -> Tuple[Tuple[str, float], ...]:
        """Sorted ``(name, value)`` pairs — hashable spec/key material."""
        return tuple(sorted((f.name, float(getattr(self, f.name))) for f in fields(self)))

    @classmethod
    def coerce(
        cls, value: Union["PricingModel", Mapping[str, Any], Sequence, None]
    ) -> Optional["PricingModel"]:
        """Build a model from any of its accepted spellings.

        Accepts ``None`` (pricing off), an existing model, a mapping
        (the TOML ``pricing`` table), or the frozen pair-tuple form a
        campaign cell carries.  Unknown keys raise so a typo in a spec
        fails at load time, not silently prices at defaults.
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            items = dict(value)
        else:
            try:
                items = {str(k): v for k, v in value}
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"pricing must be a table of numbers, got {value!r}"
                )
        known = {f.name for f in fields(cls)}
        unknown = set(items) - known
        if unknown:
            raise ConfigurationError(
                f"unknown pricing keys {sorted(unknown)}; expected a subset "
                f"of {sorted(known)}"
            )
        for name, v in items.items():
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise ConfigurationError(
                    f"pricing: {name} must be a number, got {v!r}"
                )
        return cls(**{k: float(v) for k, v in items.items()})

    # ------------------------------------------------------------------
    # Accounting arithmetic (shared by the ledger and the fluid backend)
    # ------------------------------------------------------------------
    def revenue(self, completed: float) -> float:
        """Income from ``completed`` served requests."""
        return self.revenue_per_request * float(completed)

    def capacity_cost(self, core_hours: float, spot_core_hours: float = 0.0) -> float:
        """Blended capacity bill: on-demand hours plus discounted spot hours.

        ``spot_core_hours`` must already be contained in ``core_hours``;
        the spot share is re-billed at ``spot_cost_factor``.
        """
        on_demand = max(0.0, float(core_hours) - float(spot_core_hours))
        return self.cost_per_core_hour * (
            on_demand + self.spot_cost_factor * float(spot_core_hours)
        )

    def interval_violates(self, completed: float, violations: float) -> bool:
        """Does one interval's violation fraction exceed the tolerance?"""
        if completed <= 0:
            return False
        return float(violations) > self.sla_tolerance * float(completed)
