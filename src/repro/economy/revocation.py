"""Spot revocation — deterministic reclamation of revocable capacity.

A :class:`RevocationInjector` is a :class:`~repro.cloud.failures.
FailureInjector` with two deliberate differences:

* the victim is **deterministic** — the *newest* live instance dies
  (max ``instance_id`` on the scalar fleet, max station index on the
  vector fleet; both number instances in creation order), modeling a
  provider reclaiming the most recently granted spot capacity and,
  crucially, keeping the kill sequence bit-identical between ``des``
  and ``des-vec`` without consuming any randomness at kill time;
* kills are tagged ``reason="revoked"`` and emit an
  ``economy.revocation`` trace event carrying the victim and the
  number of requests lost with it.

Randomness lives entirely in the *schedule* (drawn up front by
:meth:`~repro.economy.policies.SpotPolicy.revocation_schedule` from the
run's seeded ``"economy.revocation"`` stream), never in the injector.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..cloud.failures import FailureInjector

__all__ = ["RevocationInjector"]


class RevocationInjector(FailureInjector):
    """Kills the newest live instance at each scheduled revocation time."""

    def __init__(
        self,
        engine,
        fleet,
        schedule: Sequence[float],
        horizon: float = math.inf,
        tracer=None,
    ) -> None:
        # rng=None is safe: schedule mode never draws, and the victim
        # choice below is deterministic.
        super().__init__(
            engine,
            fleet,
            rng=None,
            schedule=schedule,
            horizon=horizon,
            reason="revoked",
        )
        self._tracer = tracer

    def _pick_victim(self, victims):
        """The newest live instance: provider reclaims last-granted capacity."""
        return max(victims, key=lambda v: getattr(v, "instance_id", v))

    def _crash(self):
        outcome = super()._crash()
        if outcome is not None and self._tracer is not None:
            victim, lost = outcome
            self._tracer.emit(
                "economy.revocation",
                self._engine.now,
                instance=int(getattr(victim, "instance_id", victim)),
                lost=int(lost),
            )
        return outcome

    @property
    def revocations(self) -> int:
        """Number of instances actually revoked."""
        return len(self.crash_log)
