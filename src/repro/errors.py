"""Exception hierarchy for :mod:`repro`.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Each subsystem raises the most specific type
available; messages always carry enough state (names, counts, times) to
diagnose a failing simulation without a debugger.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "SchedulingInPastError",
    "EngineStateError",
    "CapacityError",
    "PlacementError",
    "ConfigurationError",
    "QueueingModelError",
    "WorkloadError",
    "PredictionError",
    "TraceSchemaError",
    "LintError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class SchedulingInPastError(SimulationError):
    """An event was scheduled at a time earlier than the current clock.

    The kernel is strictly causal: entities may only schedule events at
    ``now`` or later.  This error usually indicates a model bug such as
    subtracting a delay instead of adding it.
    """

    def __init__(self, now: float, when: float) -> None:
        super().__init__(
            f"cannot schedule event at t={when!r}: simulation clock is already at t={now!r}"
        )
        self.now = now
        self.when = when


class EngineStateError(SimulationError):
    """The engine was used in an invalid lifecycle state.

    For example: calling :meth:`repro.sim.Engine.run` twice, or
    scheduling events after the engine finished.
    """


class CapacityError(ReproError):
    """A physical or virtual resource ran out of capacity."""


class PlacementError(CapacityError):
    """No host in the data center can accommodate a VM request."""


class ConfigurationError(ReproError):
    """A scenario, policy, or component was configured inconsistently."""


class QueueingModelError(ReproError):
    """An analytical queueing formula was evaluated outside its domain.

    Examples: negative arrival rate, zero service rate, or a
    non-integral capacity for a finite-buffer queue.
    """


class WorkloadError(ReproError):
    """A workload model was asked to generate an impossible pattern."""


class PredictionError(ReproError):
    """A predictor could not produce an estimate (e.g. no history)."""


class TraceSchemaError(ReproError):
    """A trace event (or JSONL trace file) violates the event schema.

    Raised by :mod:`repro.obs.schema` validation; the message carries
    the event position / file line and the offending field.
    """


class LintError(ReproError):
    """:mod:`repro.lint` could not complete a run.

    Usage or internal failures — unknown rule names, missing paths,
    unreadable baselines, unparsable source, a crashing rule — as
    opposed to findings, which are ordinary results.  The CLI maps
    this to exit code 2 (findings exit 1, clean trees 0).
    """
