"""Experiment harness: scenarios, runner, and figure regeneration.

* :func:`web_scenario` / :func:`scientific_scenario` — the paper's two
  evaluation setups (§V-B), optionally rate-rescaled.
* :func:`run_policy` / :func:`run_replications` — one replication of
  (scenario, policy) → :class:`~repro.backends.base.RunMetrics`, on any
  execution backend (``backend="des"`` or ``"fluid"``); ``workers=N``
  dispatches replications to a process pool
  (:mod:`repro.experiments.parallel`).
* :class:`PolicySpec` — picklable policy factory for the pool path.
* :mod:`repro.experiments.figures` — one function per paper artifact.
* ``repro-experiments`` CLI (:mod:`repro.experiments.cli`).
"""

from .figures import (
    SCI_STATIC_SIZES,
    WEB_STATIC_SIZES,
    FigureData,
    fig3_data,
    fig4_data,
    fig5_data,
    fig5_fluid_fullscale,
    fig6_data,
    fig6_fluid_fullscale,
    fluid_policy_comparison,
    policy_comparison,
    table2_data,
    workload_analysis_data,
)
from .parallel import PolicySpec, default_workers, run_replications_parallel
from .persist import load_results, result_from_dict, result_to_dict, save_results
from .runner import RunMetrics, RunResult, build_context, run_policy, run_replications
from .scenario import ScenarioConfig, scientific_scenario, web_scenario

__all__ = [
    "ScenarioConfig",
    "web_scenario",
    "scientific_scenario",
    "RunMetrics",
    "RunResult",
    "build_context",
    "run_policy",
    "run_replications",
    "PolicySpec",
    "default_workers",
    "run_replications_parallel",
    "FigureData",
    "table2_data",
    "fig3_data",
    "fig4_data",
    "fig5_data",
    "fig6_data",
    "fig5_fluid_fullscale",
    "fig6_fluid_fullscale",
    "policy_comparison",
    "fluid_policy_comparison",
    "workload_analysis_data",
    "WEB_STATIC_SIZES",
    "SCI_STATIC_SIZES",
    "save_results",
    "load_results",
    "result_to_dict",
    "result_from_dict",
]
