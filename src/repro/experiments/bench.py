"""In-process micro-benchmarks of the simulation substrate.

Backs the ``repro-experiments bench`` CLI subcommand and the
``benchmarks/bench_parallel_runner.py`` suite with plain-`perf_counter`
measurements that need no external harness: engine event throughput,
Algorithm-1 cold vs cached decision latency, window sampling, the
sequential-vs-parallel replication runner, and the campaign engine's
cold-vs-cached overhead.  Every function returns a JSON-safe dict so
results can be diffed across commits (``BENCH_PR1.json`` records the
first such trajectory, ``BENCH_PR4.json`` adds the campaign numbers).
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Any, Dict, Optional, Sequence

from ..core.modeler import PerformanceModeler
from ..core.policies import AdaptivePolicy
from ..core.qos import QoSTarget
from ..sim.engine import Engine
from ..sim.rng import RandomStreams
from ..workloads.web import WebWorkload
from .parallel import PolicySpec, run_replications_parallel
from .runner import run_replications
from .scenario import web_scenario

__all__ = [
    "engine_throughput",
    "decision_latency",
    "window_sampling",
    "parallel_runner",
    "trace_overhead",
    "metrics_overhead",
    "campaign_overhead",
    "shard_overhead",
    "profit_policy_overhead",
    "kernel_bench",
]


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` runs of ``fn`` (seconds)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def engine_throughput(events: int = 50_000, repeats: int = 3) -> Dict[str, Any]:
    """Schedule-and-fire ``events`` chained engine events."""

    def run_chain() -> None:
        eng = Engine()
        remaining = [events]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                eng.schedule(1.0, tick)

        eng.schedule(1.0, tick)
        eng.run()
        assert eng.events_fired == events

    best = _best_of(run_chain, repeats)
    return {
        "events": events,
        "best_seconds": best,
        "events_per_second": events / best if best > 0 else float("inf"),
    }


def decision_latency(iterations: int = 200, repeats: int = 3) -> Dict[str, Any]:
    """Algorithm-1 latency at the web peak: cold search vs cache hit."""
    kwargs = dict(
        qos=QoSTarget(max_response_time=0.250, min_utilization=0.80),
        capacity=2,
        max_vms=8000,
    )
    cold_modeler = PerformanceModeler(decision_cache_size=0, **kwargs)
    warm_modeler = PerformanceModeler(**kwargs)
    warm_modeler.decide(1200.0, 0.105, 55)  # prime the cache

    def cold() -> None:
        for _ in range(iterations):
            cold_modeler.decide(1200.0, 0.105, 55)

    def warm() -> None:
        for _ in range(iterations):
            warm_modeler.decide(1200.0, 0.105, 55)

    cold_best = _best_of(cold, repeats) / iterations
    warm_best = _best_of(warm, repeats) / iterations
    return {
        "cold_seconds": cold_best,
        "warm_hit_seconds": warm_best,
        "speedup": cold_best / warm_best if warm_best > 0 else float("inf"),
        "cache": warm_modeler.cache_info(),
    }


def window_sampling(repeats: int = 5) -> Dict[str, Any]:
    """One 60-s web window at peak rate (~70 k arrivals)."""
    web = WebWorkload()
    rng = RandomStreams(0).get("bench.web")
    count = [0]

    def sample() -> None:
        count[0] = int(web.sample_window(rng, 43_200.0).size)

    best = _best_of(sample, repeats)
    return {"arrivals": count[0], "best_seconds": best}


def parallel_runner(
    workers: int = 4,
    seeds: Sequence[int] = tuple(range(8)),
    scale: float = 2000.0,
    horizon: float = 12 * 3600.0,
) -> Dict[str, Any]:
    """Sequential vs process-pool replications of the adaptive web run.

    Returns wall-clock for both paths, the speedup, and whether the
    results matched bit-for-bit (``wall_seconds`` excluded — it is the
    one nondeterministic diagnostic field).
    """
    scenario = web_scenario(scale=scale, horizon=horizon)
    spec = PolicySpec(AdaptivePolicy)
    t0 = time.perf_counter()
    seq = run_replications(scenario, spec, seeds=seeds, workers=1)
    seq_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = run_replications_parallel(scenario, spec, seeds=seeds, workers=workers)
    par_wall = time.perf_counter() - t0

    def strip(r):
        return dataclasses.replace(r, wall_seconds=0.0)

    identical = [strip(a) for a in seq] == [strip(b) for b in par]
    return {
        "seeds": list(seeds),
        "workers": workers,
        "sequential_seconds": seq_wall,
        "parallel_seconds": par_wall,
        "speedup": seq_wall / par_wall if par_wall > 0 else float("inf"),
        "identical_results": identical,
        "cache": {
            "hits": sum(r.cache_hits for r in seq),
            "misses": sum(r.cache_misses for r in seq),
        },
    }


def trace_overhead(
    scale: float = 2000.0,
    horizon: float = 6 * 3600.0,
    repeats: int = 2,
) -> Dict[str, Any]:
    """Wall-clock of one adaptive web run untraced vs ring-buffer traced.

    Quantifies the cost of the observability layer: the ``disabled``
    case is the default ``tracer=None`` wiring (the <3% overhead
    budget), the ``enabled`` case routes every event type into an
    in-memory ring buffer (the worst case — JSONL filtering drops the
    per-request firehose by default).
    """
    from ..obs.bus import RingBufferSink, TraceBus
    from .runner import run_policy

    scenario = web_scenario(scale=scale, horizon=horizon)

    def untraced() -> None:
        run_policy(scenario, AdaptivePolicy(), seed=0)

    emitted = [0]

    def traced() -> None:
        bus = TraceBus(RingBufferSink())
        run_policy(scenario, AdaptivePolicy(), seed=0, trace=bus)
        emitted[0] = bus.emitted

    off = _best_of(untraced, repeats)
    on = _best_of(traced, repeats)
    return {
        "disabled_seconds": off,
        "enabled_seconds": on,
        "overhead_ratio": on / off if off > 0 else float("inf"),
        "events_emitted": emitted[0],
    }


def metrics_overhead(
    scale: float = 2000.0,
    horizon: float = 6 * 3600.0,
    repeats: int = 5,
) -> Dict[str, Any]:
    """Wall-clock of one adaptive web run metrics-off vs metrics-on.

    The acceptance budget is a <=1.10x ratio: the registry is built
    once per run, components hold pre-resolved instrument handles, and
    the only live per-request cost is one identity check plus a
    buffered list append into the response-time histogram (bucketing is
    deferred and vectorized at the next snapshot read) — everything
    else syncs from the existing collector counters at finalize time.
    """
    from ..obs.metrics import MetricsConfig
    from .runner import run_policy

    scenario = web_scenario(scale=scale, horizon=horizon)

    def disabled() -> None:
        run_policy(scenario, AdaptivePolicy(), seed=0)

    snapshots = [0]

    def enabled() -> None:
        r = run_policy(
            scenario, AdaptivePolicy(), seed=0, metrics=MetricsConfig()
        )
        snapshots[0] = len(r.telemetry["snapshots"])

    # one untimed lap each so imports / allocator warmup / branch
    # predictors don't charge their cost to whichever side runs first,
    # then interleave the timed laps so a host slowdown mid-measurement
    # penalizes both sides equally instead of whichever ran last
    disabled()
    enabled()
    off = float("inf")
    on = float("inf")
    for _ in range(max(1, repeats)):
        off = min(off, _best_of(disabled, 1))
        on = min(on, _best_of(enabled, 1))
    return {
        "disabled_seconds": off,
        "enabled_seconds": on,
        "overhead_ratio": on / off if off > 0 else float("inf"),
        "snapshots": snapshots[0],
        "criterion": "<=1.10x",
        "pass": (on / off <= 1.10) if off > 0 else False,
    }


def campaign_overhead(
    scale: float = 5000.0,
    horizon: float = 6 * 3600.0,
    seeds: str = "0-2",
) -> Dict[str, Any]:
    """Cold vs cached campaign run over a small fluid grid.

    Measures what the campaign engine itself costs: the cold run pays
    for every simulation, the warm re-run is served entirely from the
    content-addressed store, so the ratio is the cache win and the warm
    wall-clock is the pure orchestration overhead per cell.
    """
    import tempfile

    # Imported lazily: repro.campaigns sits above the experiments layer,
    # so a module-body import here would invert the layering rules.
    from ..campaigns import CampaignSpec, ResultStore, run_campaign

    spec = CampaignSpec.from_dict(
        {
            "campaign": {"name": "bench-overhead"},
            "scenarios": [
                {
                    "scenario": "web",
                    "scale": scale,
                    "horizon": horizon,
                    "policies": ["adaptive", "static-60"],
                    "backends": ["fluid"],
                    "seeds": seeds,
                }
            ],
        }
    )
    cells = len(spec.expanded())
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        t0 = time.perf_counter()
        cold = run_campaign(spec, store=store, workers=1)
        cold_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_campaign(spec, store=store, workers=1)
        warm_wall = time.perf_counter() - t0
    assert len(cold.executed) == cells and len(warm.cached) == cells
    return {
        "cells": cells,
        "cold_seconds": cold_wall,
        "warm_seconds": warm_wall,
        "speedup": cold_wall / warm_wall if warm_wall > 0 else float("inf"),
        "warm_seconds_per_cell": warm_wall / cells if cells else 0.0,
    }


def shard_overhead(
    scale: float = 5000.0,
    horizon: float = 2 * 3600.0,
    seeds: str = "0-31",
    repeats: int = 15,
) -> Dict[str, Any]:
    """Cost of the lease-based scheduler vs the lease-free run loop.

    Measures a warm re-run of a small fluid grid twice — with the
    claim protocol enabled (the default) and with ``coordinate=False``
    (the single-writer fast path) — as order-alternating back-to-back
    pairs, reporting the median pair ratio (see the in-body comment for
    why minima don't converge on laps this short).  Warm cells are
    served from cache without ever being claimed, so the ratio is the
    pure reconcile-loop tax the refactor added to the common resume
    path; the acceptance budget is <=1.05x.  Also reports the per-cell cost of one full
    claim → renew → release lease cycle (the cold-run overhead, paid
    once per executed cell and dwarfed by any simulation).
    """
    import tempfile

    # Imported lazily: repro.campaigns sits above the experiments layer,
    # so a module-body import here would invert the layering rules.
    from ..campaigns import CampaignSpec, ResultStore, run_campaign

    spec = CampaignSpec.from_dict(
        {
            "campaign": {"name": "bench-shard-overhead"},
            "scenarios": [
                {
                    "scenario": "web",
                    "scale": scale,
                    "horizon": horizon,
                    "policies": ["adaptive", "static-60"],
                    "backends": ["fluid"],
                    "seeds": seeds,
                }
            ],
        }
    )
    cells = spec.expanded()
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        cold = run_campaign(spec, store=store, workers=1)
        assert len(cold.executed) == len(cells)

        def leases_off() -> None:
            run_campaign(spec, store=store, workers=1, coordinate=False)

        def leases_on() -> None:
            run_campaign(spec, store=store, workers=1)

        # Untimed warmup lap each, then paired laps.  Each repeat times
        # both variants back-to-back (order flipping every lap — on a
        # single-core host whichever side runs second inherits more
        # allocator/GC debt) and contributes one on/off ratio; the
        # reported overhead is the *median* pair ratio, which cancels
        # slow drift and trims the GC spikes that a best-of-minima
        # estimator keeps re-rolling on laps this short (~3 ms).
        leases_off()
        leases_on()
        off = float("inf")
        on = float("inf")
        ratios = []
        for lap in range(max(1, repeats)):
            if lap % 2 == 0:
                a = _best_of(leases_off, 1)
                b = _best_of(leases_on, 1)
            else:
                b = _best_of(leases_on, 1)
                a = _best_of(leases_off, 1)
            off, on = min(off, a), min(on, b)
            ratios.append(b / a if a > 0 else float("inf"))
        ratios.sort()
        ratio = ratios[len(ratios) // 2]

        # Micro-cost of the lease cycle itself, per cell.
        def claim_cycle() -> None:
            for cell in cells:
                outcome = store.claim(cell, "bench:owner", ttl=60.0)
                assert outcome.acquired
                store.renew(cell.key(), "bench:owner")
                store.release(cell.key(), "bench:owner")

        cycle = _best_of(claim_cycle, max(1, repeats)) / len(cells)
    return {
        "cells": len(cells),
        "warm_plain_seconds": off,
        "warm_leases_seconds": on,
        "overhead_ratio": ratio,
        "claim_cycle_seconds_per_cell": cycle,
        "criterion": "<=1.05x",
        "pass": ratio <= 1.05,
    }


def profit_policy_overhead(
    steps: int = 240,
    repeats: int = 5,
) -> Dict[str, Any]:
    """Decision cost of the profit ``m*`` search vs Algorithm 1.

    Drives both modelers (decision caches off, so the raw search is
    what's timed) through the same warm-started decision stream — a
    web-day-like λ ramp up to the peak and back down, each decision
    seeded with the previous one's fleet size, exactly how the control
    plane calls them.  The acceptance budget is a <=1.10x per-decision
    ratio: the two-sided galloping bracket around the warm start makes
    a steady-state ``m*`` decision cost ~3 network evaluations, the
    same order as a converged Algorithm-1 pass.
    """
    from ..economy.policies import ProfitModeler
    from ..economy.pricing import PricingModel

    kwargs = dict(
        qos=QoSTarget(max_response_time=0.250, min_utilization=0.80),
        capacity=2,
        max_vms=8000,
        decision_cache_size=0,
    )
    adaptive = PerformanceModeler(**kwargs)
    profit = ProfitModeler(
        PricingModel(revenue_per_request=0.02, cost_per_core_hour=0.15),
        **kwargs,
    )
    # Diurnal λ sweep (50..1200 req/s) so both searches see the same
    # mix of steady-state repeats and ramp transitions.
    rates = [
        625.0 + 575.0 * math.sin(2.0 * math.pi * i / steps)
        for i in range(steps)
    ]

    def drive(modeler) -> None:
        m = 1
        for lam in rates:
            m = modeler.decide(lam, 0.105, m).instances

    # Untimed warmup lap each, then interleave the timed laps so host
    # drift penalizes both sides equally (same scheme as
    # ``metrics_overhead``).
    drive(adaptive)
    drive(profit)
    base = float("inf")
    prof = float("inf")
    for _ in range(max(1, repeats)):
        base = min(base, _best_of(lambda: drive(adaptive), 1))
        prof = min(prof, _best_of(lambda: drive(profit), 1))
    ratio = prof / base if base > 0 else float("inf")
    return {
        "decisions": steps,
        "adaptive_seconds_per_decision": base / steps,
        "profit_seconds_per_decision": prof / steps,
        "overhead_ratio": ratio,
        "criterion": "<=1.10x",
        "pass": ratio <= 1.10,
    }


def kernel_bench(
    events: int = 50_000,
    workers: Optional[int] = None,
    quick: bool = False,
) -> Dict[str, Any]:
    """The full micro-benchmark suite as one JSON-safe report."""
    if quick:
        events = min(events, 10_000)
    report: Dict[str, Any] = {
        "engine_throughput": engine_throughput(events=events),
        "decision_latency": decision_latency(iterations=50 if quick else 200),
        "window_sampling": window_sampling(repeats=2 if quick else 5),
        "trace_overhead": trace_overhead(
            scale=4000.0 if quick else 2000.0,
            horizon=(2 if quick else 6) * 3600.0,
            repeats=1 if quick else 2,
        ),
        "metrics_overhead": metrics_overhead(
            scale=4000.0 if quick else 2000.0,
            horizon=(2 if quick else 6) * 3600.0,
            repeats=1 if quick else 2,
        ),
        "campaign_overhead": campaign_overhead(
            horizon=(2 if quick else 6) * 3600.0,
            seeds="0" if quick else "0-2",
        ),
        "shard_overhead": shard_overhead(
            seeds="0-7" if quick else "0-31",
            repeats=5 if quick else 15,
        ),
        "profit_policy_overhead": profit_policy_overhead(
            steps=60 if quick else 240,
            repeats=2 if quick else 5,
        ),
    }
    if workers is not None and workers > 1:
        report["parallel_runner"] = parallel_runner(
            workers=workers,
            seeds=tuple(range(4 if quick else 8)),
            horizon=(6 if quick else 12) * 3600.0,
        )
    return report
