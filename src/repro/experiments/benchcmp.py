"""Benchmark regression gate — diff live timings against a committed baseline.

``repro bench --compare BENCH_PR6.json`` re-measures a small set of
named *gates* (the kernels whose cost the repo has promised across
PRs: the scalar event chain, the batched round-robin Lindley kernel,
the end-to-end des / des-vec web day) and compares each against the
number recorded in the committed baseline document, failing loudly —
non-zero exit in the CLI — when any gate slowed past the tolerance.

Baselines come in two shapes, both supported:

* the historical hand-written documents (``BENCH_PR6.json`` and
  earlier), where each gate's seconds live at a document-specific
  dotted path such as ``scalar.engine_event_throughput_50k.min``;
* the uniform ``{"gates": {"<id>": {"seconds": ...}}}`` section that
  ``baseline_document`` emits (``BENCH_PR7.json`` onward).

Each gate carries its lookup-path candidates, so old and new documents
compare through the same code path; a gate absent from the baseline is
reported as ``no-baseline`` and never fails the run.  Tolerances are
deliberately generous (default 3.0x) — shared CI hosts jitter, and the
gate exists to catch order-of-magnitude regressions (an accidentally
quadratic loop, a lost vectorization), not 10% noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .bench import _best_of, engine_throughput

__all__ = [
    "BENCH_GATES",
    "GateResult",
    "baseline_document",
    "compare_to_baseline",
    "format_comparison",
    "lookup_gate",
    "measure_gate",
]


@dataclass(frozen=True)
class Gate:
    """One named benchmark with its baseline lookup paths.

    ``paths`` are tried in order against a baseline document — the
    uniform ``gates.<id>.seconds`` shape first, then the dotted paths
    of the historical hand-written BENCH_*.json layouts.  ``slow``
    gates (multi-second end-to-end runs) are skipped in quick mode.
    """

    measure: Callable[[], float]
    paths: Tuple[str, ...]
    slow: bool = False


@dataclass(frozen=True)
class GateResult:
    """Outcome of one gate comparison.

    ``regressed`` is only ever ``True`` when a baseline exists and the
    fresh measurement exceeds ``old_seconds * tolerance``.
    """

    gate: str
    new_seconds: float
    old_seconds: Optional[float]
    tolerance: float

    @property
    def ratio(self) -> Optional[float]:
        if self.old_seconds is None or self.old_seconds <= 0:
            return None
        return self.new_seconds / self.old_seconds

    @property
    def regressed(self) -> bool:
        ratio = self.ratio
        return ratio is not None and ratio > self.tolerance


def _measure_engine_50k() -> float:
    return engine_throughput(events=50_000)["best_seconds"]


def _measure_engine_500k() -> float:
    return engine_throughput(events=500_000)["best_seconds"]


def _measure_round_robin_50k() -> float:
    import numpy as np

    from ..sim.batch import round_robin_departures
    from ..sim.rng import RandomStreams

    rng = RandomStreams(0).get("bench.kernels")
    n = 50_000
    arrivals = np.sort(rng.uniform(0.0, float(n) / 10.0, size=n))
    services = rng.exponential(8.0, size=n)
    round_robin_departures(arrivals, services, 100)  # warm numpy dispatch
    return _best_of(lambda: round_robin_departures(arrivals, services, 100), 10)


def _measure_end_to_end(backend: str) -> float:
    from ..core.policies import AdaptivePolicy
    from .runner import run_policy
    from .scenario import web_scenario

    scenario = web_scenario(scale=100.0, horizon=24 * 3600.0)
    t0 = time.perf_counter()
    run_policy(scenario, AdaptivePolicy(), seed=0, backend=backend)
    return time.perf_counter() - t0


def _measure_metrics_overhead_ratio() -> float:
    from .bench import metrics_overhead

    return metrics_overhead(repeats=1)["overhead_ratio"]


def _measure_shard_orchestration_overhead() -> float:
    from .bench import shard_overhead

    return shard_overhead()["overhead_ratio"]


def _measure_profit_policy_overhead() -> float:
    from .bench import profit_policy_overhead

    return profit_policy_overhead()["overhead_ratio"]


#: The comparable gates, in report order.  Values compared are seconds
#: (lower is better) except ``metrics_overhead_ratio``,
#: ``shard_orchestration_overhead``, and ``profit_policy_overhead``,
#: which are on/off wall-clock ratios — dimensionless, but "lower is
#: better" still holds, so the same tolerance logic applies.
BENCH_GATES: Dict[str, Gate] = {
    "engine_event_throughput_50k": Gate(
        _measure_engine_50k,
        (
            "gates.engine_event_throughput_50k.seconds",
            "scalar.engine_event_throughput_50k.min",
            "engine_throughput.best_seconds",
        ),
    ),
    "engine_event_throughput_500k": Gate(
        _measure_engine_500k,
        (
            "gates.engine_event_throughput_500k.seconds",
            "scalar.engine_event_throughput_500k.min",
        ),
        slow=True,
    ),
    "round_robin_kernel_50k": Gate(
        _measure_round_robin_50k,
        (
            "gates.round_robin_kernel_50k.seconds",
            "batched.round_robin_kernel_50k.min",
        ),
    ),
    "des_end_to_end_web_scale100": Gate(
        lambda: _measure_end_to_end("des"),
        (
            "gates.des_end_to_end_web_scale100.seconds",
            "end_to_end.des_seconds",
        ),
        slow=True,
    ),
    "des_vec_end_to_end_web_scale100": Gate(
        lambda: _measure_end_to_end("des-vec"),
        (
            "gates.des_vec_end_to_end_web_scale100.seconds",
            "end_to_end.des_vec_seconds",
        ),
        slow=True,
    ),
    "metrics_overhead_ratio": Gate(
        _measure_metrics_overhead_ratio,
        ("gates.metrics_overhead_ratio.seconds",),
        slow=True,
    ),
    "shard_orchestration_overhead": Gate(
        _measure_shard_orchestration_overhead,
        ("gates.shard_orchestration_overhead.seconds",),
        slow=True,
    ),
    "profit_policy_overhead": Gate(
        _measure_profit_policy_overhead,
        ("gates.profit_policy_overhead.seconds",),
    ),
}


def lookup_gate(doc: Mapping[str, Any], gate_id: str) -> Optional[float]:
    """The baseline seconds for ``gate_id`` in ``doc``, or ``None``."""
    gate = BENCH_GATES[gate_id]
    for path in gate.paths:
        node: Any = doc
        for key in path.split("."):
            if not isinstance(node, Mapping) or key not in node:
                node = None
                break
            node = node[key]
        if isinstance(node, (int, float)):
            return float(node)
    return None


def measure_gate(gate_id: str) -> float:
    """Freshly measure one gate (seconds, or a ratio — lower is better)."""
    return BENCH_GATES[gate_id].measure()


def compare_to_baseline(
    baseline: Mapping[str, Any],
    tolerance: float = 3.0,
    quick: bool = False,
    gates: Optional[Sequence[str]] = None,
) -> List[GateResult]:
    """Measure every applicable gate and diff it against ``baseline``.

    ``quick=True`` skips the ``slow`` (multi-second) gates; ``gates``
    restricts the run to an explicit subset.  Gates missing from the
    baseline document still measure and report, but cannot regress.
    """
    selected = list(gates) if gates is not None else list(BENCH_GATES)
    results: List[GateResult] = []
    for gate_id in selected:
        gate = BENCH_GATES[gate_id]
        if quick and gate.slow:
            continue
        results.append(
            GateResult(
                gate=gate_id,
                new_seconds=gate.measure(),
                old_seconds=lookup_gate(baseline, gate_id),
                tolerance=float(tolerance),
            )
        )
    return results


def baseline_document(results: Sequence[GateResult]) -> Dict[str, Any]:
    """The uniform ``{"gates": ...}`` section for a new BENCH_*.json."""
    return {
        "gates": {
            r.gate: {"seconds": r.new_seconds} for r in results
        }
    }


def format_comparison(results: Sequence[GateResult]) -> str:
    """Plain-text gate table plus a one-line verdict."""
    from ..metrics.report import format_table

    rows: List[List[object]] = []
    for r in results:
        if r.old_seconds is None:
            baseline, ratio, verdict = "-", "-", "no-baseline"
        else:
            baseline = f"{r.old_seconds:.6f}"
            ratio = f"{r.ratio:.2f}x"
            verdict = "REGRESSED" if r.regressed else "ok"
        rows.append([r.gate, baseline, f"{r.new_seconds:.6f}", ratio, verdict])
    table = format_table(
        ["gate", "baseline", "measured", "ratio", "verdict"],
        rows,
        title="benchmark comparison",
    )
    bad = [r.gate for r in results if r.regressed]
    if bad:
        table += (
            f"\nREGRESSION: {', '.join(bad)} exceeded "
            f"{results[0].tolerance:.2f}x tolerance"
        )
    else:
        table += f"\nall gates within {results[0].tolerance:.2f}x tolerance" if results else "\nno gates selected"
    return table
