"""Command-line entry point: regenerate any paper artifact.

Installed as ``repro`` (and the legacy alias ``repro-experiments``)::

    repro list
    repro run table2
    repro run fig5 --scale 500 --seeds 0-1 --out results/
    repro run fig5 --workers 4
    repro run fig5 --backend fluid
    repro run fig5-fluid
    repro run all --quick
    repro run fig5 --quick --trace traces/
    repro run fig5 --metrics telemetry/
    repro trace traces/ --validate --timeline 20
    repro metrics show telemetry/
    repro metrics export telemetry/web-Adaptive-s0.jsonl --format prometheus
    repro bench --workers 4
    repro bench --compare BENCH_PR6.json --tolerance 3.0
    repro lint src tests
    repro lint src --format json --baseline .reprolint.json
    repro campaign run campaigns/paper.toml --metrics
    repro campaign run campaigns/paper.toml --shard 0/2
    repro campaign watch campaigns/paper.toml --follow
    repro campaign status campaigns/paper.toml --require-complete
    repro campaign report campaigns/paper.toml --out results/
    repro campaign agg campaigns/paper.toml --follow

Each experiment prints its table to stdout; ``--out DIR`` additionally
writes ``<experiment>.md`` (markdown table) and ``<experiment>.csv``.
DES experiments also print a perf summary — per-replication wall-clock,
engine event/compaction counts and Algorithm-1 decision-cache
hits/misses — so performance regressions show up in every run, not only
in the benchmark suite.  ``bench`` emits the kernel micro-benchmarks as
JSON.

``run --trace DIR`` writes one JSONL trace per (policy, seed)
replication (control-plane events only unless ``--trace-requests``);
``trace`` renders such files back into a summary table, a timeline, or
a narrated explanation of one Algorithm-1 decision, and validates them
against the event schema.

``run --metrics DIR`` writes one ``metrics.snapshot`` JSONL stream per
(policy, seed) replication; ``metrics show`` tabulates such streams and
``metrics export`` renders the latest snapshot in the Prometheus text
exposition format (self-validated before printing).  ``bench
--compare OLD.json`` re-measures the named benchmark gates and exits
non-zero if any slowed past ``--tolerance`` versus the committed
baseline (:mod:`repro.experiments.benchcmp`).

``campaign {run,status,report,agg}`` drives declarative scenario-grid
campaigns (:mod:`repro.campaigns`): ``run`` executes/resumes a spec
against its content-addressed result store (several concurrent ``run``
invocations — or static ``--shard i/N`` partitions — cooperate through
store-level cell leases with crash-stealing), ``status`` tabulates
per-cell cache state with a stable exit-code contract, ``report``
aggregates stored cells into the paper-style summary table, and
``agg`` streams that table live while workers fill the store.  The
campaigns package is imported lazily here — the library itself never
depends on it (the ``layering`` lint rule enforces that).

``lint`` runs the project's static-analysis rules (:mod:`repro.lint`,
see docs/static-analysis.md) with the contract CI relies on: exit 0 on
a clean tree, 1 on findings, 2 on internal error.  Like campaigns, the
lint package is a top layer imported lazily here.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .._version import __version__
from ..errors import ConfigurationError, TraceSchemaError
from ..metrics.report import format_markdown_table, format_table
from ..obs.bus import TraceConfig
from ..obs.render import explain_decision, render_timeline, trace_summary_table
from ..obs.schema import CONTROL_EVENTS, load_trace, validate_trace
from ..sim.calendar import SECONDS_PER_DAY, SECONDS_PER_WEEK
from . import figures
from .runner import RunResult
from .seeds import parse_seeds

__all__ = ["main", "available_experiments"]


def available_experiments() -> Dict[str, str]:
    """Mapping of experiment id → description."""
    return {
        "table2": "Table II: web workload min/max rates per weekday",
        "fig3": "Figure 3: web arrival-rate curve over one week",
        "fig4": "Figure 4: scientific arrival rates over one day",
        "fig5": "Figure 5: web policy comparison (DES, rate-scaled)",
        "fig6": "Figure 6: scientific policy comparison (DES, full scale)",
        "fig5-fluid": "Figure 5 at full paper scale (fluid engine)",
        "fig6-fluid": "Figure 6 cross-check (fluid engine)",
        "fig5-fullscale": "Figure 5 at full paper scale (vectorized DES)",
        "fig6-fullscale": "Figure 6 replications (vectorized DES)",
        "workload-analysis": "Contribution 2: workload characterization + provisioning feedback",
    }


def _parse_seeds(spec: str) -> List[int]:
    """CLI adapter over the shared grammar (comma lists + ``0-9`` ranges)."""
    try:
        return parse_seeds(spec)
    except (ConfigurationError, ValueError) as exc:
        raise SystemExit(f"bad --seeds value {spec!r}: {exc}")


def _trace_config(args: argparse.Namespace) -> Optional[TraceConfig]:
    """Build the run subcommand's TraceConfig (None = tracing off)."""
    if not getattr(args, "trace", None):
        return None
    events = None if args.trace_requests else tuple(sorted(CONTROL_EVENTS))
    return TraceConfig(sink="jsonl", path=args.trace, events=events)


def _metrics_config(args: argparse.Namespace):
    """Build the run subcommand's MetricsConfig (None = metrics off)."""
    if not getattr(args, "metrics", None):
        return None
    from ..obs.metrics import MetricsConfig

    return MetricsConfig(path=args.metrics)


def _build(experiment: str, args: argparse.Namespace) -> "figures.FigureData":
    seeds = _parse_seeds(args.seeds)
    quick = args.quick
    trace = _trace_config(args)
    metrics = _metrics_config(args)
    if experiment == "table2":
        return figures.table2_data()
    if experiment == "fig3":
        return figures.fig3_data(sampled=not quick)
    if experiment == "fig4":
        return figures.fig4_data(seed=seeds[0])
    if experiment == "fig5":
        horizon = SECONDS_PER_DAY if quick else SECONDS_PER_WEEK
        return figures.fig5_data(
            scale=args.scale,
            seeds=seeds,
            horizon=horizon,
            workers=args.workers,
            trace=trace,
            backend=args.backend,
            metrics=metrics,
        )
    if experiment == "fig6":
        return figures.fig6_data(
            seeds=seeds, workers=args.workers, trace=trace, backend=args.backend,
            metrics=metrics,
        )
    if experiment == "fig5-fluid":
        return figures.fig5_fluid_fullscale()
    if experiment == "fig6-fluid":
        return figures.fig6_fluid_fullscale()
    if experiment == "fig5-fullscale":
        # --quick shrinks the full-scale week the same way the campaign
        # quick grid does: one day at rate scale 1/100.
        if quick:
            return figures.fig5_vec_fullscale(
                scale=100.0, horizon=SECONDS_PER_DAY, seeds=seeds, workers=args.workers
            )
        return figures.fig5_vec_fullscale(seeds=seeds, workers=args.workers)
    if experiment == "fig6-fullscale":
        return figures.fig6_vec_fullscale(seeds=seeds, workers=args.workers)
    if experiment == "workload-analysis":
        return figures.workload_analysis_data(seed=seeds[0])
    raise SystemExit(f"unknown experiment {experiment!r}; try 'list'")


def _perf_summary(data: "figures.FigureData") -> List[str]:
    """Per-replication wall-clock + decision-cache lines for DES runs."""
    results = data.raw.get("results")
    if not isinstance(results, dict):
        return []
    lines: List[str] = []
    for policy, runs in results.items():
        if not isinstance(runs, (list, tuple)) or not runs:
            continue
        if not all(isinstance(r, RunResult) for r in runs):
            continue
        walls = ", ".join(f"s{r.seed}={r.wall_seconds:.2f}s" for r in runs)
        hits = sum(r.cache_hits for r in runs)
        misses = sum(r.cache_misses for r in runs)
        events = sum(r.events for r in runs)
        compactions = sum(r.compactions for r in runs)
        line = f"  {policy:<12s} wall [{walls}]  events {events}"
        if compactions:
            line += f"  compactions {compactions}"
        if hits or misses:
            total = hits + misses
            line += f"  decision cache {hits}/{total} hits"
        lines.append(line)
    if lines:
        lines.insert(
            0,
            "perf: per-replication wall-clock, engine events/compactions "
            "and Algorithm-1 decision cache",
        )
    return lines


def _trace_files(path: Path) -> List[Path]:
    """The JSONL files a ``trace`` invocation covers (sorted)."""
    if path.is_dir():
        files = sorted(path.glob("*.jsonl"))
        if not files:
            raise SystemExit(f"no .jsonl traces found in {path}")
        return files
    if not path.exists():
        raise SystemExit(f"trace file not found: {path}")
    return [path]


def _trace_command(args: argparse.Namespace) -> int:
    """Render/validate JSONL traces (the ``trace`` subcommand)."""
    failures = 0
    for trace_path in _trace_files(Path(args.path)):
        print(f"== {trace_path} ==")
        try:
            events = load_trace(trace_path)
        except TraceSchemaError as exc:
            print(f"  unreadable trace: {exc}")
            failures += 1
            continue
        if args.validate:
            try:
                n = validate_trace(events)
            except TraceSchemaError as exc:
                print(f"  INVALID: {exc}")
                failures += 1
                continue
            print(f"  valid: {n} event(s) conform to the trace schema")
        print(trace_summary_table(events, title=f"trace summary: {trace_path.name}"))
        if args.timeline is not None:
            for line in render_timeline(events, limit=args.timeline):
                print(line)
        if args.explain is not None:
            try:
                print(explain_decision(events, index=args.explain))
            except IndexError as exc:
                print(f"  {exc}")
                failures += 1
        print()
    return 1 if failures else 0


def _metrics_command(args: argparse.Namespace) -> int:
    """The ``metrics {show,export}`` handler.

    ``show`` tabulates one or more ``metrics.snapshot`` JSONL streams
    (every line schema-validated on load); ``export`` renders the last
    snapshot of one stream as Prometheus text — parsed back through
    :func:`~repro.obs.exporters.parse_prometheus_text` before printing,
    so malformed expositions can never be emitted.
    """
    from ..obs.exporters import (
        load_snapshots,
        parse_prometheus_text,
        snapshot_to_prometheus,
    )

    files = _trace_files(Path(args.path))
    if args.metrics_command == "export" and len(files) != 1:
        raise SystemExit(
            f"metrics export needs exactly one stream, got {len(files)}; "
            "pass a single .jsonl file"
        )
    failures = 0
    for stream in files:
        try:
            snapshots = load_snapshots(stream)
        except TraceSchemaError as exc:
            print(f"invalid snapshot stream: {exc}", file=sys.stderr)
            failures += 1
            continue
        if not snapshots:
            print(f"== {stream} ==\n  empty stream")
            continue
        if args.metrics_command == "export":
            if args.format == "jsonl":
                text = "".join(
                    json.dumps(s, sort_keys=True) + "\n" for s in snapshots
                )
            else:
                text = snapshot_to_prometheus(snapshots[-1])
                parse_prometheus_text(text)  # self-check before emitting
            if args.out:
                out_path = Path(args.out)
                out_path.parent.mkdir(parents=True, exist_ok=True)
                out_path.write_text(text)
                print(f"wrote {out_path}")
            else:
                print(text, end="")
            continue
        rows = [
            [
                f"{s['t']:.0f}",
                s["fleet"],
                s["accepted"],
                s["rejected"],
                s["completed"],
                s["violations"],
                f"{s['rejection_rate']:.2%}",
                f"{s['violation_fraction']:.2%}",
                f"{s['burn_rate']:.2f}",
                f"{s['p95']:.3f}",
            ]
            for s in snapshots
        ]
        print(
            format_table(
                ["t", "fleet", "acc", "rej", "done", "viol",
                 "rej%", "viol%", "burn", "p95<="],
                rows,
                title=f"metrics: {stream.name} ({len(snapshots)} snapshot(s), "
                f"Ts={snapshots[-1]['qos_target']}s)",
            )
        )
        print()
    return 1 if failures else 0


def _write_outputs(data: "figures.FigureData", out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    md = out_dir / f"{data.experiment_id}.md"
    md.write_text(
        f"# {data.title}\n\n" + format_markdown_table(data.headers, data.rows) + "\n"
    )
    csv_path = out_dir / f"{data.experiment_id}.csv"
    with csv_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(data.headers)
        writer.writerows(data.rows)


def _campaign_command(args: argparse.Namespace) -> int:
    """The ``campaign {run,watch,status,report,agg}`` handler.

    :mod:`repro.campaigns` is imported *here*, not at module level: the
    campaign engine sits above the experiments layer and nothing in the
    library proper may depend on it (the ``layering`` lint rule).

    Exit-code contract (stable for scripting):

    * ``run`` — 0 when no cell ended ``failed``; 1 otherwise.
    * ``status`` — 0; with ``--require-complete``, 1 unless every cell
      is ``cached`` or ``screened`` (``claimed``/in-flight cells count
      as incomplete and are reported separately).
    * ``watch`` / ``report`` / ``agg`` — 0 (they observe, never gate).
    * any subcommand — exits via ``SystemExit`` with a
      ``bad campaign spec: ...`` message on an invalid spec.
    """
    from ..campaigns import (
        CampaignSpec,
        ResultStore,
        campaign_agg,
        campaign_report,
        campaign_status_rows,
        run_campaign,
    )

    try:
        spec = CampaignSpec.load(args.spec)
    except ConfigurationError as exc:
        raise SystemExit(f"bad campaign spec: {exc}")
    store = ResultStore(spec.store_path(args.store))

    if args.campaign_command == "watch":
        from ..campaigns import watch

        watch(
            spec,
            store=store,
            quick=args.quick,
            follow=args.follow,
            interval=args.interval,
        )
        return 0

    if args.campaign_command == "agg":
        campaign_agg(
            spec,
            store=store,
            quick=args.quick,
            follow=args.follow,
            interval=args.interval,
        )
        if args.out:
            _write_outputs(
                campaign_report(spec, store, quick=args.quick), Path(args.out)
            )
        return 0

    if args.campaign_command == "run":
        trace = None
        if args.trace:
            trace = TraceConfig(
                sink="jsonl",
                path=args.trace,
                events=tuple(sorted(CONTROL_EVENTS)),
            )
        metrics = None
        if args.metrics:
            from ..obs.metrics import MetricsConfig

            # Path defaults to <store>/telemetry/ inside run_campaign,
            # which is where `campaign watch` looks for live streams.
            metrics = MetricsConfig()
        try:
            result = run_campaign(
                spec,
                store=store,
                workers=args.workers,
                quick=args.quick,
                trace=trace,
                metrics=metrics,
                max_cells=args.max_cells,
                progress=print,
                shard=args.shard,
                lease_ttl=args.lease_ttl,
            )
        except ConfigurationError as exc:
            raise SystemExit(f"campaign failed: {exc}")
        print(result.summary_line())
        return 1 if result.failed else 0

    if args.campaign_command == "status":
        headers, rows, counts = campaign_status_rows(spec, store, quick=args.quick)
        title = f"campaign: {spec.name}" + (
            f" — {spec.description}" if spec.description else ""
        )
        print(format_table(headers, rows, title=title))
        total = sum(counts.values())
        summary = ", ".join(f"{counts[s]} {s}" for s in sorted(counts))
        print(f"\n{total} cell(s): {summary}  (store: {store.root})")
        incomplete = total - counts.get("cached", 0) - counts.get("screened", 0)
        in_flight = counts.get("claimed", 0)
        if args.require_complete and incomplete:
            detail = f" ({in_flight} in flight on live worker(s))" if in_flight else ""
            print(f"INCOMPLETE: {incomplete} cell(s) not yet stored{detail}")
            return 1
        return 0

    # report
    data = campaign_report(spec, store, quick=args.quick)
    print(format_table(data.headers, data.rows, title=data.title))
    if args.out:
        _write_outputs(data, Path(args.out))
    return 0


def _lint_command(args: argparse.Namespace) -> int:
    """The ``lint`` handler — exit 0 clean / 1 findings / 2 internal error.

    :mod:`repro.lint` is imported *here*, not at module level: like the
    campaign engine it is a top layer nothing in the library proper may
    depend on (its own ``layering`` rule enforces that).
    """
    from ..errors import LintError
    from ..lint import (
        Baseline,
        apply_baseline,
        render_json,
        render_text,
        run_lint,
    )

    try:
        rules = None
        if args.rules:
            rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        cache_path = None if args.no_cache else ".reprolint-cache.json"
        result = run_lint(args.paths, rules=rules, cache_path=cache_path)
        if args.graph is not None:
            from ..lint import render_dot

            dot = render_dot(result.project.index)
            Path(args.graph).write_text(dot, encoding="utf-8")
            print(
                f"graph: wrote {args.graph} "
                f"({len(result.project.index.modules())} module(s))"
            )

        baseline_path = args.baseline
        if baseline_path is None and Path(".reprolint.json").is_file():
            baseline_path = ".reprolint.json"
        if args.update_baseline:
            target = baseline_path or ".reprolint.json"
            Baseline.from_findings(result.findings).save(target)
            print(
                f"baseline {target}: {len(result.findings)} finding(s) recorded"
            )
            return 0
        if baseline_path is not None:
            baseline = Baseline.load(baseline_path)
            fresh, baselined, stale = apply_baseline(result.findings, baseline)
        else:
            fresh, baselined, stale = result.findings, [], []

        if args.format == "json":
            print(
                render_json(
                    fresh,
                    result.files,
                    result.rules,
                    suppressed=result.suppressed,
                    baselined=baselined,
                    stale_baseline=stale,
                )
            )
        else:
            print(
                render_text(
                    fresh,
                    result.files,
                    suppressed=result.suppressed,
                    baselined=baselined,
                    stale_baseline=stale,
                    fix_hints=args.fix_hints,
                )
            )
            if result.cached:
                print(
                    f"cache: {result.cached}/{result.files} file(s) "
                    "replayed without re-parsing"
                )
        return 1 if fresh else 0
    except LintError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # noqa: BLE001 - internal errors are exit 2, not a traceback
        print(f"repro lint: internal error: {exc!r}", file=sys.stderr)
        return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of Calheiros et al., ICPP 2011.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", help="experiment id from 'list', or 'all'")
    runp.add_argument("--scale", type=float, default=200.0, help="web DES rate-scale factor (default 200)")
    runp.add_argument("--seeds", default="0", help="comma-separated replication seeds")
    runp.add_argument("--out", default=None, help="directory for .md/.csv outputs")
    runp.add_argument("--quick", action="store_true", help="shorter horizons for smoke runs")
    runp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for DES replications (default 1 = sequential)",
    )
    runp.add_argument(
        "--backend",
        choices=("des", "fluid"),
        default="des",
        help="execution backend for fig5/fig6 policy comparisons: the "
        "discrete-event simulator (default) or the fluid-flow engine",
    )
    runp.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write one JSONL trace per DES replication (a directory, or a "
        "path with {scenario}/{policy}/{seed} placeholders)",
    )
    runp.add_argument(
        "--trace-requests",
        action="store_true",
        help="also trace per-request events (admitted/rejected/completed); "
        "default traces control-plane events only",
    )
    runp.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write one metrics.snapshot JSONL stream per replication (a "
        "directory, or a path with {scenario}/{policy}/{seed} placeholders); "
        "applies to the fig5/fig6 policy comparisons",
    )
    tracep = sub.add_parser("trace", help="render/validate a JSONL trace")
    tracep.add_argument("path", help="a .jsonl trace file, or a directory of them")
    tracep.add_argument(
        "--validate",
        action="store_true",
        help="check every event against the trace schema (exit 1 on failure)",
    )
    tracep.add_argument(
        "--timeline",
        type=int,
        default=None,
        metavar="N",
        help="print a human-readable timeline of the first N events (0 = all)",
    )
    tracep.add_argument(
        "--explain",
        type=int,
        default=None,
        metavar="I",
        help="narrate Algorithm-1 decision #I recorded in the trace",
    )
    benchp = sub.add_parser("bench", help="kernel micro-benchmarks, emitted as JSON")
    benchp.add_argument("--events", type=int, default=50_000, help="chained events for the engine benchmark")
    benchp.add_argument(
        "--workers",
        type=int,
        default=None,
        help="also benchmark the parallel replication runner at this pool size",
    )
    benchp.add_argument("--quick", action="store_true", help="smaller iteration counts for CI smoke runs")
    benchp.add_argument("--out", default=None, help="write the JSON report to this file as well")
    benchp.add_argument(
        "--compare",
        default=None,
        metavar="OLD.json",
        help="regression mode: re-measure the named gates and diff against "
        "this committed baseline (exit 1 on regression); --quick skips the "
        "multi-second end-to-end gates",
    )
    benchp.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="slowdown ratio a gate may reach before failing --compare "
        "(default 3.0 — generous, to ride out cross-host jitter)",
    )

    metricsp = sub.add_parser(
        "metrics", help="tabulate/export metrics.snapshot JSONL streams"
    )
    metricssub = metricsp.add_subparsers(dest="metrics_command", required=True)
    showp = metricssub.add_parser(
        "show", help="tabulate snapshot streams (schema-validated on load)"
    )
    showp.add_argument("path", help="a snapshot .jsonl file, or a directory of them")
    exportp = metricssub.add_parser(
        "export", help="render the latest snapshot as Prometheus text"
    )
    exportp.add_argument("path", help="one snapshot .jsonl stream")
    exportp.add_argument(
        "--format", choices=("prometheus", "jsonl"), default="prometheus",
        help="prometheus renders the latest snapshot as text exposition; "
        "jsonl re-emits the validated snapshot series (default: prometheus)",
    )
    exportp.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the exposition to this file instead of stdout",
    )

    lintp = sub.add_parser(
        "lint",
        help="project-specific static analysis (determinism, layering, "
        "trace-schema, pool-safety, float-compare, rng-streams, "
        "lease-protocol, backend-parity)",
    )
    lintp.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to lint (default: src)",
    )
    lintp.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the stable CI contract)",
    )
    lintp.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline of grandfathered findings (default: .reprolint.json "
        "when it exists; baselined findings do not fail the run)",
    )
    lintp.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lintp.add_argument(
        "--fix-hints",
        action="store_true",
        help="print the remediation line under each finding (text format)",
    )
    lintp.add_argument(
        "--rules",
        default=None,
        metavar="R1,R2",
        help="comma-separated subset of rules to run (default: all)",
    )
    lintp.add_argument(
        "--no-cache",
        action="store_true",
        help="analyze everything fresh, bypassing (and not writing) the "
        "incremental cache (.reprolint-cache.json)",
    )
    lintp.add_argument(
        "--graph",
        default=None,
        metavar="FILE",
        help="also write the module import/call graph as Graphviz DOT",
    )

    campp = sub.add_parser(
        "campaign", help="declarative scenario-grid campaigns (run/status/report)"
    )
    campsub = campp.add_subparsers(dest="campaign_command", required=True)
    for name, chelp in (
        ("run", "execute (or resume) a campaign spec against its result store"),
        ("watch", "live per-cell progress table (snapshot streams + store)"),
        ("status", "per-cell cache status of a campaign (exit 0/1 contract)"),
        ("report", "aggregate stored cells into the paper-style summary table"),
        ("agg", "stream partial paper-style tables as cells land in the store"),
    ):
        cp = campsub.add_parser(name, help=chelp)
        cp.add_argument("spec", help="campaign spec file (.toml or .json)")
        cp.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help="result-store directory (default: the spec's, else .campaigns/<name>)",
        )
        cp.add_argument(
            "--quick",
            action="store_true",
            help="apply each scenario block's [scenarios.quick] overrides "
            "(quick cells are stored separately from full-grid cells)",
        )
        if name == "run":
            cp.add_argument(
                "--workers",
                type=int,
                default=None,
                help="process-pool size per cell group (default: the spec's; 0 = one per CPU)",
            )
            cp.add_argument(
                "--max-cells",
                type=int,
                default=None,
                metavar="N",
                help="execute at most N new cells, then stop (interrupt/resume testing)",
            )
            cp.add_argument(
                "--trace",
                default=None,
                metavar="PATH",
                help="write campaign.cell.* lifecycle events to a JSONL trace",
            )
            cp.add_argument(
                "--metrics",
                action="store_true",
                help="write one metrics.snapshot JSONL stream per cell under "
                "<store>/telemetry/ (what `campaign watch` reads live)",
            )
            cp.add_argument(
                "--shard",
                default=None,
                metavar="I/N",
                help="own only grid cells with index ≡ I (mod N); off-shard "
                "cells are skipped (run one process per shard)",
            )
            cp.add_argument(
                "--lease-ttl",
                type=float,
                default=None,
                metavar="SECONDS",
                help="steal a silent worker's cell lease after this many "
                "seconds (default: the spec's lease_ttl, 900)",
            )
        if name in ("watch", "agg"):
            cp.add_argument(
                "--follow",
                action="store_true",
                help="re-render until every cell is finished (default: once)",
            )
            cp.add_argument(
                "--interval",
                type=float,
                default=2.0,
                help="seconds between refreshes with --follow (default 2)",
            )
        if name == "status":
            cp.add_argument(
                "--require-complete",
                action="store_true",
                help="exit 1 unless every cell is cached or screened — "
                "claimed/in-flight cells count as incomplete (CI gate)",
            )
        if name in ("report", "agg"):
            cp.add_argument(
                "--out", default=None, help="directory for .md/.csv outputs"
            )

    args = parser.parse_args(argv)

    if args.command is None:
        parser.print_help()
        return 0

    if args.command == "list":
        for eid, desc in available_experiments().items():
            print(f"{eid:12s} {desc}")
        return 0

    if args.command == "campaign":
        return _campaign_command(args)

    if args.command == "lint":
        return _lint_command(args)

    if args.command == "trace":
        return _trace_command(args)

    if args.command == "metrics":
        return _metrics_command(args)

    if args.command == "bench":
        if args.compare:
            from .benchcmp import compare_to_baseline, format_comparison

            baseline_path = Path(args.compare)
            if not baseline_path.is_file():
                raise SystemExit(f"baseline not found: {baseline_path}")
            baseline = json.loads(baseline_path.read_text())
            results = compare_to_baseline(
                baseline, tolerance=args.tolerance, quick=args.quick
            )
            print(format_comparison(results))
            return 1 if any(r.regressed for r in results) else 0

        from .bench import kernel_bench

        report = kernel_bench(events=args.events, workers=args.workers, quick=args.quick)
        blob = json.dumps(report, indent=2, sort_keys=True)
        print(blob)
        if args.out:
            out_path = Path(args.out)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(blob + "\n")
        return 0

    targets = (
        list(available_experiments()) if args.experiment == "all" else [args.experiment]
    )
    for experiment in targets:
        data = _build(experiment, args)
        print(format_table(data.headers, data.rows, title=data.title))
        for line in _perf_summary(data):
            print(line)
        print()
        if args.out:
            _write_outputs(data, Path(args.out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
