"""Per-figure data regeneration.

One function per table/figure of the paper's evaluation section (see
the experiment index in DESIGN.md §5).  Each returns a
:class:`FigureData` — headers plus one row per series element — which
the benchmarks print and the CLI writes to disk.  Absolute numbers are
compared to the paper in EXPERIMENTS.md; the *shape* contracts (who
wins, by what factor) are asserted by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..backends.fluid import FluidBackend
from ..core.policies import AdaptivePolicy, ProvisioningPolicy, StaticPolicy
from ..metrics.report import summary_cells
from ..metrics.timeseries import bin_counts
from ..sim.calendar import SECONDS_PER_DAY, SECONDS_PER_WEEK
from ..sim.rng import RandomStreams
from ..workloads.scientific import ScientificWorkload
from ..workloads.web import TABLE_II, WebWorkload
from .parallel import PolicySpec
from .runner import RunResult, run_replications
from .scenario import ScenarioConfig, scientific_scenario, web_scenario

__all__ = [
    "FigureData",
    "WEB_STATIC_SIZES",
    "SCI_STATIC_SIZES",
    "table2_data",
    "fig3_data",
    "fig4_data",
    "policy_comparison",
    "fig5_data",
    "fig6_data",
    "fluid_policy_comparison",
    "fig5_fluid_fullscale",
    "fig6_fluid_fullscale",
    "workload_analysis_data",
]

#: Static fleet sizes the paper sweeps in the web scenario.
WEB_STATIC_SIZES: Tuple[int, ...] = (50, 75, 100, 125, 150)

#: Static fleet sizes the paper sweeps in the scientific scenario.
SCI_STATIC_SIZES: Tuple[int, ...] = (15, 30, 45, 60, 75)


@dataclass
class FigureData:
    """Regenerated data for one paper artifact.

    Attributes
    ----------
    experiment_id:
        DESIGN.md experiment index id (``fig5``, ``table2`` …).
    title:
        Human-readable caption.
    headers, rows:
        The printable table.
    raw:
        Free-form payload (per-replication results, series arrays…)
        for tests and plotting.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    raw: Dict[str, object] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Table II and the arrival-curve figures
# ----------------------------------------------------------------------
def table2_data() -> FigureData:
    """Table II — min/max requests per second on each week day."""
    names = ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday")
    # The paper's table is ordered Sunday-first.
    order = (6, 0, 1, 2, 3, 4, 5)
    rows: List[List[object]] = []
    day_names_sunday_first = ("Sunday",) + names
    for label, day in zip(day_names_sunday_first, order):
        rmax, rmin = TABLE_II[day]
        rows.append([label, rmax, rmin])
    return FigureData(
        experiment_id="table2",
        title="Table II: min/max requests per second per week day (web)",
        headers=["week day", "maximum", "minimum"],
        rows=rows,
        raw={"table": dict(TABLE_II)},
    )


def fig3_data(bin_width: float = 3600.0, seed: int = 0, sampled: bool = False) -> FigureData:
    """Figure 3 — average requests/s over one week (web workload).

    By default returns the exact Eq.-2 model curve; with
    ``sampled=True`` it also generates one realized week (at full paper
    scale this is ≈ 500 M arrivals' worth of 60-s interval counts —
    realized per interval, not per request, so it stays cheap).
    """
    web = WebWorkload()
    grid = np.arange(0.0, SECONDS_PER_WEEK, bin_width)
    curve = np.asarray(web.mean_rate(grid))
    raw: Dict[str, object] = {"times": grid, "model_rate": curve}
    if sampled:
        rng = RandomStreams(seed).get("fig3.arrivals")
        realized = []
        t = 0.0
        while t < SECONDS_PER_WEEK:
            n = web.sample_window(rng, t).size
            realized.append(n / web.window)
            t += web.window
        realized_arr = np.asarray(realized)
        # Downsample realized 60-s rates onto the requested bins.
        per_bin = max(1, int(bin_width / web.window))
        trimmed = realized_arr[: (realized_arr.size // per_bin) * per_bin]
        raw["realized_rate"] = trimmed.reshape(-1, per_bin).mean(axis=1)
    rows = [
        [f"{t/86400.0:.3f}", float(r)]
        for t, r in zip(grid[:: max(1, len(grid) // 28)], curve[:: max(1, len(grid) // 28)])
    ]
    return FigureData(
        experiment_id="fig3",
        title="Figure 3: average requests/s received over one week (web)",
        headers=["day", "requests/s"],
        rows=rows,
        raw=raw,
    )


def fig4_data(bin_width: float = 60.0, seed: int = 0) -> FigureData:
    """Figure 4 — requests/s over one day (scientific workload).

    Generates one realized day (≈ 10 k tasks) and bins arrivals; also
    includes the piecewise-constant expected-rate curve.
    """
    sci = ScientificWorkload()
    rng = RandomStreams(seed).get("fig4.arrivals")
    arrivals = []
    t = 0.0
    while t < SECONDS_PER_DAY:
        arrivals.append(sci.sample_window(rng, t))
        t += sci.window
    times = np.concatenate(arrivals) if arrivals else np.empty(0)
    starts, rates = bin_counts(times, 0.0, SECONDS_PER_DAY, bin_width)
    model = np.asarray(sci.mean_rate(starts))
    step = max(1, len(starts) // 24)
    rows = [
        [f"{s/3600.0:.2f}h", float(r), float(mr)]
        for s, r, mr in zip(starts[::step], rates[::step], model[::step])
    ]
    return FigureData(
        experiment_id="fig4",
        title="Figure 4: requests/s received over one day (scientific)",
        headers=["hour", "realized req/s", "model req/s"],
        rows=rows,
        raw={"times": starts, "realized_rate": rates, "model_rate": model, "arrivals": times},
    )


def workload_analysis_data(seed: int = 0) -> FigureData:
    """Contribution 2 — characterization of the two production workloads.

    The paper's §V analysis motivates why workload modeling feeds
    provisioning; this regenerates it quantitatively: both workloads
    are profiled (rate statistics, burstiness, batch structure, peak
    window) and the derived provisioning feedback — predictor safety
    factor and fleet band — is reported next to the paper's hand-picked
    values.
    """
    from ..workloads.analysis import characterize

    rng = RandomStreams(seed)
    web = WebWorkload().scaled(100.0)
    sci = ScientificWorkload()
    web_profile = characterize(web, rng.get("analysis.web"), SECONDS_PER_DAY, 60.0)
    sci_profile = characterize(sci, rng.get("analysis.sci"), SECONDS_PER_DAY, 300.0)
    headers = [
        "workload",
        "mean rate (req/s)",
        "p99 rate",
        "peak/mean",
        "burstiness (detrended IoD)",
        "batch fraction",
        "peak hours",
        "safety factor",
        "fleet band (m)",
    ]
    rows = []
    for name, profile, tm, rate_scale in (
        ("web", web_profile, 0.105, 100.0),
        ("scientific", sci_profile, 315.0, 1.0),
    ):
        band = profile.recommended_fleet(service_time=tm * (rate_scale if name == "web" else 1.0))
        peak = profile.peak_hours
        rows.append(
            [
                name,
                profile.mean_rate * rate_scale,
                profile.rate_p99 * rate_scale,
                profile.peak_to_mean,
                profile.index_of_dispersion_detrended,
                profile.batch_fraction,
                f"{peak[0]:.1f}-{peak[1]:.1f}" if peak else "none",
                profile.recommended_safety_factor(),
                f"{band[0]}-{band[1]}",
            ]
        )
    return FigureData(
        experiment_id="workload-analysis",
        title="Workload characterization (paper contribution 2)",
        headers=headers,
        rows=rows,
        raw={"web": web_profile, "scientific": sci_profile},
    )


# ----------------------------------------------------------------------
# Figures 5 and 6 — the policy-comparison panels
# ----------------------------------------------------------------------
#: The Figure-5/6 panel metrics, in column order (see policy_comparison).
_PANEL_FIELDS: Tuple[str, ...] = (
    "min_instances",
    "max_instances",
    "rejection_rate",
    "utilization",
    "vm_hours",
    "mean_response_time",
    "response_time_std",
    "qos_violations",
)


def policy_comparison(
    scenario: ScenarioConfig,
    policies: Sequence[Callable[[], ProvisioningPolicy]],
    seeds: Sequence[int] = (0,),
    experiment_id: str = "policy-comparison",
    title: str = "",
    workers: int = 1,
    trace: Optional[object] = None,
    backend: object = "des",
    metrics: Optional[object] = None,
) -> FigureData:
    """Run every policy over every seed and build the four-panel table.

    One row per policy with the metrics of all four sub-figures:
    (a) min/max instances, (b) rejection & utilization rates,
    (c) VM hours, (d) mean response time ± σ.  ``workers > 1``
    dispatches each policy's replications to a process pool (results
    are bit-identical to the sequential path).  ``trace`` (``None`` or
    a :class:`~repro.obs.bus.TraceConfig`) is forwarded to every
    replication; point its path at a directory so each (policy, seed)
    run writes its own JSONL file.  ``backend`` selects the execution
    backend (``"des"``, ``"fluid"``, or an
    :class:`~repro.backends.base.ExecutionBackend` instance) for every
    replication.  ``metrics`` (``None`` or a
    :class:`~repro.obs.metrics.MetricsConfig`) is likewise forwarded —
    with a path set, each (policy, seed) run writes its own
    ``metrics.snapshot`` JSONL stream.
    """
    headers = [
        "policy",
        "min inst",
        "max inst",
        "rejection",
        "utilization",
        "VM hours",
        "avg Tr (s)",
        "std Tr (s)",
        "QoS violations",
    ]
    rows: List[List[object]] = []
    all_results: Dict[str, List[RunResult]] = {}
    for factory in policies:
        results = run_replications(
            scenario, factory, seeds=seeds, workers=workers, trace=trace,
            backend=backend, metrics=metrics,
        )
        name = results[0].policy
        all_results[name] = results
        rows.append([name] + summary_cells(results, _PANEL_FIELDS))
    return FigureData(
        experiment_id=experiment_id,
        title=title or f"Policy comparison on {scenario.name}",
        headers=headers,
        rows=rows,
        raw={"results": all_results, "scenario": scenario},
    )


def _web_policies(
    static_sizes: Sequence[int] = WEB_STATIC_SIZES,
) -> List[Callable[[], ProvisioningPolicy]]:
    # PolicySpec (not lambdas) so the factories survive pickling into a
    # process pool when the caller asks for workers > 1.
    factories: List[Callable[[], ProvisioningPolicy]] = [PolicySpec(AdaptivePolicy)]
    for n in static_sizes:
        factories.append(PolicySpec(StaticPolicy, n))
    return factories


def fig5_data(
    scale: float = 200.0,
    seeds: Sequence[int] = (0,),
    horizon: float = SECONDS_PER_WEEK,
    static_sizes: Sequence[int] = WEB_STATIC_SIZES,
    workers: int = 1,
    trace: Optional[object] = None,
    backend: object = "des",
    metrics: Optional[object] = None,
) -> FigureData:
    """Figure 5 — web scenario, Adaptive vs Static-{50..150}.

    The default backend runs the DES at rate scale ``1/scale``
    (behaviour-preserving; see DESIGN.md §4) — ``scale=200`` keeps the
    full week tractable.  ``backend="fluid"`` evaluates the identical
    scenario analytically.
    """
    scenario = web_scenario(scale=scale, horizon=horizon)
    data = policy_comparison(
        scenario,
        _web_policies(static_sizes),
        seeds=seeds,
        experiment_id="fig5",
        title="Figure 5: web scenario (Wikipedia workload), one week",
        workers=workers,
        trace=trace,
        backend=backend,
        metrics=metrics,
    )
    return data


def fig6_data(
    seeds: Sequence[int] = (0, 1, 2),
    horizon: float = SECONDS_PER_DAY,
    static_sizes: Sequence[int] = SCI_STATIC_SIZES,
    workers: int = 1,
    trace: Optional[object] = None,
    backend: object = "des",
    metrics: Optional[object] = None,
) -> FigureData:
    """Figure 6 — scientific scenario at full paper scale, one day."""
    scenario = scientific_scenario(horizon=horizon)
    factories: List[Callable[[], ProvisioningPolicy]] = [
        PolicySpec(AdaptivePolicy, update_interval=1800.0)
    ]
    for n in static_sizes:
        factories.append(PolicySpec(StaticPolicy, n))
    return policy_comparison(
        scenario,
        factories,
        seeds=seeds,
        experiment_id="fig6",
        title="Figure 6: scientific scenario (Grid Workloads Archive BoT), one day",
        workers=workers,
        trace=trace,
        backend=backend,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# Full-paper-scale fluid companions
# ----------------------------------------------------------------------
def fluid_policy_comparison(
    scenario: ScenarioConfig,
    static_sizes: Sequence[int],
    experiment_id: str,
    title: str,
    update_interval: Optional[float] = None,
    dt: float = 60.0,
    flow_model: str = "deterministic",
) -> FigureData:
    """Adaptive + Static-N evaluated by the fluid backend.

    A thin wrapper over :func:`policy_comparison` with
    ``backend=FluidBackend(...)`` — the policies, summary table, and
    ``raw["results"]`` layout (policy name → list of
    :class:`~repro.backends.base.RunMetrics`) are identical to the DES
    path, so tooling does not care which backend produced a figure.
    """
    interval = (
        update_interval if update_interval is not None else scenario.update_interval
    )
    factories: List[Callable[[], ProvisioningPolicy]] = [
        PolicySpec(
            AdaptivePolicy, update_interval=interval, lead_time=scenario.lead_time
        )
    ]
    for n in static_sizes:
        factories.append(PolicySpec(StaticPolicy, n))
    return policy_comparison(
        scenario,
        factories,
        seeds=(0,),
        experiment_id=experiment_id,
        title=title,
        backend=FluidBackend(dt=dt, flow_model=flow_model),
    )


def fig5_fluid_fullscale() -> FigureData:
    """Figure 5 regenerated at the paper's full scale (fluid engine)."""
    return fluid_policy_comparison(
        web_scenario(scale=1.0),
        WEB_STATIC_SIZES,
        experiment_id="fig5-fluid",
        title="Figure 5 (full scale, fluid engine): web scenario",
    )


def fig6_fluid_fullscale() -> FigureData:
    """Figure 6 regenerated by the fluid engine (cross-check)."""
    return fluid_policy_comparison(
        scientific_scenario(),
        SCI_STATIC_SIZES,
        experiment_id="fig6-fluid",
        title="Figure 6 (fluid engine cross-check): scientific scenario",
        update_interval=1800.0,
    )


# ----------------------------------------------------------------------
# Full-paper-scale vectorized-DES runs
# ----------------------------------------------------------------------
def fig5_vec_fullscale(
    scale: float = 1.0,
    horizon: float = SECONDS_PER_WEEK,
    seeds: Sequence[int] = (0,),
    workers: int = 1,
) -> FigureData:
    """Figure 5 at the paper's full scale on the batched DES.

    The stochastic counterpart of :func:`fig5_fluid_fullscale`: the
    ``des-vec`` backend simulates every individual request of the
    ~500 M-request week through the structure-of-arrays data plane, so
    the full grid is exact DES rather than a fluid approximation.
    """
    return policy_comparison(
        web_scenario(scale=scale, horizon=horizon),
        _web_policies(),
        seeds=seeds,
        experiment_id="fig5-fullscale",
        title="Figure 5 (full scale, vectorized DES): web scenario",
        workers=workers,
        backend="des-vec",
    )


def fig6_vec_fullscale(
    seeds: Sequence[int] = (0, 1, 2), workers: int = 1
) -> FigureData:
    """Figure 6 replications on the batched DES."""
    factories: List[Callable[[], ProvisioningPolicy]] = [
        PolicySpec(AdaptivePolicy, update_interval=1800.0)
    ]
    for n in SCI_STATIC_SIZES:
        factories.append(PolicySpec(StaticPolicy, n))
    return policy_comparison(
        scientific_scenario(),
        factories,
        seeds=seeds,
        experiment_id="fig6-fullscale",
        title="Figure 6 (vectorized DES): scientific scenario",
        workers=workers,
        backend="des-vec",
    )
