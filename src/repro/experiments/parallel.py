"""Parallel replication execution — a process-pool backend for sweeps.

Replications are embarrassingly parallel: each one builds its own
engine, random streams, and data plane from ``(scenario, policy, seed)``
alone, so N seeds can run on N cores with zero shared state.  This
module gives :func:`~repro.experiments.runner.run_replications` that
backend:

* work items are picklable ``(scenario, policy_spec, seed, trace,
  backend, metrics)`` tuples — :class:`PolicySpec` is the picklable
  stand-in for the ad-hoc lambda factories used in scripts, ``trace``
  is ``None`` or a :class:`~repro.obs.bus.TraceConfig` (a live bus
  cannot cross the process boundary), ``backend`` is a spec string or
  picklable :class:`~repro.backends.base.ExecutionBackend`, and
  ``metrics`` is ``None`` or a
  :class:`~repro.obs.metrics.MetricsConfig`;
* dispatch is chunked (``chunk_size`` seeds per pickle round-trip) and
  results come back **in seed order**;
* replications use the exact same per-seed spawned random streams as
  the sequential path, so results are bit-identical either way (the
  common-random-numbers discipline is a property of the seed, not of
  the execution order) — only the ``wall_seconds`` diagnostic and the
  ``profile`` timings differ, and both are excluded from
  ``RunResult`` equality.  Observability counters (decision-cache
  hits/misses, heap compactions, event counts, phase profiles) are
  carried *inside* each pickled ``RunResult``, so nothing measured in
  a worker process is lost when the pool shuts down;
* the sequential path is the graceful fallback whenever the pool is
  not usable: ``workers <= 1``, an unpicklable scenario/factory, or a
  platform refusing to fork/spawn.  Fallbacks are reported through the
  ``repro.experiments.parallel`` logger (structured ``key=value``
  records), not :mod:`warnings`.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.policies import ProvisioningPolicy
from ..obs.bus import TraceConfig
from ..obs.log import get_logger, kv
from .scenario import ScenarioConfig

_log = get_logger(__name__)

__all__ = ["PolicySpec", "default_workers", "run_replications_parallel"]


class PolicySpec:
    """Picklable recipe for building a fresh policy per replication.

    ``PolicySpec(StaticPolicy, 20)`` replaces ``lambda: StaticPolicy(20)``
    wherever the factory must cross a process boundary; calling the spec
    builds a new policy instance.

    Parameters
    ----------
    factory:
        A picklable callable returning a policy — typically the policy
        class itself.
    *args, **kwargs:
        Arguments forwarded on every build.
    """

    __slots__ = ("factory", "args", "kwargs")

    def __init__(self, factory: Callable[..., ProvisioningPolicy], *args: Any, **kwargs: Any) -> None:
        self.factory = factory
        self.args = tuple(args)
        self.kwargs = dict(kwargs)

    def __call__(self) -> ProvisioningPolicy:
        return self.factory(*self.args, **self.kwargs)

    def __reduce__(self):
        return (_rebuild_policy_spec, (self.factory, self.args, self.kwargs))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [getattr(self.factory, "__name__", repr(self.factory))]
        parts += [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in self.kwargs.items()]
        return f"PolicySpec({', '.join(parts)})"


def _rebuild_policy_spec(factory, args, kwargs) -> "PolicySpec":
    return PolicySpec(factory, *args, **kwargs)


def default_workers() -> int:
    """Worker count to use when the caller says "parallel" unqualified."""
    return max(1, os.cpu_count() or 1)


def _run_task(
    task: Tuple[
        ScenarioConfig,
        Callable[[], ProvisioningPolicy],
        int,
        Optional[TraceConfig],
        Any,
        Any,
    ]
):
    """Process-pool entry point: one replication from a picklable tuple."""
    scenario, policy_factory, seed, trace, backend, metrics = task
    from .runner import run_policy

    return run_policy(
        scenario, policy_factory(), seed=seed, trace=trace, backend=backend,
        metrics=metrics,
    )


def _sequential(
    scenario: ScenarioConfig,
    policy_factory: Callable[[], ProvisioningPolicy],
    seeds: Sequence[int],
    trace: Optional[Any] = None,
    backend: Any = "des",
    metrics: Optional[Any] = None,
) -> List[Any]:
    from .runner import run_policy

    return [
        run_policy(
            scenario, policy_factory(), seed=s, trace=trace, backend=backend,
            metrics=metrics,
        )
        for s in seeds
    ]


def run_replications_parallel(
    scenario: ScenarioConfig,
    policy_factory: Callable[[], ProvisioningPolicy],
    seeds: Sequence[int] = (0, 1, 2),
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    trace: Optional[Any] = None,
    backend: Any = "des",
    metrics: Optional[Any] = None,
) -> List[Any]:
    """Run one replication per seed on a process pool.

    Parameters
    ----------
    scenario, policy_factory, seeds:
        Exactly as :func:`~repro.experiments.runner.run_replications`;
        the factory must be picklable for the pool to be used
        (:class:`PolicySpec` or any module-level callable qualifies —
        a locally-defined lambda falls back to sequential, logging a
        warning on the ``repro.experiments.parallel`` logger).
    workers:
        Pool size; ``None`` means one per CPU, ``<= 1`` forces the
        sequential path.
    chunk_size:
        Seeds per pickled dispatch; defaults to a chunking that hands
        every worker ~one chunk.
    trace:
        ``None`` or a :class:`~repro.obs.bus.TraceConfig`.  Each worker
        builds (and closes) its own bus, so the config's path should
        resolve per-run — point it at a directory or use placeholders.
        A live :class:`~repro.obs.bus.TraceBus` is unpicklable and
        triggers the sequential fallback.
    backend:
        Execution backend per replication — ``"des"`` (default),
        ``"fluid"``, or a picklable
        :class:`~repro.backends.base.ExecutionBackend` instance.
    metrics:
        ``None`` or a picklable :class:`~repro.obs.metrics.MetricsConfig`.
        Each worker builds its own registry; the finalized dumps travel
        home inside each pickled result's ``telemetry`` field, where
        :func:`repro.obs.metrics.merge_telemetry` combines them
        losslessly (counters add, histograms Chan-merge).

    Returns
    -------
    list
        :class:`~repro.backends.base.RunMetrics` per seed, **in seed
        order**, bit-identical to the sequential path except for the
        ``wall_seconds`` diagnostic and the (equality-excluded)
        ``profile`` timings.
    """
    if workers is None:
        workers = default_workers()
    n_workers = min(int(workers), len(seeds)) if seeds else 1
    if n_workers <= 1:
        return _sequential(
            scenario, policy_factory, seeds, trace=trace, backend=backend,
            metrics=metrics,
        )
    tasks = [
        (scenario, policy_factory, int(seed), trace, backend, metrics)
        for seed in seeds
    ]
    try:
        pickle.dumps(tasks[0])
    except Exception as exc:  # noqa: BLE001 - any pickling failure falls back
        _log.warning(
            "falling back to sequential replications: %s",
            kv(
                reason="unpicklable-work-item",
                hint="use PolicySpec instead of a lambda (and TraceConfig, not TraceBus)",
                scenario=scenario.name,
                seeds=len(seeds),
                error=repr(exc),
            ),
        )
        return _sequential(
            scenario, policy_factory, seeds, trace=trace, backend=backend,
            metrics=metrics,
        )
    if chunk_size is None:
        chunk_size = max(1, len(tasks) // n_workers)
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            return list(pool.map(_run_task, tasks, chunksize=int(chunk_size)))
    except (OSError, ValueError, RuntimeError, ImportError) as exc:
        # Sandboxes without fork/spawn, broken pools, missing
        # multiprocessing primitives: degrade, don't die.
        _log.warning(
            "falling back to sequential replications: %s",
            kv(
                reason="process-pool-unavailable",
                workers=n_workers,
                scenario=scenario.name,
                seeds=len(seeds),
                error=repr(exc),
            ),
        )
        return _sequential(
            scenario, policy_factory, seeds, trace=trace, backend=backend,
            metrics=metrics,
        )
