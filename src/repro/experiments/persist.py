"""Result persistence — JSON round-tripping of experiment outputs.

Long parameter sweeps (the Figure-5 week at low scale factors takes
minutes) should never have to be re-run to re-tabulate: the unified
:class:`~repro.backends.base.RunMetrics` record serializes to plain
JSON with a format header, so saved result sets survive library
upgrades with an explicit version check instead of a silent misparse.

Format history
--------------
* **version 2** (current) — one ``kind: "metrics"`` entry per result,
  the JSON form of :class:`RunMetrics` (backend tag included).
* **version 1** — two result kinds: ``"run"`` (the pre-backend
  ``RunResult``) and ``"fluid"`` (the fluid engine's ``FluidResult``).
  :func:`load_results` still reads these, upgrading each blob to a
  :class:`RunMetrics`: ``run`` blobs map field-for-field with
  ``backend="des"``; ``fluid`` blobs carried no identification or
  diagnostics, so ``scenario``/``policy`` load as ``"unknown"``,
  ``seed`` as 0, ``completed`` as the accepted count, and the missing
  counters as 0 (``backend="fluid"``).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import List, Sequence, Union

from ..backends.base import RunMetrics
from ..errors import ConfigurationError

__all__ = ["result_to_dict", "result_from_dict", "save_results", "load_results"]

#: Format identifier written into every results file.
_FORMAT = "repro-results"
_VERSION = 2

#: Fields of a version-1 ``"fluid"`` blob (FluidResult, now retired).
_V1_FLUID_FIELDS = frozenset(
    {
        "total_requests",
        "accepted",
        "rejected",
        "rejection_rate",
        "mean_response_time",
        "min_instances",
        "max_instances",
        "vm_hours",
        "utilization",
        "fleet_series",
    }
)


def result_to_dict(result: RunMetrics) -> dict:
    """Serialize one result to a JSON-safe dict (with a ``kind`` tag)."""
    if not isinstance(result, RunMetrics):
        raise ConfigurationError(
            f"cannot serialize {type(result).__name__}; expected RunMetrics"
        )
    payload = dataclasses.asdict(result)
    # Tuples (fleet/control series) become lists in JSON; normalized on
    # load.
    return {"kind": "metrics", "data": payload}


def _series(data: dict, key: str) -> None:
    if key in data:
        data[key] = tuple(tuple(point) for point in data[key])


def _from_metrics(data: dict) -> RunMetrics:
    _series(data, "fleet_series")
    _series(data, "control_series")
    return RunMetrics(**data)


def _from_v1_run(data: dict) -> RunMetrics:
    # A v1 "run" blob is a RunMetrics minus the backend split's fields.
    data.setdefault("backend", "des")
    data.setdefault("control_series", ())
    return _from_metrics(data)


def _from_v1_fluid(data: dict) -> RunMetrics:
    unknown = set(data) - _V1_FLUID_FIELDS
    if unknown:
        raise ConfigurationError(
            f"v1 fluid result has unexpected fields {sorted(unknown)}"
        )
    _series(data, "fleet_series")
    return RunMetrics(
        scenario="unknown",
        policy="unknown",
        seed=0,
        total_requests=data["total_requests"],
        accepted=data["accepted"],
        completed=data["accepted"],
        rejected=data["rejected"],
        rejection_rate=data["rejection_rate"],
        mean_response_time=data["mean_response_time"],
        response_time_std=0.0,
        qos_violations=0,
        min_instances=data["min_instances"],
        max_instances=data["max_instances"],
        vm_hours=data["vm_hours"],
        core_hours=data["vm_hours"],
        failures=0,
        lost_requests=0,
        utilization=data["utilization"],
        wall_seconds=0.0,
        events=0,
        fleet_series=data.get("fleet_series", ()),
        control_series=data.get("fleet_series", ()),
        backend="fluid",
    )


#: (version, kind) → decoder.
_DECODERS = {
    (2, "metrics"): _from_metrics,
    (1, "run"): _from_v1_run,
    (1, "fluid"): _from_v1_fluid,
}

_SUPPORTED_VERSIONS = frozenset(v for v, _ in _DECODERS)


def result_from_dict(blob: dict, version: int = _VERSION) -> RunMetrics:
    """Inverse of :func:`result_to_dict` (version-aware)."""
    kind = blob.get("kind")
    decoder = _DECODERS.get((int(version), kind))
    if decoder is None:
        raise ConfigurationError(
            f"unknown result kind {kind!r} for format version {version}"
        )
    return decoder(dict(blob["data"]))


def save_results(path: Union[str, Path], results: Sequence[RunMetrics]) -> None:
    """Write a result set to ``path`` as versioned JSON."""
    path = Path(path)
    doc = {
        "format": _FORMAT,
        "version": _VERSION,
        "results": [result_to_dict(r) for r in results],
    }
    path.write_text(json.dumps(doc, indent=1, sort_keys=True))


def load_results(path: Union[str, Path]) -> List[RunMetrics]:
    """Load a result set written by :func:`save_results`.

    Reads the current format (version 2) and transparently upgrades
    version-1 files written before the backend unification.

    Raises
    ------
    ConfigurationError
        If the file is not a repro results file or has an unsupported
        format version.
    """
    path = Path(path)
    doc = json.loads(path.read_text())
    if doc.get("format") != _FORMAT:
        raise ConfigurationError(f"{path}: not a repro results file")
    version = doc.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise ConfigurationError(
            f"{path}: unsupported results version {version!r} "
            f"(this build reads versions {sorted(_SUPPORTED_VERSIONS)})"
        )
    return [result_from_dict(blob, version=version) for blob in doc["results"]]
