"""Result persistence — JSON round-tripping of experiment outputs.

Long parameter sweeps (the Figure-5 week at low scale factors takes
minutes) should never have to be re-run to re-tabulate: the runner's
:class:`~repro.experiments.runner.RunResult` and the fluid engine's
:class:`~repro.sim.fluid.FluidResult` serialize to plain JSON with a
format header, so saved result sets survive library upgrades with an
explicit version check instead of a silent misparse.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import List, Sequence, Union

from ..errors import ConfigurationError
from ..sim.fluid import FluidResult
from .runner import RunResult

__all__ = ["result_to_dict", "result_from_dict", "save_results", "load_results"]

#: Format identifier written into every results file.
_FORMAT = "repro-results"
_VERSION = 1

_KIND_TO_TYPE = {"run": RunResult, "fluid": FluidResult}


def result_to_dict(result: Union[RunResult, FluidResult]) -> dict:
    """Serialize one result to a JSON-safe dict (with a ``kind`` tag)."""
    if isinstance(result, RunResult):
        kind = "run"
    elif isinstance(result, FluidResult):
        kind = "fluid"
    else:
        raise ConfigurationError(
            f"cannot serialize {type(result).__name__}; expected RunResult or FluidResult"
        )
    payload = dataclasses.asdict(result)
    # Tuples (fleet series) become lists in JSON; normalized on load.
    return {"kind": kind, "data": payload}


def result_from_dict(blob: dict) -> Union[RunResult, FluidResult]:
    """Inverse of :func:`result_to_dict`."""
    kind = blob.get("kind")
    cls = _KIND_TO_TYPE.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown result kind {kind!r}")
    data = dict(blob["data"])
    if "fleet_series" in data:
        data["fleet_series"] = tuple(tuple(point) for point in data["fleet_series"])
    return cls(**data)


def save_results(
    path: Union[str, Path], results: Sequence[Union[RunResult, FluidResult]]
) -> None:
    """Write a result set to ``path`` as versioned JSON."""
    path = Path(path)
    doc = {
        "format": _FORMAT,
        "version": _VERSION,
        "results": [result_to_dict(r) for r in results],
    }
    path.write_text(json.dumps(doc, indent=1, sort_keys=True))


def load_results(path: Union[str, Path]) -> List[Union[RunResult, FluidResult]]:
    """Load a result set written by :func:`save_results`.

    Raises
    ------
    ConfigurationError
        If the file is not a repro results file or has an unsupported
        format version.
    """
    path = Path(path)
    doc = json.loads(path.read_text())
    if doc.get("format") != _FORMAT:
        raise ConfigurationError(f"{path}: not a repro results file")
    if doc.get("version") != _VERSION:
        raise ConfigurationError(
            f"{path}: unsupported results version {doc.get('version')!r} "
            f"(this build reads version {_VERSION})"
        )
    return [result_from_dict(blob) for blob in doc["results"]]
