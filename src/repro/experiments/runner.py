"""Experiment runner — the backend-agnostic replication entry point.

One :func:`run_policy` call = one replication of (scenario, policy) on
a chosen execution backend: ``backend="des"`` (default) wires the full
event-per-request data plane, ``backend="fluid"`` evaluates the same
control plane analytically (see :mod:`repro.backends`).  Either way the
result is one unified :class:`~repro.backends.base.RunMetrics` record —
response times normalized back to paper scale when the scenario is
rescaled — so replication fan-out, persistence, figures, and the CLI
perf summary need not care how a run was executed.

``RunResult`` is kept as a module-level alias of :class:`RunMetrics`
for the many call sites (and saved result sets) that predate the
backend split.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from ..backends import RunMetrics, build_context, resolve_backend
from ..backends.base import ExecutionBackend
from ..cloud.loadbalancer import LoadBalancer
from ..core.policies import ProvisioningPolicy
from ..obs.bus import TraceBus, TraceConfig
from .scenario import ScenarioConfig

__all__ = ["RunResult", "RunMetrics", "build_context", "run_policy", "run_replications"]

#: Backward-compatible alias — one result type across all backends.
RunResult = RunMetrics


def run_policy(
    scenario: ScenarioConfig,
    policy: ProvisioningPolicy,
    seed: int = 0,
    balancer: Optional[LoadBalancer] = None,
    trace: Optional[Union[TraceConfig, TraceBus]] = None,
    audit: Optional[object] = None,
    backend: Union[str, ExecutionBackend, None] = "des",
    metrics: Optional[object] = None,
) -> RunMetrics:
    """Run one replication of (scenario, policy) and collect metrics.

    Parameters
    ----------
    trace:
        ``None`` (default) runs untraced.  A
        :class:`~repro.obs.bus.TraceConfig` builds (and closes) a
        per-run bus — this is the picklable form the parallel path
        needs.  A ready :class:`~repro.obs.bus.TraceBus` is used as-is
        and left open, so callers can inspect an in-memory ring buffer
        after the run.
    audit:
        Optional :class:`~repro.obs.audit.DecisionAuditLog` capturing
        every Algorithm-1 invocation of this run.
    backend:
        ``"des"`` (default), ``"fluid"``, or a ready
        :class:`~repro.backends.base.ExecutionBackend` instance.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsConfig`; the run's
        finalized telemetry (registry + ``metrics.snapshot`` series)
        lands in ``RunMetrics.telemetry``.  Only forwarded when set, so
        backend doubles without the parameter keep working.
    """
    be = resolve_backend(backend)
    if metrics is not None:
        return be.run(
            scenario, policy, seed=seed, balancer=balancer, trace=trace,
            audit=audit, metrics=metrics,
        )
    return be.run(
        scenario, policy, seed=seed, balancer=balancer, trace=trace, audit=audit
    )


def run_replications(
    scenario: ScenarioConfig,
    policy_factory: Callable[[], ProvisioningPolicy],
    seeds: Sequence[int] = (0, 1, 2),
    workers: int = 1,
    chunk_size: Optional[int] = None,
    trace: Optional[Union[TraceConfig, TraceBus]] = None,
    backend: Union[str, ExecutionBackend, None] = "des",
    metrics: Optional[object] = None,
) -> List[RunMetrics]:
    """Run several replications with independent seeds.

    ``policy_factory`` builds a fresh policy per replication so no
    control-plane state leaks between runs.

    Parameters
    ----------
    workers:
        ``<= 1`` (default) runs seeds sequentially in-process;
        ``> 1`` dispatches them to a process pool
        (:mod:`repro.experiments.parallel`), which returns results in
        seed order, bit-identical to the sequential path apart from the
        ``wall_seconds`` diagnostic.  The factory must then be
        picklable — use :class:`~repro.experiments.parallel.PolicySpec`
        instead of a lambda; unpicklable factories fall back to the
        sequential path with a log warning.
    chunk_size:
        Seeds per pool dispatch (parallel path only).
    trace:
        Forwarded to every :func:`run_policy` call.  With
        ``workers > 1`` this must be a picklable
        :class:`~repro.obs.bus.TraceConfig` whose path resolves to a
        *directory* (or contains ``{seed}``-style placeholders) so each
        replication writes its own JSONL file; a live
        :class:`~repro.obs.bus.TraceBus` cannot cross the process
        boundary and triggers the sequential fallback.
    backend:
        Execution backend for every replication — a spec string or a
        (picklable, for the parallel path) backend instance.
    metrics:
        Optional picklable :class:`~repro.obs.metrics.MetricsConfig`
        forwarded to every replication; per-worker registries come back
        inside each result's ``telemetry`` field and combine losslessly
        with :func:`repro.obs.metrics.merge_telemetry`.
    """
    if workers is not None and workers > 1:
        from .parallel import run_replications_parallel

        return run_replications_parallel(
            scenario,
            policy_factory,
            seeds,
            workers=workers,
            chunk_size=chunk_size,
            trace=trace,
            backend=backend,
            metrics=metrics,
        )
    return [
        run_policy(
            scenario, policy_factory(), seed=s, trace=trace, backend=backend,
            metrics=metrics,
        )
        for s in seeds
    ]
