"""Experiment runner — builds, runs, and summarizes simulations.

One :func:`run_policy` call = one replication of (scenario, policy):
it wires the data plane (engine, data center, fleet, monitor, metrics,
admission, source), attaches the policy's control plane, runs the
event loop to the horizon, and returns a :class:`RunResult` with the
paper's output metrics — response times normalized back to paper scale
when the scenario is rescaled.

Replications use spawned random streams (seed 0, 1, 2 …), so each is
independent yet exactly reproducible, and policies compared on the same
replication index share identical arrival streams (common random
numbers — the variance-reduction discipline the static-vs-adaptive
comparison benefits from).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..cloud.admission import AdmissionControl
from ..cloud.broker import WorkloadSource
from ..cloud.datacenter import Datacenter
from ..cloud.fleet import ApplicationFleet
from ..cloud.monitor import Monitor
from ..cloud.loadbalancer import LoadBalancer
from ..core.context import SimulationContext
from ..core.policies import ProvisioningPolicy
from ..metrics.collector import MetricsCollector
from ..obs.bus import TraceBus, TraceConfig
from ..obs.profile import RunProfile
from ..sim.engine import Engine
from ..sim.rng import RandomStreams
from .scenario import ScenarioConfig

__all__ = ["RunResult", "build_context", "run_policy", "run_replications"]


@dataclass(frozen=True)
class RunResult:
    """Output metrics of one replication (paper-scale normalized).

    Attributes
    ----------
    scenario, policy, seed:
        Identification of the run.
    total_requests, accepted, rejected:
        Arrival accounting.
    rejection_rate:
        Fraction of arrivals rejected.
    mean_response_time, response_time_std:
        Accepted-request response statistics, divided by the scenario
        scale factor so they are directly comparable to the paper.
    qos_violations:
        Accepted requests that exceeded ``T_s``.
    min_instances, max_instances:
        Fleet-size extrema observed during the run.
    vm_hours:
        Σ instance wall-clock lifetime in hours (Figure 5(c)/6(c)).
    core_hours:
        Σ allocated cores × wall-clock hours; equals ``vm_hours`` for
        one-core fleets and is the cost unit that makes the
        vertical-scaling baseline comparable.
    failures, lost_requests:
        Failure-injection accounting (0 without an injector).
    utilization:
        Busy time / provisioned VM time (Figure 5(b)/6(b)).
    wall_seconds, events:
        Runner diagnostics.  ``wall_seconds`` is the only field that is
        not a deterministic function of (scenario, policy, seed).
    fleet_series:
        ``(time, live_instances)`` trajectory when tracking was on.
    cache_hits, cache_misses:
        Algorithm-1 decision-cache counters of the run's modeler
        (both 0 for policies without one, e.g. Static-N).
    compactions:
        Heap compactions the engine performed (deterministic — lazy
        cancellations are a function of the run, not the wall clock).
    profile:
        :meth:`repro.obs.profile.RunProfile.to_dict` snapshot of the
        run's phase wall-clock and event counters.  Excluded from
        equality (``compare=False``): timings are nondeterministic, so
        sequential and parallel replications still compare equal.
    """

    scenario: str
    policy: str
    seed: int
    total_requests: int
    accepted: int
    completed: int
    rejected: int
    rejection_rate: float
    mean_response_time: float
    response_time_std: float
    qos_violations: int
    min_instances: int
    max_instances: int
    vm_hours: float
    core_hours: float
    failures: int
    lost_requests: int
    utilization: float
    wall_seconds: float
    events: int
    fleet_series: Tuple[Tuple[float, int], ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    compactions: int = 0
    profile: Dict[str, Dict[str, float]] = field(default_factory=dict, compare=False)


def build_context(
    scenario: ScenarioConfig,
    seed: int = 0,
    balancer: Optional[LoadBalancer] = None,
    tracer: Optional[TraceBus] = None,
    audit: Optional[object] = None,
) -> SimulationContext:
    """Wire the data plane of one replication (no policy attached).

    ``tracer`` (a :class:`~repro.obs.bus.TraceBus`) and ``audit`` (a
    :class:`~repro.obs.audit.DecisionAuditLog`) are threaded into every
    instrumented component; both default to ``None`` — tracing off.
    """
    streams = RandomStreams(seed)
    engine = Engine(tracer=tracer)
    workload = scenario.workload
    metrics = MetricsCollector(
        qos_response_time=scenario.qos.max_response_time,
        track_fleet_series=scenario.track_fleet_series,
    )
    datacenter = Datacenter(
        num_hosts=scenario.num_hosts,
        cores_per_host=scenario.cores_per_host,
        ram_per_host_mb=scenario.ram_per_host_mb,
    )
    monitor = Monitor(
        engine=engine,
        metrics=metrics,
        default_service_time=workload.mean_service_time,
        rate_sample_interval=scenario.rate_sample_interval,
        tracer=tracer,
    )
    sampler = workload.service_sampler(streams.get("service"))
    capacity = scenario.capacity
    fleet = ApplicationFleet(
        engine=engine,
        datacenter=datacenter,
        sampler=sampler,
        monitor=monitor,
        metrics=metrics,
        capacity=capacity,
        balancer=balancer,
        boot_delay=scenario.boot_delay,
        tracer=tracer,
    )
    admission = AdmissionControl(
        fleet, monitor, count_arrivals=scenario.count_arrivals, tracer=tracer
    )
    source = WorkloadSource(
        engine=engine,
        workload=workload,
        rng=streams.get("arrivals"),
        admission=admission,
        horizon=scenario.horizon,
        tracer=tracer,
    )
    return SimulationContext(
        engine=engine,
        streams=streams,
        workload=workload,
        qos=scenario.qos,
        capacity=capacity,
        datacenter=datacenter,
        fleet=fleet,
        monitor=monitor,
        metrics=metrics,
        admission=admission,
        source=source,
        horizon=scenario.horizon,
        tracer=tracer,
        audit=audit,
    )


def run_policy(
    scenario: ScenarioConfig,
    policy: ProvisioningPolicy,
    seed: int = 0,
    balancer: Optional[LoadBalancer] = None,
    trace: Optional[Union[TraceConfig, TraceBus]] = None,
    audit: Optional[object] = None,
) -> RunResult:
    """Run one replication of (scenario, policy) and collect metrics.

    Parameters
    ----------
    trace:
        ``None`` (default) runs untraced.  A
        :class:`~repro.obs.bus.TraceConfig` builds (and closes) a
        per-run bus — this is the picklable form the parallel path
        needs.  A ready :class:`~repro.obs.bus.TraceBus` is used as-is
        and left open, so callers can inspect an in-memory ring buffer
        after the run.
    audit:
        Optional :class:`~repro.obs.audit.DecisionAuditLog` capturing
        every Algorithm-1 invocation of this run.
    """
    profile = RunProfile()
    if isinstance(trace, TraceConfig):
        tracer: Optional[TraceBus] = trace.build(scenario.name, policy.name, seed)
        owns_bus = True
    else:
        tracer = trace
        owns_bus = False
    try:
        if tracer is not None:
            tracer.emit(
                "run.start",
                0.0,
                scenario=scenario.name,
                policy=policy.name,
                seed=int(seed),
            )
        with profile.phase("build"):
            ctx = build_context(scenario, seed, balancer, tracer=tracer, audit=audit)
            policy.attach(ctx)
            ctx.source.start()
        t_start = time.perf_counter()
        with profile.phase("run"):
            ctx.engine.run(until=scenario.horizon)
        wall = time.perf_counter() - t_start
        with profile.phase("finalize"):
            now = ctx.engine.now
            ctx.metrics.finalize(now, ctx.datacenter.vm_hours(now))
            m = ctx.metrics
            scale = scenario.scale
            modeler = getattr(ctx.provisioner, "modeler", None)
            cache_hits = modeler.cache_hits if modeler is not None else 0
            cache_misses = modeler.cache_misses if modeler is not None else 0
        profile.count("events", ctx.engine.events_fired)
        profile.count("compactions", ctx.engine.compactions)
        if tracer is not None:
            tracer.emit(
                "run.end",
                now,
                events=ctx.engine.events_fired,
                compactions=ctx.engine.compactions,
            )
            profile.count("trace_events", tracer.emitted)
        return RunResult(
            scenario=scenario.name,
            policy=policy.name,
            seed=seed,
            total_requests=m.total_requests,
            accepted=m.accepted,
            completed=m.completed,
            rejected=m.rejected,
            rejection_rate=m.rejection_rate,
            mean_response_time=m.mean_response_time / scale,
            response_time_std=m.response_time_std / scale,
            qos_violations=m.violations,
            min_instances=m.min_instances if m.min_instances is not None else 0,
            max_instances=m.max_instances if m.max_instances is not None else 0,
            vm_hours=m.vm_hours,
            core_hours=ctx.datacenter.core_hours(now),
            failures=m.failures,
            lost_requests=m.lost_requests,
            utilization=m.utilization,
            wall_seconds=wall,
            events=ctx.engine.events_fired,
            fleet_series=tuple(m.fleet_series),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            compactions=ctx.engine.compactions,
            profile=profile.to_dict(),
        )
    finally:
        if owns_bus and tracer is not None:
            tracer.close()


def run_replications(
    scenario: ScenarioConfig,
    policy_factory: Callable[[], ProvisioningPolicy],
    seeds: Sequence[int] = (0, 1, 2),
    workers: int = 1,
    chunk_size: Optional[int] = None,
    trace: Optional[Union[TraceConfig, TraceBus]] = None,
) -> List[RunResult]:
    """Run several replications with independent seeds.

    ``policy_factory`` builds a fresh policy per replication so no
    control-plane state leaks between runs.

    Parameters
    ----------
    workers:
        ``<= 1`` (default) runs seeds sequentially in-process;
        ``> 1`` dispatches them to a process pool
        (:mod:`repro.experiments.parallel`), which returns results in
        seed order, bit-identical to the sequential path apart from the
        ``wall_seconds`` diagnostic.  The factory must then be
        picklable — use :class:`~repro.experiments.parallel.PolicySpec`
        instead of a lambda; unpicklable factories fall back to the
        sequential path with a log warning.
    chunk_size:
        Seeds per pool dispatch (parallel path only).
    trace:
        Forwarded to every :func:`run_policy` call.  With
        ``workers > 1`` this must be a picklable
        :class:`~repro.obs.bus.TraceConfig` whose path resolves to a
        *directory* (or contains ``{seed}``-style placeholders) so each
        replication writes its own JSONL file; a live
        :class:`~repro.obs.bus.TraceBus` cannot cross the process
        boundary and triggers the sequential fallback.
    """
    if workers is not None and workers > 1:
        from .parallel import run_replications_parallel

        return run_replications_parallel(
            scenario,
            policy_factory,
            seeds,
            workers=workers,
            chunk_size=chunk_size,
            trace=trace,
        )
    return [run_policy(scenario, policy_factory(), seed=s, trace=trace) for s in seeds]
