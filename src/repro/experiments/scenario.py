"""Scenario configurations — the paper's two evaluation setups.

A :class:`ScenarioConfig` bundles everything that defines an experiment
except the provisioning policy: the workload model, the QoS contract,
the data-center geometry, the horizon, and the behaviour-preserving
scale factor (DESIGN.md §4).

Factory functions build the paper's scenarios:

* :func:`web_scenario` — §V-B1: Wikipedia-model traffic, one week,
  ``T_r = 100 ms``, ``T_s = 250 ms``, 80 % minimum utilization.
* :func:`scientific_scenario` — §V-B2: BoT grid jobs, one day,
  ``T_r = 300 s``, ``T_s = 700 s``, 80 % minimum utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.qos import QoSTarget
from ..economy.pricing import PricingModel
from ..errors import ConfigurationError
from ..sim.calendar import SECONDS_PER_DAY, SECONDS_PER_WEEK
from ..workloads.base import Workload
from ..workloads.scientific import ScientificWorkload
from ..workloads.web import WebWorkload

__all__ = ["ScenarioConfig", "web_scenario", "scientific_scenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """One complete experiment definition (minus the policy).

    Attributes
    ----------
    name:
        Scenario label used in reports.
    workload:
        Demand model (already rescaled when ``scale != 1``).
    qos:
        QoS contract (already rescaled when ``scale != 1``).
    horizon:
        Simulation length in seconds.
    scale:
        The rate/service rescaling factor applied (1 = paper scale).
        Response-time metrics are divided by it when reporting.
    num_hosts, cores_per_host, ram_per_host_mb:
        Data-center geometry (paper: 1000 × 8 cores × 16 GB).
    boot_delay:
        VM boot latency in seconds.
    update_interval, lead_time:
        Analyzer cadence and head start for adaptive policies.
    rate_sample_interval:
        Monitor rate-sampling cadence (``None`` disables; reactive
        predictors need it).
    count_arrivals:
        Whether admission reports every arrival to the monitor.
    track_fleet_series:
        Record the full fleet-size trajectory (costs memory).
    pricing:
        Optional :class:`~repro.economy.pricing.PricingModel` enabling
        profit accounting for the run (``None`` = economics off).
        Accepts a model, a mapping, or the frozen pair-tuple form
        campaign cells carry; coerced on construction.
    """

    name: str
    workload: Workload
    qos: QoSTarget
    horizon: float
    scale: float = 1.0
    num_hosts: int = 1000
    cores_per_host: int = 8
    ram_per_host_mb: int = 16_384
    boot_delay: float = 0.0
    update_interval: float = 900.0
    lead_time: float = 60.0
    rate_sample_interval: Optional[float] = None
    count_arrivals: bool = False
    track_fleet_series: bool = False
    pricing: Optional[PricingModel] = None

    def __post_init__(self) -> None:
        if self.horizon <= 0.0 or not math.isfinite(self.horizon):
            raise ConfigurationError(f"horizon must be finite and > 0, got {self.horizon!r}")
        if self.scale <= 0.0:
            raise ConfigurationError(f"scale must be > 0, got {self.scale!r}")
        if self.pricing is not None and not isinstance(self.pricing, PricingModel):
            object.__setattr__(self, "pricing", PricingModel.coerce(self.pricing))

    @property
    def capacity(self) -> int:
        """Per-instance queue size ``k`` from Eq. 1."""
        return self.qos.queue_capacity(self.workload.base_service_time)

    def with_updates(self, **changes) -> "ScenarioConfig":
        """Functional update helper (dataclasses.replace wrapper)."""
        return replace(self, **changes)


def web_scenario(
    scale: float = 1.0,
    horizon: float = SECONDS_PER_WEEK,
    spread: str = "uniform",
    **overrides,
) -> ScenarioConfig:
    """The paper's web scenario (§V-B1), optionally rescaled.

    Parameters
    ----------
    scale:
        Rate/service rescaling factor; 1.0 is the paper's full scale
        (≈ 500 M requests/week — use the fluid engine there), 200 is
        the DES benchmark default (≈ 2.7 M requests/week).
    horizon:
        Simulation length (paper: one week starting Monday 12 a.m.).
    spread:
        Within-interval arrival spreading of the web generator.
    overrides:
        Extra :class:`ScenarioConfig` field overrides.
    """
    workload: Workload = WebWorkload(spread=spread)
    qos = QoSTarget(max_response_time=0.250, max_rejection_rate=0.0, min_utilization=0.80)
    if scale != 1.0:
        workload = workload.scaled(scale)
        qos = qos.scaled(scale)
    defaults = dict(
        name=f"web" + (f"@1/{scale:g}" if scale != 1.0 else ""),
        workload=workload,
        qos=qos,
        horizon=float(horizon),
        scale=float(scale),
        update_interval=900.0,
        lead_time=60.0,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def scientific_scenario(
    scale: float = 1.0,
    horizon: float = SECONDS_PER_DAY,
    **overrides,
) -> ScenarioConfig:
    """The paper's scientific scenario (§V-B2), optionally rescaled.

    The BoT workload is light (≈ 8–10 k requests/day), so the DES runs
    it at full paper scale by default.
    """
    workload: Workload = ScientificWorkload()
    qos = QoSTarget(max_response_time=700.0, max_rejection_rate=0.0, min_utilization=0.80)
    if scale != 1.0:
        workload = workload.scaled(scale)
        qos = qos.scaled(scale)
    defaults = dict(
        name="scientific" + (f"@1/{scale:g}" if scale != 1.0 else ""),
        workload=workload,
        qos=qos,
        horizon=float(horizon),
        scale=float(scale),
        update_interval=1800.0,
        lead_time=60.0,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)
