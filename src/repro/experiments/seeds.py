"""Shared seed-list parsing for every sweep-shaped CLI surface.

Replication seed lists appear wherever experiments fan out — the
``repro run --seeds`` flag, campaign specs, ad-hoc scripts — and all of
them accept the same grammar:

* comma lists: ``"0,1,2"``;
* inclusive ranges: ``"0-9"``;
* any mix of the two: ``"0-3,7,10-11"``.

Whitespace around items is ignored; the result preserves the order
written, without deduplication (callers that need canonical seed sets
sort/dedupe themselves — the campaign grid does).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from ..errors import ConfigurationError

__all__ = ["parse_seeds"]


def _parse_item(item: str) -> List[int]:
    if "-" in item and not item.startswith("-"):
        lo_s, _, hi_s = item.partition("-")
        lo, hi = int(lo_s), int(hi_s)
        if hi < lo:
            raise ConfigurationError(
                f"seed range {item!r} is empty ({hi} < {lo}); "
                f"did you mean '{hi}-{lo}'?"
            )
        return list(range(lo, hi + 1))
    return [int(item)]


def parse_seeds(spec: Union[str, int, Iterable[int]]) -> List[int]:
    """Parse a seed specification into a list of ints.

    Accepts an int, an iterable of ints, or a string of comma-separated
    items where each item is either one seed (``"7"``) or an inclusive
    range (``"0-9"``).

    Raises
    ------
    ConfigurationError
        On malformed items or empty ranges.

    >>> parse_seeds("0-3,7")
    [0, 1, 2, 3, 7]
    """
    if isinstance(spec, bool):
        raise ConfigurationError(f"cannot interpret {spec!r} as seeds")
    if isinstance(spec, int):
        return [spec]
    if not isinstance(spec, str):
        try:
            return [int(s) for s in spec]
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"cannot interpret {spec!r} as seeds: {exc}")
    seeds: List[int] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        try:
            seeds.extend(_parse_item(item))
        except ValueError as exc:
            raise ConfigurationError(f"bad seed item {item!r} in {spec!r}: {exc}")
    return seeds
