"""repro.lint — project-specific static analysis for the reproduction.

The invariants this package machine-checks are the ones the repo's
claims rest on (docs/static-analysis.md has the full rationale):

* **determinism** — no wall clocks or ambient entropy outside the
  sanctioned modules; randomness flows through seeded streams;
* **layering** — the import-direction rules of docs/architecture.md
  (absorbing the old ``tools/check_layering.py``);
* **trace-schema** — ``emit(...)`` call sites and the live
  :data:`repro.obs.schema.EVENT_TYPES` registry agree in both
  directions;
* **pool-safety** — nothing unpicklable crosses the process-pool
  boundary;
* **float-compare** — no exact float equality in the analytical layer;
* **rng-streams** — every library RNG draw traces to a stream name
  registered in :data:`repro.sim.rng.STREAM_REGISTRY`, both
  directions;
* **lease-protocol** — every campaign lease claim is released on all
  paths and can reach a heartbeat renewal;
* **backend-parity** — the scalar and vectorized fleet APIs stay
  member-for-member in parity (modulo explicit allowlists).

The last three are *whole-program* rules riding
:mod:`repro.lint.program` — a project-wide symbol table, import/call
graph and small dataflow lattice extracted per module as JSON-safe
facts, which is also what the incremental cache
(:mod:`repro.lint.cache`) replays for unchanged files so a warm run
re-parses only what changed.

Usage::

    repro lint src tests                  # text report, exit 0/1/2
    repro lint src --format json          # machine-readable
    repro lint src --fix-hints            # remediation per finding
    repro lint src --update-baseline      # grandfather current findings
    repro lint src --graph deps.dot       # module import/call graph
    repro lint src --no-cache             # force a cold analysis

Programmatic::

    from repro.lint import run_lint
    result = run_lint(["src"])            # LintResult(findings=[...])

This package is a *top layer* like ``repro.campaigns``: the library
never imports it at module body (the layering rule enforces that about
the lint package itself), and the CLI reaches it lazily.
"""

from __future__ import annotations

from .baseline import Baseline, apply_baseline
from .cache import ENGINE_VERSION, LintCache, cache_signature
from .findings import Finding
from .program import FACTS_VERSION, ProgramIndex, extract_facts, render_dot
from .registry import Rule, build_rules, register, rule_descriptions, rule_names
from .report import REPORT_VERSION, json_report, render_json, render_text
from .runner import (
    PARSE_ERROR_RULE,
    LintResult,
    ModuleContext,
    Project,
    module_name_for,
    run_lint,
)

__all__ = [
    "Finding",
    "Rule",
    "register",
    "rule_names",
    "rule_descriptions",
    "build_rules",
    "run_lint",
    "LintResult",
    "ModuleContext",
    "Project",
    "module_name_for",
    "Baseline",
    "apply_baseline",
    "render_text",
    "render_json",
    "json_report",
    "REPORT_VERSION",
    "PARSE_ERROR_RULE",
    "FACTS_VERSION",
    "ENGINE_VERSION",
    "ProgramIndex",
    "extract_facts",
    "render_dot",
    "LintCache",
    "cache_signature",
]
