"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "dotted_name",
    "literal_strings",
    "body_imports",
    "walk_with_function",
    "prefix_hit",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


def literal_strings(node: ast.AST) -> Optional[List[str]]:
    """The possible string values of ``node`` when statically known.

    Handles plain constants and conditional expressions whose branches
    are both literal (``"a" if cond else "b"``).  Returns None for
    anything dynamic.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.IfExp):
        left = literal_strings(node.body)
        right = literal_strings(node.orelse)
        if left is not None and right is not None:
            return left + right
    return None


def _absolute_import(module: str, node: ast.ImportFrom) -> str:
    """Resolve an ``ast.ImportFrom`` to an absolute dotted module."""
    if node.level == 0:
        return node.module or ""
    package = module.rsplit(".", node.level)[0] if "." in module else ""
    if node.module:
        return f"{package}.{node.module}" if package else node.module
    return package


def body_imports(tree: ast.Module, module: str) -> Iterator[Tuple[int, str]]:
    """(lineno, absolute dotted target) per *module-body* import.

    Only the top level of the module counts — imports nested inside
    functions, methods or ``if TYPE_CHECKING:`` blocks do not execute
    at import time and are deliberate cycle-breakers/typing aids.
    ``from pkg import sub`` also yields ``pkg.sub`` per alias, since
    the alias may name a submodule.
    """
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            base = _absolute_import(module, node)
            yield node.lineno, base
            for alias in node.names:
                if base:
                    yield node.lineno, f"{base}.{alias.name}"


def walk_with_function(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[ast.AST]]]:
    """Yield ``(node, enclosing_function)`` pairs for the whole tree.

    ``enclosing_function`` is the innermost FunctionDef/AsyncFunctionDef
    containing the node (None at module/class level).
    """
    def visit(node: ast.AST, func: Optional[ast.AST]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            yield child, func
            inner = (
                child
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                else func
            )
            yield from visit(child, inner)

    yield from visit(tree, None)


def prefix_hit(target: str, prefixes: Tuple[str, ...]) -> bool:
    """True when ``target`` equals or lives under any dotted prefix."""
    return any(target == p or target.startswith(p + ".") for p in prefixes)
