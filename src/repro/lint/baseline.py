"""Baseline file — grandfathered findings, committed and reviewed.

The baseline is the escape hatch for adopting a new rule on an old
tree: run ``repro lint --update-baseline`` once, commit the resulting
JSON, and CI goes green while the debt is paid down.  Three behaviours
matter:

* **match** — a current finding whose fingerprint appears in the
  baseline is reported as *baselined* and does not fail the run;
  matching consumes entries with multiplicity, so two identical
  violations need two entries;
* **expire** — a baseline entry with no matching finding is *stale*
  (the violation was fixed); stale entries are reported so they get
  removed, and ``--update-baseline`` rewrites the file without them;
* **add** — ``--update-baseline`` snapshots the current findings as
  the new baseline (an empty tree writes an empty baseline).

The repository policy (docs/static-analysis.md) is that the committed
baseline holds **zero entries at merge time** — CI asserts it — so the
mechanism exists for transitions, not as a parking lot.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from ..errors import LintError
from .findings import Finding

__all__ = ["BASELINE_VERSION", "Baseline", "apply_baseline"]

BASELINE_VERSION = 1


class Baseline:
    """In-memory form of the committed baseline file."""

    def __init__(self, entries: Sequence[Dict[str, object]] = ()) -> None:
        #: Each entry: ``{"rule", "path", "message", "fingerprint"}``.
        self.entries: List[Dict[str, object]] = [dict(e) for e in entries]

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Snapshot findings into baseline entries (sorted, readable)."""
        entries = [
            {
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
                "fingerprint": f.fingerprint(),
            }
            for f in sorted(findings)
        ]
        return cls(entries)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; raises :class:`LintError` when unusable."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise LintError(f"baseline {path} is not valid JSON: {exc}") from None
        if not isinstance(data, dict) or "entries" not in data:
            raise LintError(f"baseline {path} has no 'entries' list")
        version = data.get("version", BASELINE_VERSION)
        if version != BASELINE_VERSION:
            raise LintError(
                f"baseline {path} has unsupported version {version!r} "
                f"(this tool writes version {BASELINE_VERSION})"
            )
        entries = data["entries"]
        if not isinstance(entries, list) or not all(
            isinstance(e, dict) and "fingerprint" in e for e in entries
        ):
            raise LintError(
                f"baseline {path}: every entry must be an object with a 'fingerprint'"
            )
        return cls(entries)

    def save(self, path: Union[str, Path]) -> None:
        """Write the committed JSON form (stable key order, newline-terminated)."""
        blob = json.dumps(
            {"version": BASELINE_VERSION, "entries": self.entries},
            indent=2,
            sort_keys=True,
        )
        Path(path).write_text(blob + "\n", encoding="utf-8")

    def __len__(self) -> int:
        return len(self.entries)


def apply_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding], List[Dict[str, object]]]:
    """Split findings by the baseline.

    Returns ``(fresh, baselined, stale_entries)``: findings not covered
    by the baseline (these fail the run), findings absorbed by it, and
    baseline entries whose violation no longer exists (candidates for
    removal via ``--update-baseline``).
    """
    budget = Counter(str(e["fingerprint"]) for e in baseline.entries)
    fresh: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        fp = finding.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            baselined.append(finding)
        else:
            fresh.append(finding)
    stale: List[Dict[str, object]] = []
    remaining = dict(budget)
    for entry in baseline.entries:
        fp = str(entry["fingerprint"])
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            stale.append(dict(entry))
    return fresh, baselined, stale
