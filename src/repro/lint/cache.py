"""Incremental lint cache — skip unchanged files on warm runs.

One JSON document keyed by *content*, not mtime: every scanned file's
sha256 maps to the complete per-file analysis product — its dotted
module name, per-rule findings, suppression table, extracted
whole-program facts (:mod:`repro.lint.program`) and any parse error.
A warm run replays those records without touching :mod:`ast` at all;
only files whose bytes changed are re-parsed, which is what makes the
cached ``repro lint`` of the full tree a few-hundred-millisecond
affair (CI asserts ≥3× over cold).

Correctness rests on two invariants:

* **per-file completeness** — everything a finalize rule needs from an
  unchanged module must be in its facts record, which is why rules
  consume facts rather than ASTs (see :mod:`repro.lint.program`);
* **signature matching** — the cache carries a signature hashing the
  engine version, :data:`~repro.lint.program.FACTS_VERSION` and the
  active rule set.  Any mismatch (new rule, upgraded engine, different
  ``--rules`` selection) discards the whole cache rather than risking
  stale replays.

The cache is strictly opt-in (``cache_path=None`` disables it), so
programmatic callers and fixture tests never leave stray files behind;
the CLI opts in with ``.reprolint-cache.json`` unless ``--no-cache``.
Corrupt or unreadable cache files are treated as empty — the cache can
never turn a clean tree red.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, Optional

from .program import FACTS_VERSION

__all__ = ["ENGINE_VERSION", "LintCache", "cache_signature"]

_FORMAT = "repro-lint-cache"
_FORMAT_VERSION = 1

#: Bump on any change to how findings are produced from unchanged
#: source (rule logic, suppression semantics, finding fields) — the
#: cache signature includes it, so old caches self-invalidate.
ENGINE_VERSION = 1


def cache_signature(rule_names: Iterable[str]) -> str:
    """Stable digest of everything the cached analysis depends on."""
    payload = json.dumps(
        [_FORMAT_VERSION, ENGINE_VERSION, FACTS_VERSION, sorted(rule_names)],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class LintCache:
    """sha256-keyed per-file analysis records behind one JSON file."""

    def __init__(self, path: Path, signature: str) -> None:
        self.path = Path(path)
        self.signature = signature
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, dict] = self._load()
        #: records produced or confirmed this run (what gets saved)
        self._fresh: Dict[str, dict] = {}

    def _load(self) -> Dict[str, dict]:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(data, dict)
            or data.get("format") != _FORMAT
            or data.get("version") != _FORMAT_VERSION
            or data.get("signature") != self.signature
            or not isinstance(data.get("entries"), dict)
        ):
            return {}
        return data["entries"]

    def get(self, rel: str, sha: str) -> Optional[dict]:
        """The cached record for ``rel`` iff its content hash matches."""
        entry = self._entries.get(rel)
        if entry is not None and entry.get("sha") == sha:
            self.hits += 1
            self._fresh[rel] = entry
            return entry
        self.misses += 1
        return None

    def put(self, rel: str, sha: str, record: dict) -> None:
        record = dict(record)
        record["sha"] = sha
        self._fresh[rel] = record

    def save(self) -> None:
        """Atomically persist the records touched by this run.

        Only this run's files are kept — the cache tracks one scan
        shape; alternating scan sets simply rebuild.  Write failures
        are swallowed: a cache that cannot persist is a slow lint, not
        a broken one.
        """
        document = {
            "format": _FORMAT,
            "version": _FORMAT_VERSION,
            "signature": self.signature,
            "entries": self._fresh,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(
                json.dumps(document, separators=(",", ":")), encoding="utf-8"
            )
            os.replace(tmp, self.path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
