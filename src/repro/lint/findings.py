"""The unit of lint output — one :class:`Finding` per violation.

A finding pins a rule to a source location and carries two pieces of
prose: the *message* (what invariant is broken, shown always) and the
*hint* (how to repair it, shown under ``--fix-hints`` and always
present in JSON output).

Findings are identified across runs by a *fingerprint* — a hash of
``(rule, path, message)`` that deliberately excludes the line number,
so a baseline entry keeps matching while unrelated edits shift the
file around it.  Two identical violations in one file share a
fingerprint; the baseline stores (and consumes) entries with
multiplicity, so fixing one of two twin findings still surfaces the
survivor.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = field(default="", compare=False)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        raw = f"{self.rule}::{self.path}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        """``path:line:col`` prefix used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (the JSON reporter's ``findings[]`` element)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict` (ignores the derived fingerprint)."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data.get("col", 0)),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data["message"]),
            hint=str(data.get("hint", "")),
        )
