"""Whole-program facts — serializable module summaries for cross checks.

The per-module rules walk a live AST; the *whole-program* rules
(``rng-streams``, ``lease-protocol``, ``backend-parity``,
``trace-schema``) instead consume :func:`extract_facts` output — a
JSON-safe summary of everything a finalize pass may want to know about
one module: imports, definitions, class member tables, call sites
(with statically-resolved first arguments), module-level string
constants, RNG stream draws, fleet/monitor attribute uses and lease
claim sites.

Facts, not ASTs, are the engine's currency for one load-bearing
reason: the incremental cache (:mod:`repro.lint.cache`) replays them
for unchanged files without re-parsing, so a warm ``repro lint`` run
hands every finalize rule the *complete* project picture while having
parsed only the files that changed.  Any analysis a cross-module rule
needs must therefore live here, in the extraction, and bump
:data:`FACTS_VERSION` when its shape changes (the cache keys on it).

:class:`ProgramIndex` is the query layer over a project's facts — the
symbol table (definitions by bare name), the module import graph, a
call graph with *reference edges* (``Thread(target=self._run)`` counts
as an edge to ``_run``, which is how heartbeat reachability sees
through the thread boundary), and a tiny intraprocedural dataflow
lattice: local variables are typed from constructor assignments,
parameter annotations and naming conventions, so ``streams.get("x")``
and ``RandomStreams(0).get("x")`` both resolve to an RNG stream draw.

:func:`render_dot` serializes the import/call graph to Graphviz DOT
(the ``repro lint --graph`` artifact).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from .astutil import dotted_name, literal_strings

__all__ = [
    "FACTS_VERSION",
    "extract_facts",
    "ProgramIndex",
    "render_dot",
]

#: Bump whenever the shape of :func:`extract_facts` output changes —
#: the incremental cache signature includes it, so stale facts are
#: never replayed into a newer engine.
FACTS_VERSION = 1

#: Dataflow type tags.  ``fleet`` is the join of ``app`` and ``vec``
#: (a receiver that may be either backend's fleet).
_T_STREAMS = "streams"
_T_APP = "app"
_T_VEC = "vec"
_T_FLEET = "fleet"
_T_MONITOR = "monitor"

#: Constructor name → type tag (dataflow seeds).
_CTOR_TYPES = {
    "RandomStreams": _T_STREAMS,
    "ApplicationFleet": _T_APP,
    "VectorFleet": _T_VEC,
    "Monitor": _T_MONITOR,
}

#: Terminal-identifier naming conventions (params, attribute chains).
_NAME_HINTS = {
    "streams": _T_STREAMS,
    "_streams": _T_STREAMS,
    "fleet": _T_FLEET,
    "_fleet": _T_FLEET,
    "monitor": _T_MONITOR,
    "_monitor": _T_MONITOR,
}

#: Lease-protocol vocabulary (shared with the ``lease-protocol`` rule).
CLAIM_NAMES = frozenset({"claim", "claim_all"})
RELEASE_NAMES = frozenset({"release", "release_all"})

#: Modules whose string-literal line table is kept (registry lookups).
_STRING_LINE_MODULES = ("repro.obs.schema", "repro.obs.metrics", "repro.sim.rng")


def _call_base(call: ast.Call) -> Optional[str]:
    """Bare name of the called function/method (``get``, ``claim_all``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _fstring_prefix(node: ast.JoinedStr) -> str:
    """Leading literal text of an f-string (``f"service.{t}"`` → ``"service."``)."""
    if node.values and isinstance(node.values[0], ast.Constant):
        value = node.values[0].value
        if isinstance(value, str):
            return value
    return ""


def _encode_arg0(node: Optional[ast.AST], params: FrozenSet[str]) -> Optional[dict]:
    """JSON-safe summary of a call's first positional argument."""
    if node is None:
        return None
    lits = literal_strings(node)
    if lits is not None:
        return {"lit": lits}
    if isinstance(node, ast.Name):
        if node.id in params:
            return {"param": True}
        return {"name": node.id}
    if isinstance(node, ast.JoinedStr):
        return {"fstr": _fstring_prefix(node)}
    return {"dyn": True}


class _Scope:
    """One function (or module) level of the dataflow environment."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.types: Dict[str, str] = {}

    def lookup(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            tag = scope.types.get(name)
            if tag is not None:
                return tag
            scope = scope.parent
        return None


class _Extractor(ast.NodeVisitor):
    """Single-pass facts extraction over one module AST."""

    def __init__(self, module: str, rel: str) -> None:
        self.module = module
        self.rel = rel
        self.class_stack: List[str] = []
        self.func_stack: List[str] = []
        self.scope = _Scope()
        #: class name → member name → first line
        self.classes: Dict[str, dict] = {}
        self.defs: Dict[str, int] = {}
        self.constants: Dict[str, str] = {}
        self.calls: List[dict] = []
        self.rng: Dict[str, list] = {"get": [], "spawn": [], "default_rng": []}
        self.attr_uses: List[dict] = []
        self.claims: List[dict] = []
        self.registry: Optional[dict] = None
        self.string_lines: Dict[str, int] = {}
        self._params: FrozenSet[str] = frozenset()
        self._want_strings = self.module in _STRING_LINE_MODULES
        #: claim-site guard analysis needs parent/sibling structure.
        self._parents: Dict[int, ast.AST] = {}

    # -- scope helpers -------------------------------------------------
    def _qualname(self) -> str:
        return ".".join(self.class_stack + self.func_stack)

    def _current_class(self) -> Optional[str]:
        return self.class_stack[-1] if self.class_stack else None

    def _infer(self, node: Optional[ast.AST]) -> Optional[str]:
        """Dataflow type tag of an expression, or None when unknown."""
        if node is None:
            return None
        chain = dotted_name(node)
        if chain is not None:
            direct = self.scope.lookup(chain)
            if direct is not None:
                return direct
            last = chain.rsplit(".", 1)[-1]
            return _NAME_HINTS.get(last)
        if isinstance(node, ast.Call):
            base = _call_base(node)
            if base in _CTOR_TYPES:
                return _CTOR_TYPES[base]
            if base == "spawn" and isinstance(node.func, ast.Attribute):
                # RandomStreams.spawn returns another stream factory.
                if self._infer(node.func.value) == _T_STREAMS:
                    return _T_STREAMS
        return None

    def _annotation_type(self, annotation: Optional[ast.AST]) -> Optional[str]:
        if annotation is None:
            return None
        text = dotted_name(annotation)
        if text is None and isinstance(annotation, ast.Constant):
            text = annotation.value if isinstance(annotation.value, str) else None
        if text is None:
            return None
        return _CTOR_TYPES.get(text.rsplit(".", 1)[-1])

    # -- structure -----------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        entry = self.classes.setdefault(
            node.name, {"line": node.lineno, "members": {}}
        )
        members: Dict[str, int] = entry["members"]
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                members.setdefault(stmt.name, stmt.lineno)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        members.setdefault(target.id, stmt.lineno)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                members.setdefault(stmt.target.id, stmt.lineno)
        self.defs.setdefault(".".join(self.class_stack + [node.name]), node.lineno)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node) -> None:
        qual = ".".join(self.class_stack + self.func_stack + [node.name])
        self.defs.setdefault(qual, node.lineno)
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        outer_params = self._params
        self._params = frozenset(names)
        self.func_stack.append(node.name)
        self.scope = _Scope(self.scope)
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            tag = self._annotation_type(arg.annotation) or _NAME_HINTS.get(arg.arg)
            if tag is not None and arg.arg != "self":
                self.scope.types[arg.arg] = tag
        self.generic_visit(node)
        self.scope = self.scope.parent
        self.func_stack.pop()
        self._params = outer_params

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- assignments (dataflow seeds, constants, self-members) ---------
    def visit_Assign(self, node: ast.Assign) -> None:
        tag = self._infer(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if tag is not None:
                    self.scope.types[target.id] = tag
                if (
                    not self.func_stack
                    and not self.class_stack
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    self.constants.setdefault(target.id, node.value.value)
            elif isinstance(target, ast.Attribute) and tag is not None:
                chain = dotted_name(target)
                if chain is not None:
                    self.scope.types[chain] = tag
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.class_stack
            ):
                entry = self.classes.setdefault(
                    self.class_stack[-1], {"line": node.lineno, "members": {}}
                )
                entry["members"].setdefault(target.attr, node.lineno)
        self._maybe_registry(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        tag = self._annotation_type(node.annotation) or self._infer(node.value)
        target = node.target
        if isinstance(target, ast.Name) and tag is not None:
            self.scope.types[target.id] = tag
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.class_stack
        ):
            entry = self.classes.setdefault(
                self.class_stack[-1], {"line": node.lineno, "members": {}}
            )
            entry["members"].setdefault(target.attr, node.lineno)
        self._maybe_registry(node)
        self.generic_visit(node)

    def _maybe_registry(self, node: Union[ast.Assign, ast.AnnAssign]) -> None:
        """``STREAM_REGISTRY = {...}`` at module level → stream registry facts."""
        if self.func_stack or self.class_stack:
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        if not any(
            isinstance(t, ast.Name) and t.id == "STREAM_REGISTRY" for t in targets
        ):
            return
        if not isinstance(node.value, ast.Dict):
            return
        streams: Dict[str, int] = {}
        duplicates: List[List[object]] = []
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                if key.value in streams:
                    duplicates.append([key.value, key.lineno])
                else:
                    streams[key.value] = key.lineno
        self.registry = {"streams": streams, "duplicates": duplicates}

    # -- expressions ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        base = _call_base(node)
        if base is not None:
            arg0 = _encode_arg0(node.args[0] if node.args else None, self._params)
            refs: List[str] = []
            for value in list(node.args) + [kw.value for kw in node.keywords]:
                chain = dotted_name(value)
                if chain is not None and "." in chain:
                    refs.append(chain.rsplit(".", 1)[-1])
                elif isinstance(value, ast.Name):
                    refs.append(value.id)
            recv = (
                self._infer(node.func.value)
                if isinstance(node.func, ast.Attribute)
                else None
            )
            entry = {
                "caller": self._qualname(),
                "base": base,
                "callee": dotted_name(node.func) or base,
                "line": node.lineno,
                "col": node.col_offset,
                "arg0": arg0,
                "refs": refs,
                "recv": recv,
            }
            self.calls.append(entry)
            if base == "get" and recv == _T_STREAMS:
                self.rng["get"].append(
                    {"line": node.lineno, "col": node.col_offset, "arg0": arg0}
                )
            elif base == "spawn" and recv == _T_STREAMS:
                self.rng["spawn"].append(
                    {"line": node.lineno, "col": node.col_offset}
                )
            elif base == "default_rng":
                self.rng["default_rng"].append(
                    {
                        "line": node.lineno,
                        "col": node.col_offset,
                        "seeded": bool(node.args or node.keywords),
                    }
                )
            if base in CLAIM_NAMES and isinstance(node.func, ast.Attribute):
                self.claims.append(
                    {
                        "caller": self._qualname(),
                        "cls": self._current_class(),
                        "func": self.func_stack[-1] if self.func_stack else "",
                        "base": base,
                        "line": node.lineno,
                        "col": node.col_offset,
                        "guarded": False,  # filled in by _finish_claims
                        "node_id": id(node),
                    }
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) and not (
            node.attr.startswith("__") and node.attr.endswith("__")
        ):
            if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
                tag = self._infer(node.value)
                if tag in (_T_APP, _T_VEC, _T_FLEET, _T_MONITOR):
                    self.attr_uses.append(
                        {
                            "kind": tag,
                            "attr": node.attr,
                            "line": node.lineno,
                            "col": node.col_offset,
                        }
                    )
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if self._want_strings and isinstance(node.value, str):
            self.string_lines.setdefault(node.value, node.lineno)


# ----------------------------------------------------------------------
# Claim-site guard analysis (post-dominance / finally heuristics).


def _contains_release(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _call_base(sub) in RELEASE_NAMES:
            return True
    return False


def _unconditional_release(stmt: ast.stmt) -> bool:
    """A release call as the statement itself (not nested in a branch)."""
    if isinstance(stmt, ast.Expr):
        value: ast.AST = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    else:
        return False
    return isinstance(value, ast.Call) and _call_base(value) in RELEASE_NAMES


def _body_chain(
    func: ast.AST, target: ast.AST
) -> List[Tuple[List[ast.stmt], int]]:
    """(statement list, index) ancestry of ``target``, innermost first."""

    def search(body: List[ast.stmt]) -> Optional[List[Tuple[List[ast.stmt], int]]]:
        for idx, stmt in enumerate(body):
            if stmt is target or any(n is target for n in ast.walk(stmt)):
                for field in ("body", "orelse", "finalbody", "handlers"):
                    blocks = getattr(stmt, field, None)
                    if not blocks:
                        continue
                    if field == "handlers":
                        for handler in blocks:
                            found = search(handler.body)
                            if found is not None:
                                return found + [(body, idx)]
                        continue
                    found = search(blocks)
                    if found is not None:
                        return found + [(body, idx)]
                return [(body, idx)]
        return None

    chain = search(func.body) if hasattr(func, "body") else None
    return chain or []


def _claim_guarded(func: ast.AST, claim: ast.AST) -> bool:
    """True when the claim is released on all (non-crash) paths.

    Two sanctioned shapes, both heuristic but tuned to the scheduler's
    idiom:

    * a ``try`` whose ``finally`` releases, either *enclosing* the
      claim or appearing *after* it in the same function (claim, then
      immediately enter the guarded region);
    * an unconditional release statement later in the claim's own
      block (or an enclosing block), with no return/raise/break in
      between — straight-line post-dominance.
    """
    chain = _body_chain(func, claim)
    if not chain:
        return False
    claim_line = getattr(claim, "lineno", 0)
    for node in ast.walk(func):
        if isinstance(node, ast.Try) and node.finalbody:
            if any(_contains_release(stmt) for stmt in node.finalbody):
                if any(n is claim for n in ast.walk(node)):
                    return True
                if node.lineno >= claim_line:
                    return True
    for body, idx in chain:
        for stmt in body[idx + 1 :]:
            if _unconditional_release(stmt):
                return True
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
                return False
    return False


def _finish_claims(extractor: _Extractor, tree: ast.Module) -> None:
    """Second pass: resolve each claim site's guard flag against its function."""
    if not extractor.claims:
        return
    by_id: Dict[int, dict] = {c["node_id"]: c for c in extractor.claims}
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(func):
            entry = by_id.get(id(node))
            if entry is not None and isinstance(node, ast.Call):
                # walk yields outer functions first; the innermost
                # enclosing def overwrites, which is the one we want.
                entry["guarded"] = _claim_guarded(func, node)
    for claim in extractor.claims:
        claim.pop("node_id", None)


def extract_facts(ctx) -> Dict[str, Any]:
    """The JSON-safe whole-program summary of one ``ModuleContext``."""
    from .astutil import body_imports

    extractor = _Extractor(ctx.module, ctx.rel)
    extractor.visit(ctx.tree)
    _finish_claims(extractor, ctx.tree)
    return {
        "module": ctx.module,
        "rel": ctx.rel,
        "imports": [[line, target] for line, target in body_imports(ctx.tree, ctx.module)],
        "defs": extractor.defs,
        "classes": extractor.classes,
        "constants": extractor.constants,
        "calls": extractor.calls,
        "rng": extractor.rng,
        "attr_uses": extractor.attr_uses,
        "claims": extractor.claims,
        "registry": extractor.registry,
        "string_lines": extractor.string_lines,
    }


# ----------------------------------------------------------------------
# The query layer.


class ProgramIndex:
    """Symbol table + import/call graph over a project's facts."""

    def __init__(self, facts: Dict[str, dict]) -> None:
        #: module name → facts (first scan wins on collisions)
        self.by_module: Dict[str, dict] = {}
        for _rel, f in sorted(facts.items()):
            if f is not None:
                self.by_module.setdefault(f["module"], f)
        #: bare definition name → [(module, qualname)]
        self._defs: Dict[str, List[Tuple[str, str]]] = {}
        #: (module, qualname) → call entries
        self._calls: Dict[Tuple[str, str], List[dict]] = {}
        for module, f in self.by_module.items():
            for qual in f.get("defs", {}):
                base = qual.rsplit(".", 1)[-1]
                self._defs.setdefault(base, []).append((module, qual))
            for call in f.get("calls", []):
                key = (module, call.get("caller", ""))
                self._calls.setdefault(key, []).append(call)

    def facts(self, module: str) -> Optional[dict]:
        return self.by_module.get(module)

    def modules(self) -> List[str]:
        return sorted(self.by_module)

    def resolve_constant(self, module: str, name: str) -> Optional[str]:
        """Module-level string constant ``name`` as seen from ``module``."""
        f = self.by_module.get(module)
        if f is not None:
            value = f.get("constants", {}).get(name)
            if value is not None:
                return value
        for other in self.by_module.values():
            value = other.get("constants", {}).get(name)
            if value is not None:
                return value
        return None

    def class_members(self, module: str, cls: str) -> Optional[Dict[str, int]]:
        f = self.by_module.get(module)
        if f is None:
            return None
        entry = f.get("classes", {}).get(cls)
        return None if entry is None else dict(entry["members"])

    def class_line(self, module: str, cls: str) -> int:
        f = self.by_module.get(module)
        if f is None:
            return 1
        entry = f.get("classes", {}).get(cls)
        return 1 if entry is None else int(entry["line"])

    def callees_of(self, module: str, qualname: str) -> List[dict]:
        return self._calls.get((module, qualname), [])

    def defs_named(self, base: str) -> List[Tuple[str, str]]:
        return self._defs.get(base, [])

    def reaches_call(
        self, module: str, qualname: str, target_base: str, limit: int = 2000
    ) -> bool:
        """True when ``qualname`` transitively reaches a ``target_base()`` call.

        Resolution is class-hierarchy-analysis-flavored: a call to bare
        name ``x`` may land on *any* scanned definition named ``x``.
        Reference arguments count as edges (``Thread(target=self._run)``
        reaches ``_run``), which is how the lease heartbeat's renewal
        loop stays reachable through its daemon thread.
        """
        seen: Set[Tuple[str, str]] = set()
        frontier: List[Tuple[str, str]] = [(module, qualname)]
        budget = limit
        while frontier and budget > 0:
            key = frontier.pop()
            if key in seen:
                continue
            seen.add(key)
            for call in self._calls.get(key, []):
                budget -= 1
                names = [call["base"]] + list(call.get("refs", []))
                if call["base"] == target_base:
                    return True
                for name in names:
                    for target in self._defs.get(name, []):
                        if target not in seen:
                            frontier.append(target)
        return False

    # -- graph export --------------------------------------------------
    def edges(self) -> Iterator[Tuple[str, str, str]]:
        """(src module, dst module, kind) — ``import`` and ``call`` edges."""
        emitted: Set[Tuple[str, str, str]] = set()
        for module, f in self.by_module.items():
            for _line, target in f.get("imports", []):
                dst = target
                while dst and dst not in self.by_module:
                    dst = dst.rpartition(".")[0]
                if dst and dst != module:
                    edge = (module, dst, "import")
                    if edge not in emitted:
                        emitted.add(edge)
                        yield edge
            for call in f.get("calls", []):
                for dst_module, _qual in self._defs.get(call["base"], []):
                    if dst_module != module:
                        edge = (module, dst_module, "call")
                        if edge not in emitted:
                            emitted.add(edge)
                            yield edge


def render_dot(index: ProgramIndex) -> str:
    """Graphviz DOT text of the module import/call graph."""
    lines = [
        "digraph repro_lint {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for module in index.modules():
        f = index.by_module[module]
        label = f"{module}\\n{len(f.get('defs', {}))} defs"
        lines.append(f'  "{module}" [label="{label}"];')
    for src, dst, kind in sorted(set(index.edges())):
        style = "solid" if kind == "import" else "dashed"
        lines.append(f'  "{src}" -> "{dst}" [style={style}];')
    lines.append("}")
    return "\n".join(lines) + "\n"
