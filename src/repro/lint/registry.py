"""Rule protocol and registry.

A rule is a small stateful object constructed fresh for every lint run
(rules may accumulate cross-module state, e.g. the trace-schema rule's
emit-site census).  Rules register themselves with :func:`register` at
import time; :func:`build_rules` instantiates the requested subset.

Two hooks:

* :meth:`Rule.check_module` — called once per scanned module, in path
  order, with a :class:`~repro.lint.runner.ModuleContext`;
* :meth:`Rule.finalize` — called once after every module has been
  seen, with the whole :class:`~repro.lint.runner.Project`; this is
  where whole-program checks (cross-references, never-used entries)
  report.

Both yield :class:`~repro.lint.findings.Finding` objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Type

from ..errors import LintError
from .findings import Finding

__all__ = ["Rule", "register", "rule_names", "build_rules", "rule_descriptions"]


class Rule:
    """Base class for lint rules (subclass, set ``name``, register)."""

    #: Rule id — the token used in ``# reprolint: disable=<name>``,
    #: ``--rules`` and baseline entries.
    name: str = ""
    #: One-line summary shown by the documentation/reporters.
    description: str = ""

    def check_module(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        """Per-module findings (default: none)."""
        return iter(())

    def finalize(self, project: "Project") -> Iterator[Finding]:  # noqa: F821
        """Whole-project findings after every module was scanned."""
        return iter(())


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise LintError(f"rule class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise LintError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def rule_names() -> List[str]:
    """All registered rule ids, sorted."""
    from . import rules  # noqa: F401 - importing registers the built-ins

    return sorted(_REGISTRY)


def rule_descriptions() -> Dict[str, str]:
    """rule id → one-line description (for ``--help`` style listings)."""
    from . import rules  # noqa: F401

    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


def build_rules(names: Optional[Iterable[str]] = None) -> List[Rule]:
    """Fresh instances of the requested rules (all when ``names`` is None)."""
    from . import rules  # noqa: F401 - importing registers the built-ins

    if names is None:
        selected = sorted(_REGISTRY)
    else:
        selected = list(names)
        unknown = [n for n in selected if n not in _REGISTRY]
        if unknown:
            raise LintError(
                f"unknown rule(s) {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[name]() for name in selected]
