"""Reporters — render a lint run for humans (text) or machines (JSON).

The JSON document is a stable contract (``REPORT_VERSION`` bumps on
incompatible change) that CI consumes::

    {
      "version": 1,
      "tool": "reprolint",
      "files": 93,
      "rules": ["determinism", ...],
      "findings": [ {rule, path, line, col, message, hint, fingerprint} ],
      "counts": {"determinism": 2, ...},       # fresh findings only
      "suppressed": 0,                          # inline-comment silenced
      "baselined": [ ... same shape ... ],      # absorbed by the baseline
      "stale_baseline": [ {rule, path, message, fingerprint} ]
    }

``findings`` lists only *fresh* (failing) findings; exit code 1 iff it
is non-empty.  The round-trip guarantee — ``Finding.from_dict`` over
every ``findings[]`` element reconstructs the original object — is
pinned by a test.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from .findings import Finding

__all__ = ["REPORT_VERSION", "render_text", "render_json", "json_report"]

REPORT_VERSION = 1


def render_text(
    findings: Sequence[Finding],
    files: int,
    suppressed: int = 0,
    baselined: Sequence[Finding] = (),
    stale_baseline: Sequence[Dict[str, object]] = (),
    fix_hints: bool = False,
) -> str:
    """Human-readable report (one line per finding, GCC-style prefix)."""
    lines: List[str] = []
    for f in findings:
        lines.append(f"{f.location()}: [{f.rule}] {f.message}")
        if fix_hints and f.hint:
            lines.append(f"    fix: {f.hint}")
    if baselined:
        lines.append(f"{len(baselined)} finding(s) suppressed by the baseline")
    if stale_baseline:
        lines.append(
            f"{len(stale_baseline)} stale baseline entr"
            f"{'y' if len(stale_baseline) == 1 else 'ies'} "
            "(violation fixed — run with --update-baseline to drop):"
        )
        for entry in stale_baseline:
            lines.append(
                f"    [{entry.get('rule')}] {entry.get('path')}: {entry.get('message')}"
            )
    if suppressed:
        lines.append(f"{suppressed} finding(s) suppressed by inline comments")
    if findings:
        lines.append(f"{len(findings)} finding(s) in {files} file(s)")
    else:
        lines.append(f"reprolint: OK ({files} file(s) clean)")
    return "\n".join(lines)


def json_report(
    findings: Sequence[Finding],
    files: int,
    rules: Sequence[str],
    suppressed: int = 0,
    baselined: Sequence[Finding] = (),
    stale_baseline: Sequence[Dict[str, object]] = (),
) -> Dict[str, object]:
    """The JSON document as a dict (see module docstring for shape)."""
    counts = Counter(f.rule for f in findings)
    return {
        "version": REPORT_VERSION,
        "tool": "reprolint",
        "files": files,
        "rules": list(rules),
        "findings": [f.to_dict() for f in findings],
        "counts": dict(sorted(counts.items())),
        "suppressed": suppressed,
        "baselined": [f.to_dict() for f in baselined],
        "stale_baseline": [dict(e) for e in stale_baseline],
    }


def render_json(*args, **kwargs) -> str:
    """:func:`json_report` serialized (indented, stable key order)."""
    return json.dumps(json_report(*args, **kwargs), indent=2, sort_keys=True)
