"""Built-in rules — importing this package registers them all.

One module per rule family; each module's docstring is the rule's
authoritative rationale (docs/static-analysis.md summarizes them).
"""

from __future__ import annotations

from . import (
    determinism,
    floatcmp,
    layering,
    leaseproto,
    parity,
    poolsafety,
    rngstreams,
    traceschema,
)

__all__ = [
    "determinism",
    "floatcmp",
    "layering",
    "leaseproto",
    "parity",
    "poolsafety",
    "rngstreams",
    "traceschema",
]
