"""Rule ``determinism`` — no ambient entropy or wall clocks in the library.

The reproduction's headline guarantees (bit-identical DES-vs-fluid
trajectories, seed-stable replications, content-addressed campaign
caching) only hold if *every* source of nondeterminism flows through
the seeded stream factory :mod:`repro.sim.rng` and every wall-clock
read is a *duration* measurement confined to the profiling layer.

Banned in any ``repro.*`` module outside the whitelist:

* the stdlib :mod:`random` module (import or call) — randomness must
  come from named, spawned :class:`numpy.random.Generator` streams;
* legacy global numpy RNG calls (``np.random.rand`` / ``seed`` / …)
  and **unseeded** ``np.random.default_rng()`` — seeded construction
  (``default_rng(seed)``, ``Generator(PCG64(ss))``, ``SeedSequence``)
  stays legal, as do ``np.random.Generator`` type annotations;
* epoch and duration clocks (``time.time``, ``time.perf_counter``,
  ``datetime.now`` …) — simulation timestamps come from the engine
  clock, and wall-clock *durations* are measured via
  :class:`repro.obs.profile.Stopwatch` / ``RunProfile.phase`` so the
  no-clock invariant stays greppable in one module;
* ambient entropy: ``os.urandom``, ``uuid.uuid1``/``uuid4``.

Whitelisted modules: ``repro.sim.rng`` (the entropy root),
``repro.obs.profile`` (the sanctioned clock), and
``repro.experiments.bench`` / ``repro.experiments.benchcmp``
(benchmarks exist to read the clock).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["DeterminismRule", "WHITELIST"]

#: Modules allowed to touch clocks / raw entropy directly.
WHITELIST = frozenset(
    {
        "repro.sim.rng",
        "repro.obs.profile",
        "repro.experiments.bench",
        "repro.experiments.benchcmp",
    }
)

_RNG_HINT = (
    "draw from a named seeded stream (repro.sim.rng.RandomStreams.get) "
    "or accept an np.random.Generator argument"
)
_CLOCK_HINT = (
    "use repro.obs.profile (Stopwatch / RunProfile.phase) for wall-clock "
    "durations; simulation timestamps come from the engine clock"
)

#: dotted call name → (message, hint)
_BANNED_CALLS = {}
for _name in (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
):
    _BANNED_CALLS[_name] = (f"wall-clock read {_name}()", _CLOCK_HINT)
for _name in (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
):
    _BANNED_CALLS[_name] = (f"wall-clock read {_name}()", _CLOCK_HINT)
for _name in ("os.urandom", "uuid.uuid1", "uuid.uuid4"):
    _BANNED_CALLS[_name] = (f"ambient entropy source {_name}()", _RNG_HINT)

#: Legacy global-state numpy RNG entry points (suffix after np.random.).
_NUMPY_LEGACY = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "standard_normal",
        "uniform",
        "normal",
        "poisson",
        "exponential",
        "gamma",
        "beta",
        "binomial",
    }
)

#: ``from time import X`` names that evade dotted-call detection.
_BANNED_FROM_IMPORTS = {
    "time": {"time", "time_ns", "monotonic", "perf_counter", "process_time"},
    "os": {"urandom"},
    "uuid": {"uuid1", "uuid4"},
    "datetime": set(),  # handled via attribute calls; importing is fine
}


def _numpy_random_suffix(name: str) -> str:
    """``np.random.rand`` / ``numpy.random.rand`` → ``rand`` (else '')."""
    for prefix in ("np.random.", "numpy.random."):
        if name.startswith(prefix):
            return name[len(prefix):]
    return ""


@register
class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "library code must not read wall clocks or ambient entropy; "
        "all randomness flows through seeded repro.sim.rng streams"
    )

    def check_module(self, ctx) -> Iterator[Finding]:
        module = ctx.module
        if not (module == "repro" or module.startswith("repro.")):
            return
        if module in WHITELIST:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield Finding(
                            path=ctx.rel,
                            line=node.lineno,
                            col=node.col_offset,
                            rule=self.name,
                            message=f"{module} imports the stdlib random module",
                            hint=_RNG_HINT,
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    yield Finding(
                        path=ctx.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.name,
                        message=f"{module} imports from the stdlib random module",
                        hint=_RNG_HINT,
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name in _NUMPY_LEGACY:
                            yield Finding(
                                path=ctx.rel,
                                line=node.lineno,
                                col=node.col_offset,
                                rule=self.name,
                                message=(
                                    f"{module} imports legacy global numpy RNG "
                                    f"entry point numpy.random.{alias.name}"
                                ),
                                hint=_RNG_HINT,
                            )
                elif node.module in _BANNED_FROM_IMPORTS:
                    banned = _BANNED_FROM_IMPORTS[node.module]
                    for alias in node.names:
                        if alias.name in banned:
                            yield Finding(
                                path=ctx.rel,
                                line=node.lineno,
                                col=node.col_offset,
                                rule=self.name,
                                message=(
                                    f"{module} imports {node.module}.{alias.name} "
                                    "(wall-clock / entropy source)"
                                ),
                                hint=_CLOCK_HINT
                                if node.module == "time"
                                else _RNG_HINT,
                            )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name in _BANNED_CALLS:
                    message, hint = _BANNED_CALLS[name]
                    yield Finding(
                        path=ctx.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.name,
                        message=f"{message} in {module}",
                        hint=hint,
                    )
                    continue
                suffix = _numpy_random_suffix(name)
                if suffix in _NUMPY_LEGACY:
                    yield Finding(
                        path=ctx.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.name,
                        message=(
                            f"legacy global numpy RNG call {name}() in {module}"
                        ),
                        hint=_RNG_HINT,
                    )
                elif suffix == "default_rng" and not node.args and not node.keywords:
                    yield Finding(
                        path=ctx.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.name,
                        message=(
                            f"unseeded {name}() in {module} draws OS entropy"
                        ),
                        hint=_RNG_HINT,
                    )
