"""Rule ``float-compare`` — no ``==``/``!=`` between float expressions.

The analytical layer (``repro.queueing``) and the fluid engine
(``repro.sim.fluid``) are where the DES-vs-analytical agreement of the
paper is computed; an exact equality between quantities that went
through division, ``math`` transcendentals, or non-representable
literals is a latent cross-platform break (the same expression can
differ in the last ulp between libm builds and numpy versions).

Flagged: an ``==`` / ``!=`` whose either side is visibly float-valued
— a non-zero float literal, an expression containing true division, or
a ``math.sqrt``/``exp``/``log``-style call.

Deliberately exempt (the sound sentinel idioms this codebase uses):

* comparisons against exact zero (``rho == 0.0``) — zero is exactly
  representable, and these guard division-by-zero for values that are
  *constructed*, not computed, to be zero;
* integrality checks ``int(n) != n`` — exact by construction;
* any comparison with no visibly-float side (``n == 0`` on an int).

The remediation is :func:`math.isclose` (or an explicit tolerance),
hence the hint.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["FloatCompareRule", "applies_to"]

#: module (prefix) scope of the rule.
_SCOPES = ("repro.queueing", "repro.sim.fluid")

_HINT = (
    "use math.isclose(a, b, rel_tol=..., abs_tol=...) or an explicit "
    "tolerance; exact comparison is only sound against a constructed "
    "sentinel like 0.0"
)

#: math-module calls whose results are never exact.
_MATH_FLOAT_CALLS = frozenset(
    {"sqrt", "exp", "expm1", "log", "log1p", "log2", "log10", "pow", "hypot", "fsum"}
)


def applies_to(module: str) -> bool:
    return module == "repro.sim.fluid" or (
        module == "repro.queueing" or module.startswith("repro.queueing.")
    )


def _is_exact_zero(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and float(node.value) == 0.0
    )


def _is_int_call(node: ast.AST) -> bool:
    """``int(x)`` / ``math.floor(x)`` — the integrality-check idiom."""
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name in ("int", "round", "math.floor", "math.ceil", "math.trunc")


def _is_floaty(node: ast.AST) -> bool:
    """Is this expression visibly float-valued (inexact)?"""
    if isinstance(node, ast.Constant):
        return (
            isinstance(node.value, float)
            and node.value != 0.0
        )
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floaty(node.left) or _is_floaty(node.right)
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return False
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "math" and parts[1] in _MATH_FLOAT_CALLS:
            return True
        return name == "float"
    return False


@register
class FloatCompareRule(Rule):
    name = "float-compare"
    description = (
        "no ==/!= between float expressions in repro.queueing / "
        "repro.sim.fluid; use math.isclose"
    )

    def check_module(self, ctx) -> Iterator[Finding]:
        if not applies_to(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                pair: Tuple[ast.AST, ast.AST] = (left, right)
                left = right  # advance for chained comparisons
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                a, b = pair
                if _is_exact_zero(a) or _is_exact_zero(b):
                    continue  # zero-sentinel idiom
                if _is_int_call(a) or _is_int_call(b):
                    continue  # integrality check: int(n) != n
                if _is_floaty(a) or _is_floaty(b):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield Finding(
                        path=ctx.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.name,
                        message=(
                            f"float {symbol} comparison in {ctx.module}; "
                            "exact float equality is unstable across "
                            "platforms"
                        ),
                        hint=_HINT,
                    )
