"""Rule ``layering`` — import-direction discipline between packages.

The architecture (docs/architecture.md) layers the package so the math
stays engine-free and exactly one package knows both execution engines.
This rule absorbed (and extends) the standalone
``tools/check_layering.py`` lint, whose script is retired to a stub
pointing here:

1. ``repro.queueing`` and ``repro.prediction`` are pure analytics —
   they must never import the execution substrates ``repro.cloud`` or
   ``repro.sim`` (sole exception: the engine-free day/time vocabulary
   ``repro.sim.calendar``);
2. ``repro.backends`` is the only package allowed to import both
   engines; no module outside it (or ``repro.sim`` itself) may import
   the fluid engine ``repro.sim.fluid``;
3. ``repro.core`` (the control plane) never imports ``repro.backends``
   or ``repro.experiments`` — it cannot know how it is executed; the
   same holds for ``repro.economy``, which layers between the
   substrates and the backends (backends/experiments/campaigns import
   it, never the reverse);
4. ``repro.campaigns`` (the orchestration layer) sits on top: nothing
   in the library imports it back — the CLI reaches it through a
   function-local import only;
5. ``repro.lint`` (this tooling layer) likewise: the library never
   imports it at module body; the CLI's ``lint`` subcommand uses a
   lazy import.

Only *module-body* imports count: an import nested inside a function,
method, or ``if TYPE_CHECKING:`` block is a deliberate cycle-breaker
or typing aid, not a layering dependency.
"""

from __future__ import annotations

from typing import Iterator

from ..astutil import body_imports, prefix_hit
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["LayeringRule", "FORBIDDEN", "ALLOWED", "RESTRICTED"]

#: importing-module prefix → forbidden imported-module prefixes
FORBIDDEN = {
    "repro.queueing": ("repro.cloud", "repro.sim"),
    "repro.prediction": ("repro.cloud", "repro.sim"),
    # The control plane cannot know how it is being executed.
    "repro.core": ("repro.backends", "repro.experiments"),
    # The economics layer sits on the control plane and the substrates;
    # execution and orchestration import it, never the reverse.
    "repro.economy": ("repro.backends", "repro.experiments"),
}

#: Engine-free shared-vocabulary modules exempt from FORBIDDEN:
#: ``repro.sim.calendar`` is pure day-of-week/time-of-day arithmetic
#: (constants and pure functions, no engine state) that the pattern
#: predictors legitimately share with the simulator.
ALLOWED = ("repro.sim.calendar",)

#: module prefixes only importable from inside these owner packages
RESTRICTED = {
    "repro.sim.fluid": ("repro.backends", "repro.sim"),
    # The campaign engine is the top of the stack: it orchestrates the
    # layers below, so no library module may import it at module body
    # (the CLI's lazy function-local import is exempt by design).
    "repro.campaigns": ("repro.campaigns",),
    # Same for the lint tooling itself: the library never depends on
    # its own static analyzer.
    "repro.lint": ("repro.lint",),
}

_HINT = (
    "restructure per docs/architecture.md, or make the import "
    "function-local if it is a deliberate late binding"
)


@register
class LayeringRule(Rule):
    name = "layering"
    description = (
        "import-direction rules between packages (analytics stay "
        "engine-free; campaigns/lint are top layers nothing imports back)"
    )

    def check_module(self, ctx) -> Iterator[Finding]:
        module = ctx.module
        if not (module == "repro" or module.startswith("repro.")):
            return
        # ``from repro.sim.fluid import X`` resolves to both the base
        # package and the attribute path; one import line reports each
        # violated constraint once, against the shortest target.
        seen = set()
        for lineno, target in body_imports(ctx.tree, module):
            for layer, banned in FORBIDDEN.items():
                if (
                    prefix_hit(module, (layer,))
                    and prefix_hit(target, banned)
                    and not prefix_hit(target, ALLOWED)
                ):
                    if (lineno, "forbidden", layer) in seen:
                        continue
                    seen.add((lineno, "forbidden", layer))
                    yield Finding(
                        path=ctx.rel,
                        line=lineno,
                        col=0,
                        rule=self.name,
                        message=(
                            f"{module} imports {target} "
                            f"({layer} must stay engine-free)"
                        ),
                        hint=_HINT,
                    )
            for restricted, owners in RESTRICTED.items():
                if prefix_hit(target, (restricted,)) and not prefix_hit(
                    module, owners
                ):
                    if (lineno, "restricted", restricted) in seen:
                        continue
                    seen.add((lineno, "restricted", restricted))
                    yield Finding(
                        path=ctx.rel,
                        line=lineno,
                        col=0,
                        rule=self.name,
                        message=(
                            f"{module} imports {target} "
                            f"(only {' / '.join(owners)} may import {restricted})"
                        ),
                        hint=_HINT,
                    )
