"""Rule ``lease-protocol`` — campaign leases are released and renewed.

PR 8's sharded campaign scheduler coordinates workers through
filesystem leases (``O_CREAT|O_EXCL`` claim files with mtime
heartbeats).  The protocol's two liveness obligations are textbook
leak bugs when violated, and both are *cross-procedural*, so this rule
rides the whole-program engine:

* **release on all paths** — every ``claim``/``claim_all`` call in
  ``repro.campaigns.*`` must be guaranteed a matching
  ``release``/``release_all``: post-dominated by an unconditional
  release in its own (or an enclosing) block, or covered by a ``try``
  whose ``finally`` releases (enclosing the claim, or entered directly
  after it).  A claim that can leak only until the TTL expires is
  still a finding: a leaked lease stalls every peer for a full
  staleness window, and TTL-steal (the rename-aside tombstone path) is
  the *crash* recovery mechanism, not an excuse for exception paths.
* **heartbeat reachability** — from every claiming function, a
  ``renew(...)`` call must be reachable through the call graph,
  otherwise executing a cell longer than the TTL gets its lease stolen
  mid-run.  Reachability uses the engine's reference edges, so the
  scheduler's pattern — ``claim_all`` registers the key with a
  heartbeat object that starts ``threading.Thread(target=self._run)``
  whose loop calls ``store.renew`` — resolves across the thread
  boundary.

Adapter code is exempt from both checks: a claim call inside a class
that itself defines a release-like method (``_Claims`` wrapping the
store, the store's own retry loop) is the protocol *implementation*,
whose pairing discipline lives at its call sites.  The rule fires only
for ``repro.campaigns.*`` modules — fixture trees reproduce the
package path to exercise it.
"""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from ..findings import Finding
from ..registry import Rule, register
from ..program import RELEASE_NAMES

__all__ = ["LeaseProtocolRule"]

_SCOPE = "repro.campaigns"

_RELEASE_HINT = (
    "wrap the claimed work in try/finally with release/release_all in "
    "the finally, or release unconditionally before any early exit"
)
_RENEW_HINT = (
    "register the claimed key with the heartbeat (so a renew() call is "
    "reachable from the claiming path), or execution longer than the "
    "TTL gets its lease stolen mid-run"
)


def _in_scope(module: str) -> bool:
    return module == _SCOPE or module.startswith(_SCOPE + ".")


@register
class LeaseProtocolRule(Rule):
    name = "lease-protocol"
    description = (
        "every campaign lease claim is post-dominated by a release (or "
        "a finally that releases), and a heartbeat renew() is "
        "reachable from every claiming path"
    )

    def finalize(self, project) -> Iterator[Finding]:
        index = project.index
        #: claiming functions already cleared for renew reachability
        renew_ok: Set[Tuple[str, str]] = set()
        renew_flagged: Set[Tuple[str, str]] = set()
        for rel in sorted(project.facts):
            facts = project.facts[rel]
            if facts is None or not _in_scope(facts["module"]):
                continue
            module = facts["module"]
            classes = facts.get("classes", {})
            for claim in facts.get("claims", []):
                cls = claim.get("cls")
                if cls is not None:
                    members = classes.get(cls, {}).get("members", {})
                    if any(name in members for name in RELEASE_NAMES):
                        continue  # protocol adapter — checked at call sites
                if not claim.get("guarded"):
                    yield Finding(
                        path=rel,
                        line=claim["line"],
                        col=claim["col"],
                        rule=self.name,
                        message=(
                            f"lease {claim['base']}() in "
                            f"{claim['caller'] or module} is not released "
                            "on all paths (no post-dominating release or "
                            "finally)"
                        ),
                        hint=_RELEASE_HINT,
                    )
                key = (module, claim["caller"])
                if key in renew_ok or key in renew_flagged:
                    continue
                if index.reaches_call(module, claim["caller"], "renew"):
                    renew_ok.add(key)
                    continue
                renew_flagged.add(key)
                yield Finding(
                    path=rel,
                    line=claim["line"],
                    col=claim["col"],
                    rule=self.name,
                    message=(
                        "no heartbeat renew() is reachable from claiming "
                        f"path {claim['caller'] or module} — a held lease "
                        "goes stale during long execution"
                    ),
                    hint=_RENEW_HINT,
                )
