"""Rule ``backend-parity`` — the scalar and vectorized fleets agree.

The two DES backends promise the same control trajectory from two
data-plane implementations: :class:`repro.cloud.fleet.ApplicationFleet`
(event-per-request) and :class:`repro.cloud.vecfleet.VectorFleet`
(structure-of-arrays).  Policies, analyzers and telemetry talk to
"the fleet" through whichever one the backend built, so an attribute
present on one and missing on the other is a latent
``AttributeError`` that only detonates under the *other* backend — the
exact class of bug a per-module linter cannot see.

Two whole-program checks, both census-style:

* **member census** (both directions): every public member of
  ``ApplicationFleet`` must exist on ``VectorFleet`` and vice versa,
  except names allowlisted as intentionally single-backend
  (:data:`SCALAR_ONLY` — per-instance dispatch surface that has no
  array analogue; :data:`VEC_ONLY` — the block data-plane API the
  epoch loop drives).  An allowlisted name that *both* classes define
  is a stale allowlist entry, also flagged.
* **attribute-use census**: every fleet-typed attribute access in
  library code (receivers typed by the engine's dataflow lattice —
  constructor results, ``ctx.fleet`` chains, parameters named
  ``fleet``) must exist on the fleet API; accesses on a receiver that
  may be *either* backend must resolve on both (modulo allowlists).
  ``Monitor``-typed receivers get the membership check too, since both
  backends share one monitor.

Checks fire only when the defining classes are in the scan, so
fixture trees opt in by shipping miniature ``repro/cloud`` modules and
linting ``tests/`` alone stays quiet.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..findings import Finding
from ..registry import Rule, register

__all__ = ["ParityRule", "SCALAR_ONLY", "VEC_ONLY"]

_APP = ("repro.cloud.fleet", "ApplicationFleet")
_VEC = ("repro.cloud.vecfleet", "VectorFleet")
_MON = ("repro.cloud.monitor", "Monitor")

#: ApplicationFleet members with no vectorized analogue by design:
#: the per-instance dispatch/shaping surface (single requests, named
#: instances, speed knobs) that the array plane replaces wholesale.
SCALAR_ONLY = frozenset(
    {
        "dispatch",
        "active_instances",
        "grow_with_spec",
        "scale_down_instance",
        "set_speed",
        "balancer",
    }
)

#: VectorFleet members with no scalar analogue by design: the block
#: data-plane API (arrival buffers, epoch advancement, span counters)
#: that the event-per-request engine never needs.
VEC_ONLY = frozenset(
    {
        "occupancy",
        "in_flight",
        "load",
        "buffered",
        "advance",
        "finish",
        "arrivals_processed",
        "completions_processed",
        "spans",
    }
)

_PARITY_HINT = (
    "implement the member on the other backend's class, or add it to "
    "the SCALAR_ONLY/VEC_ONLY allowlist in repro.lint.rules.parity if "
    "the asymmetry is intentional"
)
_UNKNOWN_HINT = "no such public member — a latent AttributeError"


def _public(members: Dict[str, int]) -> Dict[str, int]:
    return {m: line for m, line in members.items() if not m.startswith("_")}


@register
class ParityRule(Rule):
    name = "backend-parity"
    description = (
        "ApplicationFleet and VectorFleet stay member-for-member in "
        "parity (modulo the scalar-only/vec-only allowlists), and "
        "every fleet/monitor attribute use in library code resolves"
    )

    def finalize(self, project) -> Iterator[Finding]:
        index = project.index
        app = index.class_members(*_APP)
        vec = index.class_members(*_VEC)
        mon = index.class_members(*_MON)
        if app is not None and vec is not None:
            yield from self._census(index, app, vec)
        yield from self._uses(project, app, vec, mon)

    # ------------------------------------------------------------------
    def _census(self, index, app: Dict[str, int], vec: Dict[str, int]):
        app_pub, vec_pub = _public(app), _public(vec)
        app_rel = index.facts(_APP[0])["rel"]
        vec_rel = index.facts(_VEC[0])["rel"]
        for name in sorted(set(app_pub) - set(vec_pub) - SCALAR_ONLY):
            yield Finding(
                path=app_rel,
                line=app_pub[name],
                col=0,
                rule=self.name,
                message=(
                    f"public ApplicationFleet member {name!r} has no "
                    "VectorFleet counterpart"
                ),
                hint=_PARITY_HINT,
            )
        for name in sorted(set(vec_pub) - set(app_pub) - VEC_ONLY):
            yield Finding(
                path=vec_rel,
                line=vec_pub[name],
                col=0,
                rule=self.name,
                message=(
                    f"public VectorFleet member {name!r} has no "
                    "ApplicationFleet counterpart"
                ),
                hint=_PARITY_HINT,
            )
        for name in sorted(SCALAR_ONLY & set(vec_pub)):
            yield Finding(
                path=vec_rel,
                line=vec_pub[name],
                col=0,
                rule=self.name,
                message=(
                    f"{name!r} is allowlisted as scalar-only but "
                    "VectorFleet defines it — stale allowlist entry"
                ),
                hint="drop the name from SCALAR_ONLY",
            )
        for name in sorted(VEC_ONLY & set(app_pub)):
            yield Finding(
                path=app_rel,
                line=app_pub[name],
                col=0,
                rule=self.name,
                message=(
                    f"{name!r} is allowlisted as vec-only but "
                    "ApplicationFleet defines it — stale allowlist entry"
                ),
                hint="drop the name from VEC_ONLY",
            )

    # ------------------------------------------------------------------
    def _uses(
        self,
        project,
        app: Optional[Dict[str, int]],
        vec: Optional[Dict[str, int]],
        mon: Optional[Dict[str, int]],
    ):
        defining = {_APP[0], _VEC[0], _MON[0]}
        for rel in sorted(project.facts):
            facts = project.facts[rel]
            if facts is None:
                continue
            module = facts["module"]
            if not (module == "repro" or module.startswith("repro.")):
                continue
            if module in defining or module.startswith("repro.lint"):
                continue
            for use in facts.get("attr_uses", []):
                attr = use["attr"]
                if attr.startswith("_"):
                    continue
                yield from self._check_use(rel, use, attr, app, vec, mon)

    def _check_use(self, rel, use, attr, app, vec, mon):
        kind = use["kind"]

        def finding(message: str, hint: str) -> Finding:
            return Finding(
                path=rel,
                line=use["line"],
                col=use["col"],
                rule=self.name,
                message=message,
                hint=hint,
            )

        if kind == "monitor":
            if mon is not None and attr not in mon:
                yield finding(
                    f"use of unknown Monitor attribute {attr!r}", _UNKNOWN_HINT
                )
            return
        if kind == "app" and app is not None:
            if attr not in app:
                yield finding(
                    f"use of unknown ApplicationFleet attribute {attr!r}",
                    _UNKNOWN_HINT,
                )
            elif vec is not None and attr not in vec and attr not in SCALAR_ONLY:
                yield finding(
                    f"scalar fleet attribute {attr!r} has no VectorFleet "
                    "counterpart (and is not allowlisted scalar-only)",
                    _PARITY_HINT,
                )
            return
        if kind == "vec" and vec is not None:
            if attr not in vec:
                yield finding(
                    f"use of unknown VectorFleet attribute {attr!r}",
                    _UNKNOWN_HINT,
                )
            elif app is not None and attr not in app and attr not in VEC_ONLY:
                yield finding(
                    f"vectorized fleet attribute {attr!r} has no "
                    "ApplicationFleet counterpart (and is not allowlisted "
                    "vec-only)",
                    _PARITY_HINT,
                )
            return
        if kind == "fleet" and app is not None and vec is not None:
            known = set(app) | set(vec)
            if attr not in known:
                yield finding(
                    f"use of unknown fleet attribute {attr!r} (neither "
                    "backend defines it)",
                    _UNKNOWN_HINT,
                )
                return
            if attr not in vec and attr not in SCALAR_ONLY:
                yield finding(
                    f"either-backend fleet receiver uses {attr!r}, which "
                    "VectorFleet lacks (not allowlisted scalar-only)",
                    _PARITY_HINT,
                )
            if attr not in app and attr not in VEC_ONLY:
                yield finding(
                    f"either-backend fleet receiver uses {attr!r}, which "
                    "ApplicationFleet lacks (not allowlisted vec-only)",
                    _PARITY_HINT,
                )
