"""Rule ``pool-safety`` — nothing unpicklable crosses the process pool.

``run_replications(workers=N)`` and the campaign executor ship work
items through a :class:`concurrent.futures.ProcessPoolExecutor`.  A
lambda, a nested function, or a config object carrying a function-
valued default silently demotes the run to the sequential fallback (or
dies in the worker), so the parallel speedup evaporates without a test
failing.  This rule flags the statically visible shapes:

* a ``lambda`` or *nested* function passed as the callable of
  ``pool.submit(...)`` / ``pool.map(...)`` in any ``repro.*`` module
  that touches ``ProcessPoolExecutor``;
* the same shapes passed as the *policy factory* (second positional
  argument) of ``run_replications`` / ``run_replications_parallel``
  calls inside the library — scripts and tests may rely on the logged
  sequential fallback, the library itself must not;
* a dataclass field whose **default value** is a lambda
  (``x: Callable = lambda: ...`` or ``field(default=lambda: ...)``):
  every instance then carries an unpicklable attribute into the work
  item.  ``field(default_factory=list)`` is fine — the factory runs at
  init time and only its (picklable) result is stored.

The sanctioned spelling for factories that must cross the boundary is
:class:`repro.experiments.parallel.PolicySpec` or any module-level
callable.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..astutil import dotted_name, walk_with_function
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["PoolSafetyRule"]

_HINT = (
    "use a module-level callable or "
    "repro.experiments.parallel.PolicySpec; only picklable objects "
    "cross the ProcessPoolExecutor boundary"
)

#: callable-position argument index per pool-crossing call name.
_POOL_CALLS = {"submit": 0, "map": 0}
_RUNNER_CALLS = {"run_replications": 1, "run_replications_parallel": 1}


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function."""
    nested: Set[str] = set()
    for node, func in walk_with_function(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and func is not None:
            nested.add(node.name)
    return nested


def _lambda_bound_names(tree: ast.Module) -> Set[str]:
    """Names assigned a lambda anywhere in the module."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.value, ast.Lambda)
            and isinstance(node.target, ast.Name)
        ):
            out.add(node.target.id)
    return out


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _references_pool(tree: ast.Module) -> bool:
    """Does the module mention ProcessPoolExecutor (import or use)?"""
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == "ProcessPoolExecutor":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "ProcessPoolExecutor":
            return True
        if isinstance(node, ast.ImportFrom):
            if any(a.name == "ProcessPoolExecutor" for a in node.names):
                return True
    return False


@register
class PoolSafetyRule(Rule):
    name = "pool-safety"
    description = (
        "no lambdas, nested functions, or function-valued dataclass "
        "defaults may cross the ProcessPoolExecutor boundary"
    )

    def check_module(self, ctx) -> Iterator[Finding]:
        module = ctx.module
        if not (module == "repro" or module.startswith("repro.")):
            return
        if module.startswith("repro.lint"):
            return
        yield from self._check_dataclass_defaults(ctx)

        pool_module = _references_pool(ctx.tree)
        nested = _nested_function_names(ctx.tree)
        lambda_names = _lambda_bound_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee: Optional[str] = None
            if isinstance(node.func, ast.Attribute):
                callee = node.func.attr
            elif isinstance(node.func, ast.Name):
                callee = node.func.id
            if callee in _POOL_CALLS and isinstance(node.func, ast.Attribute):
                # only attribute form (pool.submit / pool.map) — the
                # builtin map() is not a pool call.
                if pool_module:
                    yield from self._check_callable_arg(
                        ctx, node, _POOL_CALLS[callee], callee, nested, lambda_names
                    )
            elif callee in _RUNNER_CALLS:
                yield from self._check_callable_arg(
                    ctx, node, _RUNNER_CALLS[callee], callee, nested, lambda_names
                )

    # ------------------------------------------------------------------
    def _check_callable_arg(
        self,
        ctx,
        call: ast.Call,
        index: int,
        callee: str,
        nested: Set[str],
        lambda_names: Set[str],
    ) -> Iterator[Finding]:
        if len(call.args) <= index:
            return
        arg = call.args[index]
        what: Optional[str] = None
        if isinstance(arg, ast.Lambda):
            what = "a lambda"
        elif isinstance(arg, ast.Name) and arg.id in nested:
            what = f"nested function {arg.id!r}"
        elif isinstance(arg, ast.Name) and arg.id in lambda_names:
            what = f"lambda-valued name {arg.id!r}"
        if what is not None:
            yield Finding(
                path=ctx.rel,
                line=call.lineno,
                col=call.col_offset,
                rule=self.name,
                message=(
                    f"{what} passed to {callee}() cannot cross the "
                    "process-pool boundary (unpicklable)"
                ),
                hint=_HINT,
            )

    def _check_dataclass_defaults(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass_decorated(node):
                continue
            for stmt in node.body:
                value: Optional[ast.AST] = None
                if isinstance(stmt, ast.AnnAssign):
                    value = stmt.value
                elif isinstance(stmt, ast.Assign):
                    value = stmt.value
                if value is None:
                    continue
                bad: Optional[ast.AST] = None
                if isinstance(value, ast.Lambda):
                    bad = value
                elif isinstance(value, ast.Call):
                    name = dotted_name(value.func)
                    if name is not None and name.split(".")[-1] == "field":
                        for kw in value.keywords:
                            if kw.arg == "default" and isinstance(
                                kw.value, ast.Lambda
                            ):
                                bad = kw.value
                if bad is not None:
                    yield Finding(
                        path=ctx.rel,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        rule=self.name,
                        message=(
                            f"dataclass {node.name} has a lambda-valued "
                            "default field — instances become unpicklable "
                            "work items"
                        ),
                        hint=_HINT,
                    )
