"""Rule ``rng-streams`` — every library RNG draw has registered provenance.

Bit-identical replications (the paper's evaluation discipline, ROADMAP
item 1) require that every random number in a run traces to a *named,
seeded stream*: ``RandomStreams.get(name)`` keyed off the replication
seed.  The stream names themselves are the provenance ledger —
:data:`repro.sim.rng.STREAM_REGISTRY` declares each name and its
purpose, and this rule cross-checks library code against that table in
both directions (the same census pattern as ``trace-schema``):

* drawing an **unregistered** stream name is a finding — an
  undocumented randomness source;
* a **registered** name that no ``repro.*`` module ever draws is dead
  registry — flagged at its entry (only when the scan covers
  ``repro.sim.rng`` itself, so linting ``tests/`` alone stays quiet);
* **duplicate** registry keys are findings (a dict literal silently
  keeps the last one);
* a draw whose name cannot be resolved statically defeats the census —
  flagged, with three sanctioned shapes that *are* resolved: literal
  strings (incl. two-literal conditionals), module-level string
  constants (``streams.get(REVOCATION_STREAM)``), and f-strings whose
  literal prefix matches a registered ``prefix.*`` family
  (``f"service.{tier.name}"`` under ``service.*``);
* constructing a generator *outside* the stream discipline —
  ``numpy.random.default_rng(...)`` anywhere but ``repro.sim.rng``
  itself — is a finding even when seeded: a seeded ad-hoc generator is
  reproducible but invisible to the provenance census (the
  ``determinism`` rule separately bans the unseeded form).

Receivers are typed by the engine's dataflow lattice
(:mod:`repro.lint.program`): ``streams = RandomStreams(seed)``,
``RandomStreams(0).get(...)`` chains, ``streams.spawn(i)`` results,
parameters named/annotated ``streams`` — all resolve to stream
factories.  ``RandomStreams.spawn`` itself is sanctioned (it derives
per-replication factories, not anonymous generators).

The registry is read from the *scanned* ``repro.sim.rng`` module's
``STREAM_REGISTRY`` dict literal when the scan covers it (which is
what lets fixture trees carry their own registry), falling back to the
live import otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..registry import Rule, register

__all__ = ["RngStreamsRule"]

_RNG_MODULE = "repro.sim.rng"

_REGISTER_HINT = (
    "register the stream name (with its purpose) in "
    "repro.sim.rng.STREAM_REGISTRY"
)
_LITERAL_HINT = (
    "pass the stream name as a string literal, a module-level string "
    "constant, or an f-string whose prefix matches a registered "
    "'prefix.*' family, so the provenance census can see it"
)
_DEAD_HINT = (
    "draw the stream somewhere, or delete its registry entry if the "
    "randomness source was removed"
)
_ADHOC_HINT = (
    "derive the generator from the replication's RandomStreams "
    "factory (streams.get(<registered name>)) so it shares the seeded "
    "provenance ledger"
)


def _scoped(module: str) -> bool:
    return (module == "repro" or module.startswith("repro.")) and not (
        module.startswith("repro.lint")
    )


def _load_registry(project) -> Tuple[Dict[str, int], Optional[str], List[List[object]]]:
    """(name → line, registry module rel or None, duplicate entries)."""
    for facts in project.facts.values():
        if facts is None or facts.get("module") != _RNG_MODULE:
            continue
        registry = facts.get("registry")
        if registry is not None:
            return dict(registry["streams"]), facts["rel"], list(registry["duplicates"])
        break
    try:
        from ...sim.rng import STREAM_REGISTRY
    except Exception:  # pragma: no cover - numpy-less environments
        return {}, None, []
    return {name: 0 for name in STREAM_REGISTRY}, None, []


def _family_prefixes(registry: Dict[str, int]) -> List[str]:
    return [name[:-1] for name in registry if name.endswith(".*")]


@register
class RngStreamsRule(Rule):
    name = "rng-streams"
    description = (
        "every RandomStreams draw in library code uses a stream name "
        "registered in repro.sim.rng.STREAM_REGISTRY (and every "
        "registered stream is drawn); ad-hoc numpy generators are "
        "banned outside the stream factory"
    )

    def finalize(self, project) -> Iterator[Finding]:
        registry, registry_rel, duplicates = _load_registry(project)
        families = _family_prefixes(registry)
        used: Set[str] = set()

        def covered(name: str) -> Optional[str]:
            """The registry entry covering ``name``, or None."""
            if name in registry:
                return name
            for prefix in families:
                if name.startswith(prefix):
                    return prefix + "*"
            return None

        if registry_rel is not None:
            for name, line in duplicates:
                yield Finding(
                    path=registry_rel,
                    line=int(line),
                    col=0,
                    rule=self.name,
                    message=(
                        f"duplicate STREAM_REGISTRY entry {name!r} "
                        "(a dict literal silently keeps the last)"
                    ),
                    hint="remove or rename the duplicate entry",
                )

        for rel in sorted(project.facts):
            facts = project.facts[rel]
            if facts is None or not _scoped(facts["module"]):
                continue
            rng = facts.get("rng", {})
            for site in rng.get("get", []):
                yield from self._check_draw(
                    facts, site, project, covered, families, used
                )
            if facts["module"] == _RNG_MODULE:
                continue
            for site in rng.get("default_rng", []):
                yield Finding(
                    path=rel,
                    line=site["line"],
                    col=site["col"],
                    rule=self.name,
                    message=(
                        "ad-hoc numpy generator construction in "
                        f"{facts['module']} bypasses the named stream "
                        "registry"
                    ),
                    hint=_ADHOC_HINT,
                )

        # Dead-registry direction — only when the scan covered the
        # registry module itself (with an extracted table, so line
        # numbers exist to anchor the findings).
        if registry_rel is None:
            return
        for name in registry:
            key = name[:-1] + "*" if name.endswith(".*") else name
            if key in used:
                continue
            yield Finding(
                path=registry_rel,
                line=registry[name],
                col=0,
                rule=self.name,
                message=(
                    f"registered stream {name!r} is never drawn by any "
                    "library module"
                ),
                hint=_DEAD_HINT,
            )

    def _check_draw(
        self, facts, site, project, covered, families: List[str], used: Set[str]
    ) -> Iterator[Finding]:
        rel = facts["rel"]
        arg0 = site.get("arg0")
        if arg0 is None:
            return
        if "lit" in arg0:
            for name in arg0["lit"]:
                entry = covered(name)
                if entry is not None:
                    used.add(entry)
                else:
                    yield Finding(
                        path=rel,
                        line=site["line"],
                        col=site["col"],
                        rule=self.name,
                        message=(
                            f"draw of unregistered stream name {name!r}"
                        ),
                        hint=_REGISTER_HINT,
                    )
            return
        if "name" in arg0:
            value = project.index.resolve_constant(facts["module"], arg0["name"])
            if value is not None:
                entry = covered(value)
                if entry is not None:
                    used.add(entry)
                else:
                    yield Finding(
                        path=rel,
                        line=site["line"],
                        col=site["col"],
                        rule=self.name,
                        message=(
                            f"draw of unregistered stream name {value!r} "
                            f"(via constant {arg0['name']})"
                        ),
                        hint=_REGISTER_HINT,
                    )
                return
        if "fstr" in arg0:
            prefix = arg0["fstr"]
            match = next((p for p in sorted(families) if prefix.startswith(p)), None)
            if match is not None:
                used.add(match + "*")
                return
            yield Finding(
                path=rel,
                line=site["line"],
                col=site["col"],
                rule=self.name,
                message=(
                    "dynamically composed stream name matches no "
                    "registered 'prefix.*' family"
                    + (f" (literal prefix {prefix!r})" if prefix else "")
                ),
                hint=_LITERAL_HINT,
            )
            return
        yield Finding(
            path=rel,
            line=site["line"],
            col=site["col"],
            rule=self.name,
            message=(
                f"stream name in {facts['module']} cannot be resolved "
                "statically, defeating the provenance census"
            ),
            hint=_LITERAL_HINT,
        )
