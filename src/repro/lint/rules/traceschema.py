"""Rule ``trace-schema`` — emit sites and the event registry must agree.

Every trace event the library emits is validated at runtime against
:data:`repro.obs.schema.EVENT_TYPES` — but only *if* something emits
it with tracing on.  This rule closes the static gap in both
directions by cross-checking against the **live registry** (imported
from :mod:`repro.obs.schema`, never a copied list):

* an ``emit("name", ...)`` call site whose name is not registered
  would raise :class:`~repro.errors.TraceSchemaError` on the first
  traced run — flagged at the call site;
* a registered event type that no ``repro.*`` module ever emits is
  dead schema (documentation promising events that never happen) —
  flagged at its registry line in ``repro/obs/schema.py``;
* an emit whose event name cannot be resolved statically defeats both
  checks — flagged, with two sanctioned shapes that *are* resolved:
  a conditional of two literals (``"a" if cond else "b"``) and a
  *forwarding wrapper* (a function that passes one of its own
  parameters straight through as the event name, e.g.
  ``ApplicationFleet._emit_vm``); wrapper call sites are then held to
  the same literal-name standard.

The never-emitted check only runs when ``repro.obs.schema`` itself is
among the scanned modules (i.e. the scan covers the library source) —
linting ``tests/`` alone must not report the whole registry as dead.
Call sites in non-``repro`` modules (tests emit synthetic events on
purpose) are ignored.

The same contract holds for *metrics*: every instrument name passed to
``registry.counter("...")`` / ``gauge`` / ``histogram`` must be
declared in :data:`repro.obs.metrics.METRIC_NAMES` (undeclared names
raise :class:`~repro.errors.ConfigurationError` the first time a
metrics-enabled run builds its registry), and every declared name must
have at least one literal creation site in the library — a declared
metric nobody creates is dead documentation.  Only literal-string
first arguments count as creation sites, which keeps unrelated callees
(``np.histogram(data, bins)``, ``collections.Counter(seq)``) out of
scope; the never-created direction, like dead-schema, only runs when
the scan covers ``repro.obs.metrics`` itself.

The rule is a pure ``finalize`` pass over the engine's *facts* table
(call sites with statically-resolved first arguments, extracted by
:mod:`repro.lint.program`), never over live ASTs — that is what lets
the incremental cache replay unchanged modules into the census without
re-parsing them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ...obs.metrics import METRIC_NAMES
from ...obs.schema import EVENT_TYPES
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["TraceSchemaRule"]

#: The bus module defines ``emit`` — its body is not a call site.
_BUS_MODULE = "repro.obs.bus"
_SCHEMA_MODULE = "repro.obs.schema"
_METRICS_MODULE = "repro.obs.metrics"

#: Registry factory methods whose literal first argument is a metric name.
_INSTRUMENT_FACTORIES = ("counter", "gauge", "histogram")

_REGISTER_HINT = (
    "register the event (with its required payload fields) in "
    "repro.obs.schema.EVENT_TYPES"
)
_LITERAL_HINT = (
    "pass the event name as a string literal (or a conditional of two "
    "literals, or a wrapper parameter forwarded verbatim) so the "
    "schema cross-check can see it"
)
_DEAD_HINT = (
    "emit the event somewhere, or delete its registry entry (and its "
    "docs) if the instrumentation was removed"
)
_METRIC_DECLARE_HINT = (
    "declare the metric (name, kind, help) in "
    "repro.obs.metrics.METRIC_NAMES"
)
_METRIC_DEAD_HINT = (
    "create the instrument at some call site, or delete its "
    "METRIC_NAMES entry (and its docs) if the instrumentation was "
    "removed"
)


def _scoped(module: str) -> bool:
    return (module == "repro" or module.startswith("repro.")) and not (
        module == _BUS_MODULE or module.startswith("repro.lint")
    )


@register
class TraceSchemaRule(Rule):
    name = "trace-schema"
    description = (
        "every emitted trace event name is registered in "
        "repro.obs.schema (and every registered event is emitted); "
        "every created metric name is declared in "
        "repro.obs.metrics.METRIC_NAMES (and every declared metric is "
        "created)"
    )

    def finalize(self, project) -> Iterator[Finding]:
        modules = [
            f
            for _rel, f in sorted(project.facts.items())
            if f is not None and _scoped(f["module"])
        ]

        #: event name → first (path, line) that emits it
        emitted: Dict[str, Tuple[str, int]] = {}
        findings: List[Finding] = []
        #: names of forwarding-wrapper functions discovered in pass 1
        wrappers: Set[str] = set()

        # Pass 1: direct emit(...) call sites; discover wrappers.
        for facts in modules:
            for call in facts["calls"]:
                if call["base"] != "emit":
                    continue
                arg0 = call["arg0"]
                if arg0 is None:
                    continue
                if "lit" in arg0:
                    for name in arg0["lit"]:
                        emitted.setdefault(name, (facts["rel"], call["line"]))
                        if name not in EVENT_TYPES:
                            findings.append(
                                Finding(
                                    path=facts["rel"],
                                    line=call["line"],
                                    col=call["col"],
                                    rule=self.name,
                                    message=(
                                        f"emit of unregistered trace event "
                                        f"{name!r} (would fail schema "
                                        "validation at runtime)"
                                    ),
                                    hint=_REGISTER_HINT,
                                )
                            )
                    continue
                if "param" in arg0 and call["caller"]:
                    # Forwarding wrapper: hold its call sites to the
                    # literal-name standard in pass 2.
                    wrappers.add(call["caller"].rsplit(".", 1)[-1])
                    continue
                findings.append(
                    Finding(
                        path=facts["rel"],
                        line=call["line"],
                        col=call["col"],
                        rule=self.name,
                        message=(
                            f"emit with a dynamic event name in "
                            f"{facts['module']} defeats static schema checking"
                        ),
                        hint=_LITERAL_HINT,
                    )
                )

        # Pass 2: wrapper call sites count as emissions of their
        # literal first argument.
        wrappers.discard("emit")
        for facts in modules:
            for call in facts["calls"]:
                callee = call["base"]
                if callee not in wrappers:
                    continue
                arg0 = call["arg0"]
                if arg0 is None:
                    continue
                if "lit" not in arg0:
                    if "param" in arg0:
                        continue  # the wrapper body's own forwarding call
                    findings.append(
                        Finding(
                            path=facts["rel"],
                            line=call["line"],
                            col=call["col"],
                            rule=self.name,
                            message=(
                                f"call of trace wrapper {callee}() with a "
                                "dynamic event name defeats static schema "
                                "checking"
                            ),
                            hint=_LITERAL_HINT,
                        )
                    )
                    continue
                for name in arg0["lit"]:
                    emitted.setdefault(name, (facts["rel"], call["line"]))
                    if name not in EVENT_TYPES:
                        findings.append(
                            Finding(
                                path=facts["rel"],
                                line=call["line"],
                                col=call["col"],
                                rule=self.name,
                                message=(
                                    f"emit of unregistered trace event "
                                    f"{name!r} via wrapper {callee}() "
                                    "(would fail schema validation at runtime)"
                                ),
                                hint=_REGISTER_HINT,
                            )
                        )

        yield from findings

        # Metric-name cross-check: literal instrument-factory call
        # sites (registry.counter/gauge/histogram) vs METRIC_NAMES.
        #: metric name → first (path, line) that creates it
        created: Dict[str, Tuple[str, int]] = {}
        for facts in modules:
            for call in facts["calls"]:
                if call["base"] not in _INSTRUMENT_FACTORIES:
                    continue
                arg0 = call["arg0"]
                if arg0 is None or "lit" not in arg0:
                    # Dynamic first arguments are out of scope on
                    # purpose: they are how unrelated callees look
                    # (np.histogram(data, bins), Counter(seq)).
                    continue
                for name in arg0["lit"]:
                    created.setdefault(name, (facts["rel"], call["line"]))
                    if name not in METRIC_NAMES:
                        yield Finding(
                            path=facts["rel"],
                            line=call["line"],
                            col=call["col"],
                            rule=self.name,
                            message=(
                                f"creation of undeclared metric {name!r} "
                                "(would raise ConfigurationError when the "
                                "registry builds it)"
                            ),
                            hint=_METRIC_DECLARE_HINT,
                        )
        metrics_facts = next(
            (f for f in modules if f["module"] == _METRICS_MODULE), None
        )
        if metrics_facts is not None:
            for metric in METRIC_NAMES:
                if metric in created:
                    continue
                yield Finding(
                    path=metrics_facts["rel"],
                    line=self._registry_line(metrics_facts, metric),
                    col=0,
                    rule=self.name,
                    message=(
                        f"declared metric {metric!r} is never created "
                        "by any library module"
                    ),
                    hint=_METRIC_DEAD_HINT,
                )

        # Dead-schema direction — only when the scan covered the
        # registry module itself.
        schema_facts = next(
            (f for f in modules if f["module"] == _SCHEMA_MODULE), None
        )
        if schema_facts is None:
            return
        for event in EVENT_TYPES:
            if event in emitted:
                continue
            yield Finding(
                path=schema_facts["rel"],
                line=self._registry_line(schema_facts, event),
                col=0,
                rule=self.name,
                message=(
                    f"registered trace event {event!r} is never emitted "
                    "by any library module"
                ),
                hint=_DEAD_HINT,
            )

    @staticmethod
    def _registry_line(facts: dict, name: str) -> int:
        """Line of the name's registry entry (best effort, else 1)."""
        return int(facts.get("string_lines", {}).get(name, 1))
