"""Rule ``trace-schema`` — emit sites and the event registry must agree.

Every trace event the library emits is validated at runtime against
:data:`repro.obs.schema.EVENT_TYPES` — but only *if* something emits
it with tracing on.  This rule closes the static gap in both
directions by cross-checking against the **live registry** (imported
from :mod:`repro.obs.schema`, never a copied list):

* an ``emit("name", ...)`` call site whose name is not registered
  would raise :class:`~repro.errors.TraceSchemaError` on the first
  traced run — flagged at the call site;
* a registered event type that no ``repro.*`` module ever emits is
  dead schema (documentation promising events that never happen) —
  flagged at its registry line in ``repro/obs/schema.py``;
* an emit whose event name cannot be resolved statically defeats both
  checks — flagged, with two sanctioned shapes that *are* resolved:
  a conditional of two literals (``"a" if cond else "b"``) and a
  *forwarding wrapper* (a function that passes one of its own
  parameters straight through as the event name, e.g.
  ``ApplicationFleet._emit_vm``); wrapper call sites are then held to
  the same literal-name standard.

The never-emitted check only runs when ``repro.obs.schema`` itself is
among the scanned modules (i.e. the scan covers the library source) —
linting ``tests/`` alone must not report the whole registry as dead.
Call sites in non-``repro`` modules (tests emit synthetic events on
purpose) are ignored.

The same contract holds for *metrics*: every instrument name passed to
``registry.counter("...")`` / ``gauge`` / ``histogram`` must be
declared in :data:`repro.obs.metrics.METRIC_NAMES` (undeclared names
raise :class:`~repro.errors.ConfigurationError` the first time a
metrics-enabled run builds its registry), and every declared name must
have at least one literal creation site in the library — a declared
metric nobody creates is dead documentation.  Only literal-string
first arguments count as creation sites, which keeps unrelated callees
(``np.histogram(data, bins)``, ``collections.Counter(seq)``) out of
scope; the never-created direction, like dead-schema, only runs when
the scan covers ``repro.obs.metrics`` itself.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ...obs.metrics import METRIC_NAMES
from ...obs.schema import EVENT_TYPES
from ..astutil import literal_strings, walk_with_function
from ..findings import Finding
from ..registry import Rule, register

__all__ = ["TraceSchemaRule"]

#: The bus module defines ``emit`` — its body is not a call site.
_BUS_MODULE = "repro.obs.bus"
_SCHEMA_MODULE = "repro.obs.schema"
_METRICS_MODULE = "repro.obs.metrics"

#: Registry factory methods whose literal first argument is a metric name.
_INSTRUMENT_FACTORIES = ("counter", "gauge", "histogram")

_REGISTER_HINT = (
    "register the event (with its required payload fields) in "
    "repro.obs.schema.EVENT_TYPES"
)
_LITERAL_HINT = (
    "pass the event name as a string literal (or a conditional of two "
    "literals, or a wrapper parameter forwarded verbatim) so the "
    "schema cross-check can see it"
)
_DEAD_HINT = (
    "emit the event somewhere, or delete its registry entry (and its "
    "docs) if the instrumentation was removed"
)
_METRIC_DECLARE_HINT = (
    "declare the metric (name, kind, help) in "
    "repro.obs.metrics.METRIC_NAMES"
)
_METRIC_DEAD_HINT = (
    "create the instrument at some call site, or delete its "
    "METRIC_NAMES entry (and its docs) if the instrumentation was "
    "removed"
)


def _callee_name(call: ast.Call) -> Optional[str]:
    """Bare name of the called function/method (``emit``, ``_emit_vm``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _param_names(func: ast.AST) -> List[str]:
    """Positional parameter names of a FunctionDef (incl. self)."""
    args = func.args
    return [a.arg for a in args.posonlyargs + args.args]


@register
class TraceSchemaRule(Rule):
    name = "trace-schema"
    description = (
        "every emitted trace event name is registered in "
        "repro.obs.schema (and every registered event is emitted); "
        "every created metric name is declared in "
        "repro.obs.metrics.METRIC_NAMES (and every declared metric is "
        "created)"
    )

    def __init__(self) -> None:
        self._modules: List = []

    def check_module(self, ctx) -> Iterator[Finding]:
        # Collection only — all findings are produced in finalize(),
        # once the whole project (wrappers included) has been seen.
        module = ctx.module
        if (module == "repro" or module.startswith("repro.")) and not (
            module == _BUS_MODULE or module.startswith("repro.lint")
        ):
            self._modules.append(ctx)
        return iter(())

    # ------------------------------------------------------------------
    def finalize(self, project) -> Iterator[Finding]:
        #: event name → first (path, line) that emits it
        emitted: Dict[str, Tuple[str, int]] = {}
        findings: List[Finding] = []
        #: names of forwarding-wrapper functions discovered in pass 1
        wrappers: Set[str] = set()
        #: emit calls that sit inside a wrapper body (not call sites)
        wrapper_emit_calls: Set[int] = set()

        # Pass 1: direct emit(...) call sites; discover wrappers.
        for ctx in self._modules:
            for node, func in walk_with_function(ctx.tree):
                if not isinstance(node, ast.Call) or _callee_name(node) != "emit":
                    continue
                if not node.args:
                    continue
                names = literal_strings(node.args[0])
                if names is not None:
                    for name in names:
                        emitted.setdefault(name, (ctx.rel, node.lineno))
                        if name not in EVENT_TYPES:
                            findings.append(
                                Finding(
                                    path=ctx.rel,
                                    line=node.lineno,
                                    col=node.col_offset,
                                    rule=self.name,
                                    message=(
                                        f"emit of unregistered trace event "
                                        f"{name!r} (would fail schema "
                                        "validation at runtime)"
                                    ),
                                    hint=_REGISTER_HINT,
                                )
                            )
                    continue
                arg = node.args[0]
                if (
                    func is not None
                    and isinstance(arg, ast.Name)
                    and arg.id in _param_names(func)
                ):
                    # Forwarding wrapper: hold its call sites to the
                    # literal-name standard in pass 2.
                    wrappers.add(func.name)
                    wrapper_emit_calls.add(id(node))
                    continue
                findings.append(
                    Finding(
                        path=ctx.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.name,
                        message=(
                            f"emit with a dynamic event name in {ctx.module} "
                            "defeats static schema checking"
                        ),
                        hint=_LITERAL_HINT,
                    )
                )

        # Pass 2: wrapper call sites count as emissions of their
        # literal first argument.
        for ctx in self._modules:
            for node, _func in walk_with_function(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = _callee_name(node)
                if callee not in wrappers or callee == "emit":
                    continue
                if not node.args:
                    continue
                names = literal_strings(node.args[0])
                if names is None:
                    findings.append(
                        Finding(
                            path=ctx.rel,
                            line=node.lineno,
                            col=node.col_offset,
                            rule=self.name,
                            message=(
                                f"call of trace wrapper {callee}() with a "
                                "dynamic event name defeats static schema "
                                "checking"
                            ),
                            hint=_LITERAL_HINT,
                        )
                    )
                    continue
                for name in names:
                    emitted.setdefault(name, (ctx.rel, node.lineno))
                    if name not in EVENT_TYPES:
                        findings.append(
                            Finding(
                                path=ctx.rel,
                                line=node.lineno,
                                col=node.col_offset,
                                rule=self.name,
                                message=(
                                    f"emit of unregistered trace event "
                                    f"{name!r} via wrapper {callee}() "
                                    "(would fail schema validation at runtime)"
                                ),
                                hint=_REGISTER_HINT,
                            )
                        )

        yield from findings

        # Metric-name cross-check: literal instrument-factory call
        # sites (registry.counter/gauge/histogram) vs METRIC_NAMES.
        #: metric name → first (path, line) that creates it
        created: Dict[str, Tuple[str, int]] = {}
        for ctx in self._modules:
            for node, _func in walk_with_function(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                if _callee_name(node) not in _INSTRUMENT_FACTORIES:
                    continue
                if not node.args:
                    continue
                names = literal_strings(node.args[0])
                if names is None:
                    # Dynamic first arguments are out of scope on
                    # purpose: they are how unrelated callees look
                    # (np.histogram(data, bins), Counter(seq)).
                    continue
                for name in names:
                    created.setdefault(name, (ctx.rel, node.lineno))
                    if name not in METRIC_NAMES:
                        yield Finding(
                            path=ctx.rel,
                            line=node.lineno,
                            col=node.col_offset,
                            rule=self.name,
                            message=(
                                f"creation of undeclared metric {name!r} "
                                "(would raise ConfigurationError when the "
                                "registry builds it)"
                            ),
                            hint=_METRIC_DECLARE_HINT,
                        )
        metrics_ctx = next(
            (c for c in self._modules if c.module == _METRICS_MODULE), None
        )
        if metrics_ctx is not None:
            for metric in METRIC_NAMES:
                if metric in created:
                    continue
                yield Finding(
                    path=metrics_ctx.rel,
                    line=self._registry_line(metrics_ctx, metric),
                    col=0,
                    rule=self.name,
                    message=(
                        f"declared metric {metric!r} is never created "
                        "by any library module"
                    ),
                    hint=_METRIC_DEAD_HINT,
                )

        # Dead-schema direction — only when the scan covered the
        # registry module itself.
        schema_ctx = next(
            (c for c in self._modules if c.module == _SCHEMA_MODULE), None
        )
        if schema_ctx is None:
            return
        for event in EVENT_TYPES:
            if event in emitted:
                continue
            yield Finding(
                path=schema_ctx.rel,
                line=self._registry_line(schema_ctx, event),
                col=0,
                rule=self.name,
                message=(
                    f"registered trace event {event!r} is never emitted "
                    "by any library module"
                ),
                hint=_DEAD_HINT,
            )

    @staticmethod
    def _registry_line(schema_ctx, event: str) -> int:
        """Line of the event's registry entry (best effort, else 1)."""
        needle = f'"{event}"'
        for lineno, line in enumerate(schema_ctx.lines, start=1):
            if needle in line:
                return lineno
        return 1
