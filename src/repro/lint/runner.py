"""Lint driver — file discovery, parsing, rule dispatch, suppression.

:func:`run_lint` is the programmatic entry point (the CLI's ``repro
lint`` and ``tools/check_layering.py`` both sit on it):

1. expand the given paths into ``.py`` files (directories recurse);
2. parse each into a :class:`ModuleContext` carrying the AST, the
   source lines (for suppression directives) and the *dotted module
   name*, resolved by walking up through ``__init__.py`` packages —
   ``src/repro/sim/rng.py`` → ``repro.sim.rng``, while a test file
   outside any package resolves to its bare stem.  Rules key their
   applicability on that name, which is why linting ``tests/`` is safe:
   repro-only rules simply do not fire there;
3. run every rule over every module, then give each rule a
   :meth:`~repro.lint.registry.Rule.finalize` pass over the whole
   project (cross-module checks);
4. drop findings silenced by inline ``# reprolint: disable=`` comments.

Baseline handling deliberately stays *outside* this function — the CLI
applies it so programmatic callers (tests, the shim) always see the
full picture.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

from ..errors import LintError
from .findings import Finding
from .registry import Rule, build_rules
from .suppress import is_suppressed, line_suppressions

__all__ = ["ModuleContext", "Project", "LintResult", "run_lint", "module_name_for"]


@dataclass
class ModuleContext:
    """Everything a rule may want to know about one scanned file."""

    path: Path
    #: Display / baseline path — relative to the lint root, POSIX slashes.
    rel: str
    #: Dotted module name (``repro.sim.rng``) or the bare stem for
    #: files outside any package.
    module: str
    tree: ast.Module
    lines: List[str]

    @property
    def suppressions(self) -> Dict[int, FrozenSet[str]]:
        cached = getattr(self, "_suppressions", None)
        if cached is None:
            cached = line_suppressions(self.lines)
            object.__setattr__(self, "_suppressions", cached)
        return cached


@dataclass
class Project:
    """All scanned modules, for whole-program rule passes."""

    modules: List[ModuleContext] = field(default_factory=list)

    def get(self, module: str) -> Optional[ModuleContext]:
        for ctx in self.modules:
            if ctx.module == module:
                return ctx
        return None


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` call (baseline not yet applied)."""

    findings: List[Finding]
    files: int
    suppressed: int
    rules: List[str]


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path`` by walking up the package chain."""
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def discover_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = set()
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.is_file():
            if p.suffix != ".py":
                raise LintError(f"not a Python file: {p}")
            candidates = [p]
        else:
            raise LintError(f"path not found: {p}")
        for c in candidates:
            r = c.resolve()
            if r not in seen:
                seen.add(r)
                out.append(c)
    return out


def _relative(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        return path.as_posix()
    return rel.as_posix()


def _parse(path: Path) -> "tuple[ast.Module, str]":
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise LintError(f"cannot read {path}: {exc}") from None
    try:
        return ast.parse(source, filename=str(path)), source
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc.msg} (line {exc.lineno})") from None


def load_module(path: Path, root: Path) -> ModuleContext:
    """Parse one file into a :class:`ModuleContext`."""
    tree, source = _parse(path)
    return ModuleContext(
        path=path,
        rel=_relative(path, root),
        module=module_name_for(path),
        tree=tree,
        lines=source.splitlines(),
    )


def run_lint(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[str]] = None,
    root: Optional[Union[str, Path]] = None,
) -> LintResult:
    """Lint ``paths`` with the named rules (default: all registered).

    Raises :class:`~repro.errors.LintError` for usage/internal problems
    (missing paths, unknown rules, unparsable source) — the condition
    the CLI maps to exit code 2, distinct from "findings exist" (1).
    """
    root_path = Path(root) if root is not None else Path(os.getcwd())
    rule_objs: List[Rule] = build_rules(rules)
    files = discover_files(paths)
    project = Project()
    for path in files:
        project.modules.append(load_module(path, root_path))

    raw: List[Finding] = []
    for rule in rule_objs:
        for ctx in project.modules:
            try:
                raw.extend(rule.check_module(ctx))
            except LintError:
                raise
            except Exception as exc:  # noqa: BLE001 - rule bug => internal error
                raise LintError(
                    f"rule {rule.name!r} crashed on {ctx.rel}: {exc!r}"
                ) from exc
    for rule in rule_objs:
        try:
            raw.extend(rule.finalize(project))
        except LintError:
            raise
        except Exception as exc:  # noqa: BLE001
            raise LintError(f"rule {rule.name!r} crashed in finalize: {exc!r}") from exc

    by_rel = {ctx.rel: ctx for ctx in project.modules}
    kept: List[Finding] = []
    suppressed = 0
    for finding in sorted(raw):
        ctx = by_rel.get(finding.path)
        if ctx is not None and is_suppressed(
            finding.rule, finding.line, ctx.suppressions
        ):
            suppressed += 1
            continue
        kept.append(finding)
    return LintResult(
        findings=kept,
        files=len(files),
        suppressed=suppressed,
        rules=[r.name for r in rule_objs],
    )
