"""Lint driver — discovery, parsing, caching, rule dispatch, suppression.

:func:`run_lint` is the programmatic entry point (the CLI's ``repro
lint`` sits on it):

1. expand the given paths into ``.py`` files (directories recurse);
2. for each file, consult the incremental cache
   (:mod:`repro.lint.cache`, keyed by content sha256 — opt-in via
   ``cache_path``): a hit replays the file's per-rule findings,
   suppressions and whole-program facts without re-parsing; a miss
   parses the file into a :class:`ModuleContext` — source lines for
   suppression directives plus the *dotted module name*, resolved by
   walking up through ``__init__.py`` packages (``src/repro/sim/rng.py``
   → ``repro.sim.rng``, a test file outside any package → its bare
   stem; rules key their applicability on that name, which is why
   linting ``tests/`` is safe) — runs every rule's ``check_module``
   and extracts :func:`~repro.lint.program.extract_facts`;
3. a file that does not parse is *not* an internal error: it becomes a
   per-file ``parse-error`` finding (exit 1), so one broken file never
   masks the findings in every other file;
4. give each rule a :meth:`~repro.lint.registry.Rule.finalize` pass
   over the whole :class:`Project` — cross-module checks consume the
   facts table (cached files included), never the ASTs, which only
   exist for freshly-parsed files;
5. drop findings silenced by inline ``# reprolint: disable=`` comments.

Baseline handling deliberately stays *outside* this function — the CLI
applies it so programmatic callers (tests) always see the full picture.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

from ..errors import LintError
from .findings import Finding
from .program import ProgramIndex, extract_facts
from .registry import Rule, build_rules
from .suppress import ALL_RULES, is_suppressed, line_suppressions

__all__ = [
    "ModuleContext",
    "Project",
    "LintResult",
    "run_lint",
    "module_name_for",
    "PARSE_ERROR_RULE",
]

#: Pseudo-rule id carried by findings for files that fail to parse.
PARSE_ERROR_RULE = "parse-error"

_PARSE_HINT = "fix the syntax error; the file was skipped by every rule"


@dataclass
class ModuleContext:
    """Everything a rule may want to know about one scanned file."""

    path: Path
    #: Display / baseline path — relative to the lint root, POSIX slashes.
    rel: str
    #: Dotted module name (``repro.sim.rng``) or the bare stem for
    #: files outside any package.
    module: str
    tree: ast.Module
    lines: List[str]

    @property
    def suppressions(self) -> Dict[int, FrozenSet[str]]:
        cached = getattr(self, "_suppressions", None)
        if cached is None:
            cached = line_suppressions(self.lines)
            object.__setattr__(self, "_suppressions", cached)
        return cached


@dataclass
class Project:
    """All scanned modules, for whole-program rule passes.

    ``modules`` holds live :class:`ModuleContext` objects for the files
    parsed *this* run only; ``facts`` (keyed by relative path) covers
    every scanned file, cache hits included.  Whole-program rules must
    therefore work from ``facts`` — ``modules`` is best-effort context,
    not the project census.
    """

    modules: List[ModuleContext] = field(default_factory=list)
    #: rel path → :func:`~repro.lint.program.extract_facts` record
    #: (``None`` for files that failed to parse).
    facts: Dict[str, Optional[dict]] = field(default_factory=dict)

    def get(self, module: str) -> Optional[ModuleContext]:
        for ctx in self.modules:
            if ctx.module == module:
                return ctx
        return None

    @property
    def index(self) -> ProgramIndex:
        """Lazily-built symbol table / call graph over :attr:`facts`."""
        cached = getattr(self, "_index", None)
        if cached is None:
            cached = ProgramIndex(
                {rel: f for rel, f in self.facts.items() if f is not None}
            )
            object.__setattr__(self, "_index", cached)
        return cached


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` call (baseline not yet applied)."""

    findings: List[Finding]
    files: int
    suppressed: int
    rules: List[str]
    #: Files analyzed fresh this run (parse + check_module + facts).
    parsed: int = 0
    #: Files replayed from the incremental cache.
    cached: int = 0
    #: The project census — carried for graph export and diagnostics.
    project: Optional[Project] = None


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path`` by walking up the package chain."""
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def discover_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = set()
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.is_file():
            if p.suffix != ".py":
                raise LintError(f"not a Python file: {p}")
            candidates = [p]
        else:
            raise LintError(f"path not found: {p}")
        for c in candidates:
            r = c.resolve()
            if r not in seen:
                seen.add(r)
                out.append(c)
    return out


def _relative(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        return path.as_posix()
    return rel.as_posix()


def _encode_suppressions(table: Dict[int, FrozenSet[str]]) -> Dict[str, List[str]]:
    return {str(line): sorted(rules) for line, rules in table.items()}


def _decode_suppressions(data: Dict[str, List[str]]) -> Dict[int, FrozenSet[str]]:
    out: Dict[int, FrozenSet[str]] = {}
    for line, rules in data.items():
        names = frozenset(rules)
        out[int(line)] = ALL_RULES if "all" in names else names
    return out


def _analyze(
    path: Path, rel: str, data: bytes, rule_objs: List[Rule], project: Project
) -> dict:
    """Fresh per-file analysis: parse, per-module rules, facts.

    Returns the cacheable record; a live :class:`ModuleContext` is
    appended to ``project.modules`` when the file parses.
    """
    try:
        source = data.decode("utf-8")
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 0
        message = getattr(exc, "msg", None) or str(exc)
        finding = Finding(
            path=rel,
            line=int(line),
            col=int(col),
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {message}",
            hint=_PARSE_HINT,
        )
        return {
            "module": module_name_for(path),
            "parse_error": finding.to_dict(),
            "findings": {},
            "suppressions": {},
            "facts": None,
        }
    ctx = ModuleContext(
        path=path,
        rel=rel,
        module=module_name_for(path),
        tree=tree,
        lines=source.splitlines(),
    )
    project.modules.append(ctx)
    findings: Dict[str, List[dict]] = {}
    for rule in rule_objs:
        try:
            found = [f.to_dict() for f in rule.check_module(ctx)]
        except LintError:
            raise
        except Exception as exc:  # noqa: BLE001 - rule bug => internal error
            raise LintError(
                f"rule {rule.name!r} crashed on {ctx.rel}: {exc!r}"
            ) from exc
        if found:
            findings[rule.name] = found
    return {
        "module": ctx.module,
        "parse_error": None,
        "findings": findings,
        "suppressions": _encode_suppressions(ctx.suppressions),
        "facts": extract_facts(ctx),
    }


def run_lint(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[str]] = None,
    root: Optional[Union[str, Path]] = None,
    cache_path: Optional[Union[str, Path]] = None,
) -> LintResult:
    """Lint ``paths`` with the named rules (default: all registered).

    ``cache_path`` enables the incremental cache (see
    :mod:`repro.lint.cache`); ``None`` — the default, and what fixture
    tests want — analyzes everything fresh and writes nothing.

    Raises :class:`~repro.errors.LintError` for usage/internal problems
    (missing paths, unknown rules, unreadable files) — the condition
    the CLI maps to exit code 2, distinct from "findings exist" (1).
    Unparsable source is *not* in that class: it surfaces as a
    ``parse-error`` finding on the offending file.
    """
    from .cache import LintCache, cache_signature

    root_path = Path(root) if root is not None else Path(os.getcwd())
    rule_objs: List[Rule] = build_rules(rules)
    active = [r.name for r in rule_objs]
    files = discover_files(paths)
    cache = (
        LintCache(Path(cache_path), cache_signature(active))
        if cache_path is not None
        else None
    )

    project = Project()
    records: List[dict] = []
    parsed = cached = 0
    for path in files:
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from None
        rel = _relative(path, root_path)
        sha = hashlib.sha256(data).hexdigest()
        record = cache.get(rel, sha) if cache is not None else None
        if record is None:
            parsed += 1
            record = _analyze(path, rel, data, rule_objs, project)
            if cache is not None:
                cache.put(rel, sha, record)
        else:
            cached += 1
        record = dict(record)
        record["rel"] = rel
        records.append(record)
        project.facts[rel] = record.get("facts")

    raw: List[Finding] = []
    for record in records:
        if record.get("parse_error") is not None:
            raw.append(Finding.from_dict(record["parse_error"]))
        for rule_name in active:
            for data_dict in record.get("findings", {}).get(rule_name, []):
                raw.append(Finding.from_dict(data_dict))
    for rule in rule_objs:
        try:
            raw.extend(rule.finalize(project))
        except LintError:
            raise
        except Exception as exc:  # noqa: BLE001
            raise LintError(f"rule {rule.name!r} crashed in finalize: {exc!r}") from exc

    suppressions_by_rel = {
        record["rel"]: _decode_suppressions(record.get("suppressions", {}))
        for record in records
    }
    kept: List[Finding] = []
    suppressed = 0
    for finding in sorted(raw):
        table = suppressions_by_rel.get(finding.path)
        if table and is_suppressed(finding.rule, finding.line, table):
            suppressed += 1
            continue
        kept.append(finding)
    if cache is not None:
        cache.save()
    return LintResult(
        findings=kept,
        files=len(files),
        suppressed=suppressed,
        rules=active,
        parsed=parsed,
        cached=cached,
        project=project,
    )
