"""Inline suppression comments.

A finding is silenced by a trailing directive on the *flagged line*::

    t0 = time.time()  # reprolint: disable=determinism
    x = a / b == c    # reprolint: disable=float-compare,determinism
    y = hack()        # reprolint: disable=all

``disable`` with no ``=`` (or ``=all``) silences every rule on that
line.  Suppressions are deliberately line-scoped — there is no block
or file scope, so each grandfathered violation stays visible in the
diff that introduced it.  Wholesale exemptions belong in the baseline
file (reviewed, counted, and expected to shrink), not in comments.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

__all__ = ["ALL_RULES", "line_suppressions", "is_suppressed"]

#: Sentinel meaning "every rule suppressed on this line".
ALL_RULES = frozenset({"all"})

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*disable(?:\s*=\s*([A-Za-z0-9_\-, ]+))?")


def line_suppressions(lines: List[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number → the set of rule ids disabled there.

    The special set :data:`ALL_RULES` marks a bare ``disable`` /
    ``disable=all`` directive.
    """
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        if "reprolint" not in line:
            continue
        match = _DIRECTIVE.search(line)
        if match is None:
            continue
        spec = match.group(1)
        if spec is None:
            out[lineno] = ALL_RULES
            continue
        names = frozenset(n.strip() for n in spec.split(",") if n.strip())
        out[lineno] = ALL_RULES if "all" in names else names
    return out


def is_suppressed(
    rule: str, line: int, suppressions: Dict[int, FrozenSet[str]]
) -> bool:
    """True when ``rule`` is disabled on ``line``."""
    disabled = suppressions.get(line)
    if disabled is None:
        return False
    return disabled is ALL_RULES or "all" in disabled or rule in disabled
