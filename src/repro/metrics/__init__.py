"""Metrics: collection, aggregation, and reporting.

* :class:`MetricsCollector` — O(1)-memory accumulation of the paper's
  per-run output metrics (response time ± σ, rejections, QoS
  violations, fleet extrema, VM hours, utilization).
* :func:`summarize` / :class:`Summary` — replication statistics.
* :func:`format_table` / :func:`format_markdown_table` — paper-style
  result tables.
* time-series helpers for figure regeneration.
"""

from .collector import MetricsCollector
from .report import format_markdown_table, format_table
from .stats import Summary, summarize
from .timeseries import bin_counts, step_series_extrema, step_series_time_average

__all__ = [
    "MetricsCollector",
    "Summary",
    "summarize",
    "format_table",
    "format_markdown_table",
    "bin_counts",
    "step_series_extrema",
    "step_series_time_average",
]
