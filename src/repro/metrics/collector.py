"""Online metric accumulation for simulation runs.

The collector accumulates everything the paper reports (§V-A "output
metrics") in O(1) memory per request:

* average response time ``T_r`` of accepted requests and its standard
  deviation (Welford's algorithm, numerically stable over 10⁶+ samples);
* number of requests whose response time violated QoS (``T_r > T_s``);
* percentage of rejected requests;
* minimum / maximum number of virtualized application instances alive
  at any single time;
* VM hours (finalized from the data center ledger);
* resource-utilization rate = Σ busy time / Σ VM seconds.

Optionally it samples time series (arrival counts, fleet size) used to
regenerate Figures 3, 4 and the instance-count trajectories.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Accumulates per-run output metrics.

    Parameters
    ----------
    qos_response_time:
        The negotiated ``T_s``; responses above it count as violations.
    track_fleet_series:
        When true, every fleet-size change is recorded as a
        ``(time, instances)`` step — needed for the instance-trajectory
        figures but off by default in the hot benchmarks.
    """

    def __init__(
        self,
        qos_response_time: float = math.inf,
        track_fleet_series: bool = False,
    ) -> None:
        self.qos_response_time = float(qos_response_time)
        # -- requests -------------------------------------------------
        self.accepted = 0  # admitted by admission control
        self.completed = 0  # finished service (response recorded)
        self.rejected = 0
        self.violations = 0
        # -- failure injection ------------------------------------------
        self.failures = 0  # instance crashes observed
        self.lost_requests = 0  # admitted requests that died in a crash
        # -- composite (multi-tier) deployments ---------------------------
        self.dropped_downstream = 0  # admitted, then refused by a later tier
        # Welford accumulators for response time.
        self._resp_mean = 0.0
        self._resp_m2 = 0.0
        # -- service accounting ----------------------------------------
        self.busy_seconds = 0.0
        # -- fleet ------------------------------------------------------
        self.min_instances: Optional[int] = None
        self.max_instances: Optional[int] = None
        self._track_series = bool(track_fleet_series)
        self.fleet_series: List[Tuple[float, int]] = []
        # -- finalized by the runner -------------------------------------
        self.vm_hours = 0.0
        self.horizon = 0.0

    # ------------------------------------------------------------------
    # hot-path recording
    # ------------------------------------------------------------------
    def record_acceptance(self) -> None:
        """Record one request admitted by admission control."""
        self.accepted += 1

    def record_response(self, response_time: float, service_time: float) -> None:
        """Record one completed request (Welford update)."""
        self.completed += 1
        if response_time > self.qos_response_time:
            self.violations += 1
        self.busy_seconds += service_time
        delta = response_time - self._resp_mean
        self._resp_mean += delta / self.completed
        self._resp_m2 += delta * (response_time - self._resp_mean)

    def record_rejection(self) -> None:
        """Record one request rejected by admission control."""
        self.rejected += 1

    # ------------------------------------------------------------------
    # bulk recording (vectorized data plane)
    # ------------------------------------------------------------------
    def record_acceptances(self, count: int) -> None:
        """Record ``count`` admitted requests at once."""
        self.accepted += int(count)

    def record_rejections(self, count: int) -> None:
        """Record ``count`` rejected requests at once."""
        self.rejected += int(count)

    def record_responses(
        self, response_times: np.ndarray, service_times: np.ndarray
    ) -> None:
        """Record a batch of completions (Chan's parallel Welford merge).

        Violation counting and busy-time accumulation are exact; the
        running mean/M2 merge is the standard pairwise-combination
        update, algebraically identical to feeding the batch through
        :meth:`record_response` one by one (floating-point rounding may
        differ in the last ulp, which is why cross-backend tests
        compare the derived statistics with tolerances while counters
        compare exactly).
        """
        responses = np.asarray(response_times, dtype=np.float64)
        n = responses.size
        if n == 0:
            return
        self.violations += int(np.count_nonzero(responses > self.qos_response_time))
        self.busy_seconds += float(np.sum(service_times))
        batch_mean = float(responses.mean())
        batch_m2 = float(np.sum((responses - batch_mean) ** 2))
        prior = self.completed
        total = prior + n
        if prior == 0:
            self._resp_mean = batch_mean
            self._resp_m2 = batch_m2
        else:
            delta = batch_mean - self._resp_mean
            self._resp_mean += delta * n / total
            self._resp_m2 += batch_m2 + delta * delta * prior * n / total
        self.completed = total

    def record_loss(self, count: int) -> None:
        """Record an instance crash that killed ``count`` admitted requests."""
        self.failures += 1
        self.lost_requests += count

    def record_intermediate(self, service_time: float) -> None:
        """Record a non-final tier's completed service (busy time only)."""
        self.busy_seconds += service_time

    def record_downstream_drop(self) -> None:
        """Record an admitted request refused by a downstream tier."""
        self.dropped_downstream += 1

    def record_fleet_size(self, now: float, instances: int) -> None:
        """Record a change in the number of live application instances."""
        if self.min_instances is None or instances < self.min_instances:
            self.min_instances = instances
        if self.max_instances is None or instances > self.max_instances:
            self.max_instances = instances
        if self._track_series:
            self.fleet_series.append((now, instances))

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        """Accepted + rejected arrivals seen so far."""
        return self.accepted + self.rejected

    @property
    def in_flight(self) -> int:
        """Admitted requests not yet completed (excluding crash losses
        and mid-pipeline drops)."""
        return (
            self.accepted
            - self.completed
            - self.lost_requests
            - self.dropped_downstream
        )

    @property
    def loss_rate(self) -> float:
        """Fraction of offered requests that never completed service:
        front-gate rejections, downstream drops, and crash losses."""
        total = self.total_requests
        if total == 0:
            return 0.0
        return (self.rejected + self.dropped_downstream + self.lost_requests) / total

    @property
    def rejection_rate(self) -> float:
        """Fraction of arrivals rejected (0 when no traffic)."""
        total = self.total_requests
        return self.rejected / total if total else 0.0

    @property
    def mean_response_time(self) -> float:
        """Average ``T_r`` over completed requests (0 when none)."""
        return self._resp_mean if self.completed else 0.0

    @property
    def response_time_std(self) -> float:
        """Sample standard deviation of ``T_r`` (0 with < 2 samples)."""
        if self.completed < 2:
            return 0.0
        return math.sqrt(self._resp_m2 / (self.completed - 1))

    @property
    def utilization(self) -> float:
        """Busy time over provisioned VM time (the paper's definition)."""
        if self.vm_hours <= 0.0:
            return 0.0
        return self.busy_seconds / (self.vm_hours * 3600.0)

    @property
    def violation_rate(self) -> float:
        """Fraction of completed requests exceeding ``T_s``."""
        return self.violations / self.completed if self.completed else 0.0

    # ------------------------------------------------------------------
    def finalize(self, now: float, vm_hours: float) -> None:
        """Close the books at the end of a run."""
        self.horizon = now
        self.vm_hours = vm_hours

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MetricsCollector acc={self.accepted} rej={self.rejected} "
            f"Tr={self.mean_response_time:.4g}s rejrate={self.rejection_rate:.3%}>"
        )
