"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's figures plot —
one row per policy, one column per output metric.  This module renders
those tables with aligned monospace columns so ``pytest benchmarks/``
output is directly comparable to the paper.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, 2.5], ["x", 3]]))
    a  b
    -  ---
    1  2.5
    x  3
    """
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a GitHub-flavored markdown table (for EXPERIMENTS.md)."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
