"""Plain-text table rendering and result-row summarization.

The benchmark harness prints the same rows the paper's figures plot —
one row per policy, one column per output metric.  This module renders
those tables with aligned monospace columns so ``pytest benchmarks/``
output is directly comparable to the paper, and owns the one
replication-summarization helper (:func:`summary_cells`) shared by the
figure builders and ad-hoc reporting — mean/CI semantics live in
:mod:`repro.metrics.stats`, the table-cell convention lives here, and
neither is re-implemented per caller.
"""

from __future__ import annotations

from typing import List, Sequence

from .stats import summarize

__all__ = [
    "format_table",
    "format_markdown_table",
    "summary_cells",
    "summary_table_rows",
]


def summary_cells(
    results: Sequence[object], fields: Sequence[str], ci: bool = False
) -> List[object]:
    """Across-replication summary of each named result attribute.

    One cell per field: the mean over ``results`` (any objects exposing
    the attributes, e.g. :class:`~repro.backends.base.RunMetrics`), or
    a ``"mean ± ci95"`` string when ``ci`` is requested and more than
    one replication is present.
    """
    cells: List[object] = []
    for name in fields:
        s = summarize([getattr(r, name) for r in results])
        if ci and len(results) > 1:
            cells.append(f"{s.mean:.4g} ± {s.ci95:.2g}")
        else:
            cells.append(s.mean)
    return cells


def summary_table_rows(
    results_by_name: Sequence[tuple],
    fields: Sequence[str],
    ci: bool = False,
) -> List[List[object]]:
    """One summary row per ``(label, replications)`` pair.

    The bulk form of :func:`summary_cells`: each row starts with the
    label followed by the per-field summaries.
    """
    return [
        [label] + summary_cells(results, fields, ci=ci)
        for label, results in results_by_name
    ]


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, 2.5], ["x", 3]]))
    a  b
    -  ---
    1  2.5
    x  3
    """
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a GitHub-flavored markdown table (for EXPERIMENTS.md)."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
