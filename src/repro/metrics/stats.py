"""Summary statistics over replicated runs.

The paper repeats every scenario 10 times and reports averages; this
module aggregates per-replication metric values into mean, sample
standard deviation, and a normal-approximation 95 % confidence
interval.  Everything is plain numpy — no scipy dependency in the
library core.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize"]

#: Two-sided 97.5 % normal quantile used for the 95 % CI half-width.
_Z975 = 1.959963984540054


@dataclass(frozen=True)
class Summary:
    """Mean / spread of one metric across replications.

    Attributes
    ----------
    mean, std:
        Sample mean and (n−1)-normalized standard deviation.
    ci95:
        Half-width of the normal-approximation 95 % confidence
        interval of the mean (0 for a single replication).
    n:
        Number of replications.
    minimum, maximum:
        Extremes across replications.
    """

    mean: float
    std: float
    ci95: float
    n: int
    minimum: float
    maximum: float

    def __str__(self) -> str:
        if self.n <= 1:
            return f"{self.mean:.6g}"
        return f"{self.mean:.6g} ± {self.ci95:.2g}"


def summarize(values: Sequence[float]) -> Summary:
    """Aggregate replication values into a :class:`Summary`.

    >>> s = summarize([1.0, 2.0, 3.0])
    >>> s.mean
    2.0
    >>> round(s.std, 6)
    1.0
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"non-finite metric values: {arr[~np.isfinite(arr)][:4]}")
    mean = float(arr.mean())
    if arr.size > 1:
        std = float(arr.std(ddof=1))
        ci = _Z975 * std / math.sqrt(arr.size)
    else:
        std = 0.0
        ci = 0.0
    return Summary(
        mean=mean,
        std=std,
        ci95=ci,
        n=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
