"""Time-series helpers for figure regeneration.

Figures 3 and 4 plot arrival-rate curves; Figures 5(a)/6(a) derive
min/max fleet sizes from the instance-count trajectory.  These helpers
turn event-level records into fixed-bin series with numpy.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["bin_counts", "step_series_extrema", "step_series_time_average"]


def bin_counts(times: Sequence[float], t0: float, t1: float, bin_width: float) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram event times into fixed bins; returns (bin_starts, rates).

    Rates are events per second within each bin — the quantity plotted
    in Figures 3 and 4.
    """
    if t1 <= t0 or bin_width <= 0.0:
        raise ValueError(f"bad binning range [{t0}, {t1}) width {bin_width}")
    edges = np.arange(t0, t1 + bin_width, bin_width)
    counts, _ = np.histogram(np.asarray(times, dtype=np.float64), bins=edges)
    return edges[:-1], counts / bin_width


def step_series_extrema(series: Sequence[Tuple[float, float]]) -> Tuple[float, float]:
    """Min and max value of a step series of ``(time, value)`` points."""
    if not series:
        raise ValueError("empty step series")
    values = np.asarray([v for _, v in series], dtype=np.float64)
    return float(values.min()), float(values.max())


def step_series_time_average(
    series: Sequence[Tuple[float, float]], t_end: float
) -> float:
    """Time-weighted average of a right-continuous step series.

    The series holds ``(time, value)`` change points; the last value
    persists until ``t_end``.  Used to compute the "equivalent to N
    instances active 24/7" quantity from a fleet-size trajectory.
    """
    if not series:
        raise ValueError("empty step series")
    times = np.asarray([t for t, _ in series], dtype=np.float64)
    values = np.asarray([v for _, v in series], dtype=np.float64)
    if np.any(np.diff(times) < 0.0):
        raise ValueError("step series times must be non-decreasing")
    if t_end < times[-1]:
        raise ValueError(f"t_end={t_end} precedes last change point {times[-1]}")
    spans = np.diff(np.concatenate([times, [t_end]]))
    total = float(times[-1] - times[0] + spans[-1])
    if total <= 0.0:
        return float(values[-1])
    return float((values * spans).sum() / spans.sum())
