"""Observability layer — tracing, decision audit, profiling, logging.

ISSUE 2's tentpole: the paper's closed loop (Workload Analyzer → Load
Predictor & Performance Modeler → Application Provisioner) emits typed
trace events onto a :class:`TraceBus` so any run can be replayed and
any Algorithm-1 decision explained.  The layer is **off by default**
and zero-cost when disabled: components hold ``tracer=None`` and guard
every emission with one identity check.

* :mod:`repro.obs.bus` — the bus, sinks (ring buffer / JSONL / null)
  and the picklable :class:`TraceConfig` the runner threads through
  process pools.
* :mod:`repro.obs.schema` — the event registry and trace validation
  (CI validates a real scenario trace on every push).
* :mod:`repro.obs.audit` — the decision audit log and the
  "explain this provisioning decision" narrative.
* :mod:`repro.obs.profile` — per-phase wall-clock / kernel counters,
  aggregated correctly across pool workers.
* :mod:`repro.obs.render` — JSONL traces → timeline + summary tables
  (the ``repro-experiments trace`` subcommand).
* :mod:`repro.obs.log` — namespaced structured logging helpers.
"""

from .audit import DecisionAuditLog, DecisionRecord, explain_record
from .bus import JsonlSink, NullSink, RingBufferSink, TraceBus, TraceConfig, TraceSink
from .log import get_logger, kv
from .profile import RunProfile, aggregate_profiles
from .render import explain_decision, format_event, render_timeline, trace_summary_table
from .schema import (
    CONTROL_EVENTS,
    EVENT_TYPES,
    REQUEST_EVENTS,
    SCHEMA_VERSION,
    iter_trace,
    load_trace,
    validate_event,
    validate_trace,
)

__all__ = [
    # bus & sinks
    "TraceBus",
    "TraceConfig",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "NullSink",
    # schema
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "REQUEST_EVENTS",
    "CONTROL_EVENTS",
    "validate_event",
    "validate_trace",
    "iter_trace",
    "load_trace",
    # audit
    "DecisionRecord",
    "DecisionAuditLog",
    "explain_record",
    # profiling
    "RunProfile",
    "aggregate_profiles",
    # rendering
    "format_event",
    "render_timeline",
    "trace_summary_table",
    "explain_decision",
    # logging
    "get_logger",
    "kv",
]
