"""Observability layer — tracing, decision audit, profiling, logging.

ISSUE 2's tentpole: the paper's closed loop (Workload Analyzer → Load
Predictor & Performance Modeler → Application Provisioner) emits typed
trace events onto a :class:`TraceBus` so any run can be replayed and
any Algorithm-1 decision explained.  The layer is **off by default**
and zero-cost when disabled: components hold ``tracer=None`` and guard
every emission with one identity check.

* :mod:`repro.obs.bus` — the bus, sinks (ring buffer / JSONL / null)
  and the picklable :class:`TraceConfig` the runner threads through
  process pools.
* :mod:`repro.obs.schema` — the event registry and trace validation
  (CI validates a real scenario trace on every push).
* :mod:`repro.obs.audit` — the decision audit log and the
  "explain this provisioning decision" narrative.
* :mod:`repro.obs.profile` — per-phase wall-clock / kernel counters,
  aggregated correctly across pool workers.
* :mod:`repro.obs.render` — JSONL traces → timeline + summary tables
  (the ``repro-experiments trace`` subcommand).
* :mod:`repro.obs.log` — namespaced structured logging helpers.
* :mod:`repro.obs.metrics` — the typed metrics registry (counters,
  gauges, mergeable log-bucket histograms), the picklable
  :class:`MetricsConfig`, and the per-run :class:`RunTelemetry`
  snapshot sampler (ISSUE 7's tentpole).
* :mod:`repro.obs.exporters` — Prometheus text exposition and JSONL
  time-series export/validation for the snapshot stream.
"""

from .audit import DecisionAuditLog, DecisionRecord, explain_record
from .bus import JsonlSink, NullSink, RingBufferSink, TraceBus, TraceConfig, TraceSink
from .exporters import (
    export_jsonl,
    load_snapshots,
    parse_prometheus_text,
    snapshot_to_prometheus,
)
from .log import get_logger, kv
from .metrics import (
    METRIC_NAMES,
    Counter,
    Gauge,
    Histogram,
    MetricsConfig,
    MetricsRegistry,
    RunTelemetry,
    log_bucket_bounds,
    merge_telemetry,
    response_time_bounds,
)
from .profile import RunProfile, aggregate_profiles
from .render import explain_decision, format_event, render_timeline, trace_summary_table
from .schema import (
    CONTROL_EVENTS,
    EVENT_TYPES,
    REQUEST_EVENTS,
    SCHEMA_VERSION,
    iter_trace,
    load_trace,
    validate_event,
    validate_trace,
)

__all__ = [
    # bus & sinks
    "TraceBus",
    "TraceConfig",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "NullSink",
    # schema
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "REQUEST_EVENTS",
    "CONTROL_EVENTS",
    "validate_event",
    "validate_trace",
    "iter_trace",
    "load_trace",
    # audit
    "DecisionRecord",
    "DecisionAuditLog",
    "explain_record",
    # profiling
    "RunProfile",
    "aggregate_profiles",
    # rendering
    "format_event",
    "render_timeline",
    "trace_summary_table",
    "explain_decision",
    # metrics
    "METRIC_NAMES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsConfig",
    "RunTelemetry",
    "log_bucket_bounds",
    "response_time_bounds",
    "merge_telemetry",
    # exporters
    "snapshot_to_prometheus",
    "parse_prometheus_text",
    "load_snapshots",
    "export_jsonl",
    # logging
    "get_logger",
    "kv",
]
