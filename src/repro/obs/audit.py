"""Decision audit log — every Algorithm-1 invocation, explainable.

The paper's modeler answers "how many instances?", but a black-box
answer is useless when a run misbehaves: the operator needs the inputs
(predicted ``λ``, monitored ``T_m``, current fleet) *and* the search
trajectory that led to the chosen ``m``.  :class:`DecisionAuditLog`
captures exactly that, either live (attached to a
:class:`~repro.core.modeler.PerformanceModeler`) or reconstructed from
a JSONL trace (:meth:`DecisionAuditLog.from_trace`), and
:func:`explain_record` renders one record as the step-by-step
narrative the "explain this provisioning decision" workflow needs.

Direction inference: Algorithm 1 only ever *grows* ``m`` when QoS is
unmet and *bisects down* when QoS holds but predicted utilization is
below target, so the grow/shrink label of each step is recoverable
from the trajectory alone — no extra per-step state is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Mapping, Tuple, Union

__all__ = ["DecisionRecord", "DecisionAuditLog", "explain_record"]


@dataclass(frozen=True)
class DecisionRecord:
    """One audited Algorithm-1 invocation.

    Attributes
    ----------
    time:
        Simulation time of the invocation.
    arrival_rate, service_time, current:
        The inputs: predicted ``λ``, monitored ``T_m``, and the fleet
        size the search started from.
    chosen, iterations, meets_qos:
        The outcome: selected ``m``, loop count, and whether the
        selected point satisfies the QoS check.
    cache_hit:
        Whether the decision was served from the quantized LRU cache
        (the recorded path is then the original search's).
    path:
        The grow/shrink trajectory of candidate fleet sizes.
    rho, blocking, response:
        Predicted per-instance offered load, blocking probability and
        mean response time at the chosen ``m``.
    """

    time: float
    arrival_rate: float
    service_time: float
    current: int
    chosen: int
    iterations: int
    meets_qos: bool
    cache_hit: bool
    path: Tuple[int, ...]
    rho: float
    blocking: float
    response: float


class DecisionAuditLog:
    """Append-only record of modeler invocations.

    Attach one to a modeler (``PerformanceModeler(..., audit=log)`` or
    ``AdaptivePolicy(audit_log=log)``) to capture decisions live, or
    rebuild one from a trace with :meth:`from_trace` — the two paths
    produce identical records, which ``tests/test_obs_audit_profile.py``
    asserts.
    """

    def __init__(self) -> None:
        self.records: List[DecisionRecord] = []

    def record(self, record: DecisionRecord) -> None:
        """Append one invocation (called by the modeler)."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @classmethod
    def from_trace(
        cls, events: Union[str, Path, Iterable[Mapping[str, object]]]
    ) -> "DecisionAuditLog":
        """Reconstruct the audit log from ``decision`` trace events.

        ``events`` may be a JSONL path or any iterable of event dicts
        (e.g. a :class:`~repro.obs.bus.RingBufferSink`'s buffer).
        """
        if isinstance(events, (str, Path)):
            from .schema import iter_trace

            events = iter_trace(events)
        log = cls()
        for ev in events:
            if ev.get("type") != "decision":
                continue
            log.record(
                DecisionRecord(
                    time=float(ev["t"]),
                    arrival_rate=float(ev["arrival_rate"]),
                    service_time=float(ev["service_time"]),
                    current=int(ev["current"]),
                    chosen=int(ev["chosen"]),
                    iterations=int(ev["iterations"]),
                    meets_qos=bool(ev["meets_qos"]),
                    cache_hit=bool(ev["cache_hit"]),
                    path=tuple(int(m) for m in ev["path"]),
                    rho=float(ev["rho"]),
                    blocking=float(ev["blocking"]),
                    response=float(ev["response"]),
                )
            )
        return log

    def explain(self, index: int) -> str:
        """Human-readable narrative of the ``index``-th decision."""
        return explain_record(self.records[index])


def explain_record(record: DecisionRecord) -> str:
    """Render one decision as a step-by-step Algorithm-1 narrative."""
    lines = [
        f"Algorithm-1 decision at t={record.time:g}s "
        f"({'cache hit' if record.cache_hit else 'full search'})",
        f"  inputs: predicted λ={record.arrival_rate:g} req/s, "
        f"monitored T_m={record.service_time:g} s, current fleet m={record.current}",
    ]
    path = record.path
    for step, (a, b) in enumerate(zip(path, path[1:]), start=1):
        if b > a:
            lines.append(
                f"  step {step}: m={a} fails QoS "
                f"(blocking or T_q over target) → grow to m={b}"
            )
        elif b < a:
            lines.append(
                f"  step {step}: m={a} meets QoS but predicted utilization "
                f"below target → bisect down to m={b}"
            )
        else:
            lines.append(f"  step {step}: m={a} stable → converged")
    qos = "meets QoS" if record.meets_qos else "does NOT meet QoS (quota-capped)"
    lines.append(
        f"  chosen m={record.chosen} after {record.iterations} iteration(s); "
        f"predicted ρ={record.rho:.4g}, Pr(S_k)={record.blocking:.4g}, "
        f"T_q={record.response:.4g}s — {qos}"
    )
    return "\n".join(lines)
