"""Trace bus — typed events, pluggable sinks, zero cost when off.

The bus is the single funnel for every trace event the instrumented
components emit (:mod:`repro.obs.schema` lists them).  The design rule
is *zero cost when disabled*: components hold an optional tracer and
guard every emission with one ``if tracer is not None`` check, so a
run without tracing executes exactly the seed code path — the <3 %
``bench_kernel_perf`` gate in ISSUE 2 is enforced by never touching
the engine's inner loop at all.

Sinks are deliberately dumb ``write(event_dict)`` objects:

* :class:`RingBufferSink` — bounded in-memory deque, for tests and
  interactive debugging;
* :class:`JsonlSink` — one JSON object per line, the on-disk format
  the ``repro-experiments trace`` subcommand renders and CI validates;
* :class:`NullSink` — counts and drops (overhead measurement).

:class:`TraceConfig` is the *picklable* recipe the experiment runner
threads through process pools: each worker builds its own bus (and its
own JSONL file, via ``{scenario}/{policy}/{seed}`` placeholders), so
tracing composes with ``run_replications(workers=N)``.
"""

from __future__ import annotations

import json
import re
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from .schema import EVENT_TYPES

__all__ = [
    "TraceBus",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "NullSink",
    "TraceConfig",
]


class TraceSink:
    """Interface of a trace destination (duck-typed; subclassing optional).

    Sinks are context managers: ``with JsonlSink(path) as sink: ...``
    guarantees :meth:`close` (and thus the final buffer flush) even
    when the block raises or a :class:`KeyboardInterrupt` lands —
    buffered tail events cannot be lost on an interrupt path.
    """

    def write(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to the destination (no-op by default)."""

    def close(self) -> None:
        """Release resources; further writes are undefined."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullSink(TraceSink):
    """Accepts and discards every event (keeps only a count)."""

    def __init__(self) -> None:
        self.written = 0

    def write(self, event: dict) -> None:
        self.written += 1


class RingBufferSink(TraceSink):
    """Keeps the most recent ``maxlen`` events in memory."""

    def __init__(self, maxlen: int = 65_536) -> None:
        if maxlen < 1:
            raise ConfigurationError(f"ring buffer size must be >= 1, got {maxlen}")
        self.events: Deque[dict] = deque(maxlen=int(maxlen))

    def write(self, event: dict) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_type(self, event_type: str) -> List[dict]:
        """The buffered events of one type, in emission order."""
        return [e for e in self.events if e["type"] == event_type]


class JsonlSink(TraceSink):
    """Appends one compact JSON object per event to a file."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        self.written = 0

    def write(self, event: dict) -> None:
        self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        self.written += 1

    def flush(self) -> None:
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class TraceBus:
    """Routes typed events to one sink, optionally filtered by type.

    Parameters
    ----------
    sink:
        Destination for every accepted event.
    events:
        Event types to accept; ``None`` accepts all registered types.
        Filtering happens *before* the event dict is built, so dropped
        types cost one set lookup, not an allocation.
    """

    __slots__ = ("sink", "_accept", "emitted", "dropped")

    def __init__(self, sink: TraceSink, events: Optional[Iterable[str]] = None) -> None:
        self.sink = sink
        if events is None:
            self._accept = None
        else:
            accept = frozenset(events)
            unknown = accept - set(EVENT_TYPES)
            if unknown:
                raise ConfigurationError(
                    f"unknown trace event types: {sorted(unknown)}"
                )
            self._accept = accept
        #: Events written to the sink.
        self.emitted = 0
        #: Events rejected by the type filter.
        self.dropped = 0

    def emit(self, event_type: str, t: float, **fields: object) -> None:
        """Record one event at simulation time ``t``."""
        accept = self._accept
        if accept is not None and event_type not in accept:
            self.dropped += 1
            return
        event = {"t": t, "type": event_type}
        event.update(fields)
        self.emitted += 1
        self.sink.write(event)

    def flush(self) -> None:
        """Flush the sink without closing it.

        The interrupt-path guarantee for *borrowed* buses: owners close,
        borrowers flush, so a campaign killed mid-run leaves every event
        it emitted on disk either way.
        """
        flush = getattr(self.sink, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        """Close the underlying sink (flushes JSONL files)."""
        self.sink.close()

    def __enter__(self) -> "TraceBus":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceBus emitted={self.emitted} dropped={self.dropped} sink={type(self.sink).__name__}>"


def _filename_component(label: str) -> str:
    """Collapse path separators and whitespace into underscores."""
    return re.sub(r"[/\\\s]+", "_", label.strip()) or "unnamed"


@dataclass(frozen=True)
class TraceConfig:
    """Picklable recipe for building one :class:`TraceBus` per run.

    Parameters
    ----------
    sink:
        ``"jsonl"`` (needs ``path``), ``"memory"``, or ``"null"``.
    path:
        JSONL destination.  May contain ``{scenario}``, ``{policy}``
        and ``{seed}`` placeholders; a path ending in ``/`` (or an
        existing directory) gets one ``<scenario>-<policy>-s<seed>.jsonl``
        file per run, which is how multi-policy experiments avoid
        interleaving several processes into one file.
    events:
        Accepted event types (``None`` = all).  The CLI passes
        :data:`~repro.obs.schema.CONTROL_EVENTS` unless
        ``--trace-requests`` opts into the per-request firehose.
    ring_size:
        Buffer bound for the ``"memory"`` sink.
    """

    sink: str = "jsonl"
    path: Optional[str] = None
    events: Optional[Tuple[str, ...]] = None
    ring_size: int = 65_536

    def __post_init__(self) -> None:
        if self.sink not in ("jsonl", "memory", "null"):
            raise ConfigurationError(
                f"trace sink must be 'jsonl', 'memory' or 'null', got {self.sink!r}"
            )
        if self.sink == "jsonl" and not self.path:
            raise ConfigurationError("jsonl trace sink needs a path")

    def resolve_path(self, scenario: str, policy: str, seed: int) -> Path:
        """The concrete JSONL path for one (scenario, policy, seed).

        Scenario/policy labels are sanitized into single filename
        components (``web@1/5000`` → ``web@1_5000``) so a rate-scaled
        scenario name cannot nest surprise subdirectories.
        """
        scenario = _filename_component(scenario)
        policy = _filename_component(policy)
        raw = str(self.path)
        if "{" in raw:
            return Path(raw.format(scenario=scenario, policy=policy, seed=seed))
        p = Path(raw)
        if raw.endswith(("/", "\\")) or p.is_dir():
            return p / f"{scenario}-{policy}-s{seed}.jsonl"
        return p

    def build(self, scenario: str, policy: str, seed: int) -> TraceBus:
        """Construct the bus (and sink) for one run."""
        if self.sink == "memory":
            sink: TraceSink = RingBufferSink(self.ring_size)
        elif self.sink == "null":
            sink = NullSink()
        else:
            sink = JsonlSink(self.resolve_path(scenario, policy, seed))
        return TraceBus(sink, events=self.events)
