"""Metric exposition — Prometheus text format and JSONL time series.

Two export surfaces for the telemetry produced by
:mod:`repro.obs.metrics`:

* :func:`snapshot_to_prometheus` — renders one ``metrics.snapshot``
  event (typically the last line of a snapshot JSONL stream) in the
  Prometheus text exposition format (version 0.0.4): ``# HELP`` /
  ``# TYPE`` headers, ``_total`` counters, gauges, and a cumulative
  ``le``-labelled histogram.
* :func:`load_snapshots` / :func:`export_jsonl` — validated JSONL time
  series (each line is a schema-checked ``metrics.snapshot`` event).

:func:`parse_prometheus_text` is the matching format validator: it
parses an exposition document back into families and enforces the
structural invariants (samples match their declared type, histogram
buckets are cumulative, ``_count`` equals the ``+Inf`` bucket).  The
round-trip test in ``tests/test_obs_metrics.py`` pushes a snapshot
through both directions.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Mapping, Union

from ..errors import ConfigurationError, TraceSchemaError
from .schema import validate_event

__all__ = [
    "snapshot_to_prometheus",
    "parse_prometheus_text",
    "load_snapshots",
    "export_jsonl",
]


def _fmt(value: float) -> str:
    """Prometheus sample value: integers bare, floats via repr, inf as +Inf."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


#: snapshot field → (prometheus family, type, help)
_SNAPSHOT_FAMILIES = [
    ("accepted", "repro_requests_accepted_total", "counter", "requests admitted by admission control"),
    ("rejected", "repro_requests_rejected_total", "counter", "requests rejected at admission"),
    ("completed", "repro_requests_completed_total", "counter", "requests that finished service"),
    ("violations", "repro_qos_violations_total", "counter", "completed requests with response time > Ts"),
    ("fleet", "repro_fleet_size", "gauge", "serving application instances"),
    ("rejection_rate", "repro_rejection_rate", "gauge", "cumulative fraction of arrivals rejected"),
    ("violation_fraction", "repro_qos_violation_fraction", "gauge", "cumulative fraction of completions over Ts"),
    ("burn_rate", "repro_sla_burn_rate", "gauge", "window violation fraction over the SLO error budget"),
    ("cache_hit_ratio", "repro_decision_cache_hit_ratio", "gauge", "Algorithm-1 decision cache hit ratio"),
]

_HIST_FAMILY = "repro_response_time_scenario_seconds"


def snapshot_to_prometheus(snapshot: Mapping[str, object]) -> str:
    """Render one ``metrics.snapshot`` event as Prometheus text.

    The snapshot's cumulative ``buckets`` / ``bounds`` pair becomes a
    standard ``le``-labelled histogram (the overflow bucket is the
    ``+Inf`` sample, which by construction equals ``_count``).  The
    ``_sum`` series is intentionally omitted: snapshots carry no
    order-dependent float accumulations (that is what keeps them
    bit-identical across backends), so the exposition reports the exact
    fields only.
    """
    lines: List[str] = []
    for field, family, ftype, help_text in _SNAPSHOT_FAMILIES:
        if field not in snapshot:
            continue
        lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {ftype}")
        lines.append(f"{family} {_fmt(snapshot[field])}")
    bounds = snapshot.get("bounds") or []
    buckets = snapshot.get("buckets") or []
    if buckets:
        if len(buckets) != len(bounds) + 1:
            raise ConfigurationError(
                f"snapshot histogram is malformed: {len(buckets)} buckets "
                f"for {len(bounds)} bounds (want bounds+1)"
            )
        lines.append(f"# HELP {_HIST_FAMILY} response time of completed requests (scenario seconds)")
        lines.append(f"# TYPE {_HIST_FAMILY} histogram")
        for le, count in zip(list(bounds) + ["+Inf"], buckets):
            le_str = le if isinstance(le, str) else _fmt(float(le))
            lines.append(f'{_HIST_FAMILY}_bucket{{le="{le_str}"}} {_fmt(count)}')
        lines.append(f"{_HIST_FAMILY}_count {_fmt(buckets[-1])}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, dict]:
    """Parse + validate a Prometheus text exposition document.

    Returns ``{family: {"type": ..., "help": ..., "samples": [(labels,
    value), ...]}}``.  Raises :class:`ConfigurationError` on structural
    violations: samples without a ``# TYPE``, sample names that do not
    belong to their family (counters must end in ``_total``; histogram
    samples must be ``_bucket``/``_count``/``_sum``), non-cumulative
    histogram buckets, or a ``_count`` that disagrees with the ``+Inf``
    bucket.
    """
    families: Dict[str, dict] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            families[name]["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, ftype = rest.partition(" ")
            if ftype not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ConfigurationError(f"line {lineno}: unknown metric type {ftype!r}")
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            families[name]["type"] = ftype
            continue
        if line.startswith("#"):
            continue
        # sample line: name[{labels}] value
        if "{" in line:
            name, _, rest = line.partition("{")
            labels_str, _, value_str = rest.partition("}")
            labels = {}
            for pair in labels_str.split(","):
                if not pair:
                    continue
                k, _, v = pair.partition("=")
                if not (v.startswith('"') and v.endswith('"')):
                    raise ConfigurationError(
                        f"line {lineno}: label value must be quoted: {pair!r}"
                    )
                labels[k.strip()] = v[1:-1]
            value_str = value_str.strip()
        else:
            name, _, value_str = line.partition(" ")
            labels = {}
            value_str = value_str.strip()
        try:
            value = float(value_str)
        except ValueError:
            raise ConfigurationError(
                f"line {lineno}: not a sample value: {value_str!r}"
            ) from None
        family = _owning_family(name, families)
        if family is None:
            raise ConfigurationError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        fam_name, fam = family
        ftype = fam["type"]
        if ftype == "counter" and not name.endswith("_total"):
            raise ConfigurationError(
                f"line {lineno}: counter sample {name!r} must end in _total"
            )
        if ftype == "histogram" and name != fam_name and not name.endswith(
            ("_bucket", "_count", "_sum")
        ):
            raise ConfigurationError(
                f"line {lineno}: histogram sample {name!r} must be _bucket/_count/_sum"
            )
        fam["samples"].append((name, labels, value))
    _check_histograms(families)
    return families


def _owning_family(sample_name: str, families: Dict[str, dict]):
    """The family a sample belongs to (exact name, or histogram suffix)."""
    if sample_name in families:
        return sample_name, families[sample_name]
    for suffix in ("_bucket", "_count", "_sum"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base, families[base]
    # counters are declared under their full _total name
    return None


def _check_histograms(families: Dict[str, dict]) -> None:
    for fam_name, fam in families.items():
        if fam["type"] != "histogram":
            if fam["type"] is None:
                raise ConfigurationError(f"family {fam_name!r} has no # TYPE line")
            continue
        buckets = [
            (labels.get("le"), value)
            for name, labels, value in fam["samples"]
            if name.endswith("_bucket")
        ]
        counts = [
            value for name, labels, value in fam["samples"] if name.endswith("_count")
        ]
        if not buckets:
            raise ConfigurationError(f"histogram {fam_name!r} has no _bucket samples")
        if buckets[-1][0] != "+Inf":
            raise ConfigurationError(
                f"histogram {fam_name!r} must end with an le=\"+Inf\" bucket"
            )
        values = [v for _, v in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            raise ConfigurationError(
                f"histogram {fam_name!r} buckets are not cumulative"
            )
        if counts and counts[0] != values[-1]:
            raise ConfigurationError(
                f"histogram {fam_name!r}: _count {counts[0]} != +Inf bucket {values[-1]}"
            )


def load_snapshots(path: Union[str, Path]) -> List[dict]:
    """Read and schema-validate a ``metrics.snapshot`` JSONL stream."""
    path = Path(path)
    snapshots: List[dict] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            try:
                validate_event(event)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: {exc}") from None
            if event.get("type") != "metrics.snapshot":
                raise TraceSchemaError(
                    f"{path}:{lineno}: expected metrics.snapshot, got {event.get('type')!r}"
                )
            snapshots.append(event)
    return snapshots


def export_jsonl(snapshots: List[dict], path: Union[str, Path]) -> Path:
    """Write a validated snapshot series to a JSONL file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    for event in snapshots:
        validate_event(event)
    with path.open("w", encoding="utf-8") as fh:
        for event in snapshots:
            fh.write(json.dumps(event, separators=(",", ":")) + "\n")
    return path
