"""Structured logging for the repro library.

All library loggers live under the ``repro`` namespace with a
:class:`logging.NullHandler` on the root, so importing the library
never configures (or spams) the host application's logging — the
standard library-logging etiquette.  :func:`get_logger` hands out
namespaced loggers; :func:`kv` formats structured key=value suffixes
so operational messages (pool fallbacks, trace-file locations) stay
grep-able in both plain logs and aggregators.
"""

from __future__ import annotations

import logging
from typing import Any

__all__ = ["get_logger", "kv"]

_ROOT = "repro"

logging.getLogger(_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str = _ROOT) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger(__name__)`` inside the package returns the module's
    own logger; arbitrary names are prefixed into the namespace so all
    library output can be enabled with one
    ``logging.getLogger("repro").setLevel(...)``.
    """
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def kv(**fields: Any) -> str:
    """Render ``key=value`` pairs for structured log messages.

    >>> kv(reason="unpicklable", workers=4)
    'reason=unpicklable workers=4'
    """
    return " ".join(f"{k}={v!r}" if isinstance(v, str) and " " in v else f"{k}={v}" for k, v in fields.items())
