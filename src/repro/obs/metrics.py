"""Typed metrics registry — counters, gauges, mergeable histograms.

The trace bus (:mod:`repro.obs.bus`) transports *events*; this module
aggregates them into *metrics*: monotone :class:`Counter` totals,
last-value :class:`Gauge` readings, and a deterministic fixed-boundary
log-bucket :class:`Histogram` whose percentile queries return exact
bucket bounds.  The design rules mirror the bus:

* **zero cost when disabled** — components hold an optional
  :class:`MetricsRegistry` and guard each observation with one identity
  check, so a run without metrics executes exactly the seed code path;
* **no wall clocks, no randomness** — every value is a function of the
  simulation, never of the host (the :mod:`repro.lint` determinism rule
  applies to this module like any other);
* **picklable config** — :class:`MetricsConfig` is the frozen recipe
  the experiment runner threads through process pools, exactly like
  :class:`~repro.obs.bus.TraceConfig`;
* **lossless merge** — per-worker registries from
  ``run_replications(workers=N)`` combine with
  :meth:`MetricsRegistry.merge`: counters and histogram bucket counts
  add exactly; the histogram moments use Chan's parallel mean/M2
  combination, the same update the bulk
  :class:`~repro.metrics.collector.MetricsCollector` path uses.

:class:`RunTelemetry` is the per-run session object the backends build
from a :class:`MetricsConfig`: it samples periodic ``metrics.snapshot``
events (SLA violation fraction and burn rate against the scenario's QoS
target, admission/rejection rates, fleet size, decision-cache hit
ratio, response-time histogram state) on the engine's clock, and
finalizes the registry into the ``telemetry`` field of
:class:`~repro.backends.base.RunMetrics`.

Snapshots carry only integers and exactly-derived ratios — never an
order-dependent float accumulation — which is why the snapshot series
is bit-identical between the scalar ``des`` and batched ``des-vec``
backends on jitterless scenarios (``tests/test_metrics_xbackend.py``).
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "METRIC_NAMES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsConfig",
    "RunTelemetry",
    "log_bucket_bounds",
    "response_time_bounds",
    "merge_telemetry",
]


#: Every metric the library may record: name → (kind, help).  The lint
#: trace-schema rule cross-checks ``registry.counter("...")``-style call
#: sites against this table in both directions (unregistered names and
#: registered-but-never-created entries are findings), so the table and
#: the instrumentation cannot drift apart silently.
METRIC_NAMES: Dict[str, Tuple[str, str]] = {
    "requests.arrived": ("counter", "arrivals offered to admission control"),
    "requests.accepted": ("counter", "requests admitted by admission control"),
    "requests.rejected": ("counter", "requests rejected at admission"),
    "requests.completed": ("counter", "requests that finished service"),
    "qos.violations": ("counter", "completed requests with response time > Ts"),
    "qos.response_time": ("histogram", "response time of completed requests (scenario seconds)"),
    "control.decisions": ("counter", "Algorithm-1 decisions actuated"),
    "control.cache_hits": ("counter", "decision-cache hits of the run's modeler"),
    "control.cache_misses": ("counter", "decision-cache misses of the run's modeler"),
    "fleet.size": ("gauge", "serving instances after the latest actuation"),
    "fleet.target": ("gauge", "fleet size requested by the latest decision"),
    "batch.spans": ("counter", "non-empty epoch spans flushed by the vectorized data plane"),
    "batch.flushed_requests": ("counter", "arrivals + completions absorbed by vectorized span flushes"),
    "economy.revenue": ("gauge", "income earned by completed requests (pricing units)"),
    "economy.cost": ("gauge", "blended on-demand + spot capacity bill (pricing units)"),
    "economy.penalty": ("gauge", "SLA fines over violating accounting intervals (pricing units)"),
    "economy.profit": ("gauge", "revenue - cost - penalty of the run (pricing units)"),
    "economy.spot_vm_hours": ("gauge", "VM-hours billed at the discounted spot rate"),
    "economy.revocations": ("counter", "spot instances reclaimed by the revocation injector"),
}


def log_bucket_bounds(
    lo: float, hi: float, per_decade: int = 8
) -> Tuple[float, ...]:
    """Deterministic logarithmic bucket boundaries covering ``[lo, hi]``.

    Bounds are ``lo · 10^(i/per_decade)`` for ``i = 0, 1, …`` until the
    first bound ≥ ``hi`` — a pure function of the arguments, so every
    process (and every backend) derives bitwise-identical boundaries.
    """
    if lo <= 0.0 or hi <= lo:
        raise ConfigurationError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
    if per_decade < 1:
        raise ConfigurationError(f"per_decade must be >= 1, got {per_decade}")
    bounds: List[float] = []
    i = 0
    while True:
        b = lo * 10.0 ** (i / per_decade)
        bounds.append(b)
        if b >= hi:
            return tuple(bounds)
        i += 1


def response_time_bounds(qos_response_time: float) -> Tuple[float, ...]:
    """Response-time buckets centered on the scenario's ``T_s``.

    Three decades below the QoS target to two above (8 buckets per
    decade) brackets everything from idle service times to deep
    saturation with ~33 % relative bucket resolution around ``T_s``.
    """
    return log_bucket_bounds(
        qos_response_time / 1000.0, qos_response_time * 100.0, per_decade=8
    )


class Counter:
    """Monotone total.  Merge = exact integer/float addition."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the total (used to sync from an existing collector)."""
        self.value = value

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> dict:
        return {"kind": "counter", "value": self.value}

    def load(self, data: dict) -> None:
        self.value = data["value"]


class Gauge:
    """Last observed value.  Merge keeps the maximum (documented choice:
    cross-replication gauges answer "how big did it get")."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        if other.value > self.value:
            self.value = other.value

    def to_dict(self) -> dict:
        return {"kind": "gauge", "value": self.value}

    def load(self, data: dict) -> None:
        self.value = data["value"]


class Histogram:
    """Fixed-boundary histogram with Chan-mergeable moments.

    Bucket ``i`` covers ``[bounds[i-1], bounds[i])`` (bucket 0 is
    everything below ``bounds[0]``); one final overflow bucket catches
    values ≥ ``bounds[-1]``, so ``len(counts) == len(bounds) + 1``.
    Observation uses ``np.searchsorted(side="right")`` — scalar
    observations are buffered in a plain list and bulk-ingested through
    the same kernel as :meth:`observe_many`, so scalar and vectorized
    feeds bucket identically *and* the scalar hot path is a single
    ``list.append`` (the deferred work is amortized over the whole
    buffer at the next read).

    Besides the bucket counts the histogram keeps count/mean/M2 moment
    accumulators; :meth:`merge` combines them with Chan's parallel
    update, making per-worker histograms combine losslessly (counts are
    exact; moments are exact up to float associativity, the same
    guarantee the run's :class:`~repro.metrics.collector.MetricsCollector`
    documents).
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_mean", "_m2", "_pending")
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        b = tuple(float(x) for x in bounds)
        if not b or any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ConfigurationError(
                f"histogram bounds must be strictly increasing and non-empty, got {b!r}"
            )
        self.name = name
        self.bounds = b
        self._counts = [0] * (len(b) + 1)
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._pending: List[float] = []

    # -- observation ----------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation (hot path: a single list append)."""
        self._pending.append(value)

    def observe_many(self, values: np.ndarray) -> None:
        """Record a batch (vectorized bucketing + Chan moment merge)."""
        self._flush()
        self._ingest(np.asarray(values, dtype=np.float64))

    def _flush(self) -> None:
        """Fold buffered scalar observations into the accumulators."""
        if self._pending:
            pending, self._pending = self._pending, []
            self._ingest(np.asarray(pending, dtype=np.float64))

    def _ingest(self, arr: np.ndarray) -> None:
        n = arr.size
        if n == 0:
            return
        idx = np.searchsorted(self.bounds, arr, side="right")
        binned = np.bincount(idx, minlength=len(self._counts))
        counts = self._counts
        for i, c in enumerate(binned.tolist()):
            if c:
                counts[i] += c
        batch_mean = float(arr.mean())
        batch_m2 = float(np.sum((arr - batch_mean) ** 2))
        self._combine(n, batch_mean, batch_m2)

    def _combine(self, n: int, mean: float, m2: float) -> None:
        prior = self._count
        total = prior + n
        if prior == 0:
            self._mean = mean
            self._m2 = m2
        else:
            delta = mean - self._mean
            self._mean += delta * n / total
            self._m2 += m2 + delta * delta * prior * n / total
        self._count = total

    # -- queries --------------------------------------------------------
    @property
    def count(self) -> int:
        """Total observations (exact even with a pending buffer)."""
        return self._count + len(self._pending)

    @property
    def counts(self) -> List[int]:
        """Per-bucket counts (flushes the pending buffer first)."""
        self._flush()
        return list(self._counts)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations."""
        self._flush()
        return self._mean

    @property
    def sum(self) -> float:
        """Σ observations (mean × count — consistent with the moments)."""
        self._flush()
        return self._mean * self._count

    @property
    def variance(self) -> float:
        """Sample variance (0 with fewer than 2 observations)."""
        self._flush()
        return self._m2 / (self._count - 1) if self._count > 1 else 0.0

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (last = total)."""
        self._flush()
        out: List[int] = []
        acc = 0
        for c in self._counts:
            acc += c
            out.append(acc)
        return out

    def percentile_bound(self, q: float) -> float:
        """Exclusive upper bound of the bucket holding the q-quantile.

        With ``r = ⌈q·n⌉`` (the rank of the empirical q-quantile, 1-based),
        returns ``bounds[i]`` for the first bucket whose cumulative count
        reaches ``r`` — an *exact* bracket: the r-th smallest observation
        ``v`` satisfies ``lower ≤ v < percentile_bound(q)`` where
        ``lower`` is the previous bound.  Returns 0.0 when empty and
        ``inf`` when the quantile falls in the overflow bucket.
        """
        if not 0.0 < q <= 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1], got {q!r}")
        self._flush()
        if self._count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self._count))
        acc = 0
        for i, c in enumerate(self._counts):
            acc += c
            if acc >= rank:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")  # pragma: no cover - counts always sum to count

    # -- merge / persistence -------------------------------------------
    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ConfigurationError(
                f"cannot merge histograms with different bounds ({self.name})"
            )
        self._flush()
        other._flush()
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        if other._count:
            self._combine(other._count, other._mean, other._m2)

    def to_dict(self) -> dict:
        self._flush()
        return {
            "kind": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self._counts),
            "count": self._count,
            "mean": self._mean,
            "m2": self._m2,
        }

    def load(self, data: dict) -> None:
        if tuple(data["bounds"]) != self.bounds:
            self.bounds = tuple(data["bounds"])
        self._counts = list(data["counts"])
        self._count = int(data["count"])
        self._mean = float(data["mean"])
        self._m2 = float(data["m2"])
        self._pending = []


class MetricsRegistry:
    """Name → metric map, validated against :data:`METRIC_NAMES`.

    Creation is get-or-create: components look their instruments up by
    name, and the first caller (typically the backend, which knows the
    scenario's QoS target) fixes histogram boundaries.  Unknown names
    or kind mismatches raise — the runtime twin of the lint rule.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _declare(self, name: str, kind: str):
        spec = METRIC_NAMES.get(name)
        if spec is None:
            raise ConfigurationError(
                f"unregistered metric name {name!r}; add it to "
                "repro.obs.metrics.METRIC_NAMES"
            )
        if spec[0] != kind:
            raise ConfigurationError(
                f"metric {name!r} is registered as a {spec[0]}, not a {kind}"
            )
        existing = self._metrics.get(name)
        if existing is not None and existing.kind != kind:  # pragma: no cover
            raise ConfigurationError(f"metric {name!r} already exists as {existing.kind}")
        return existing

    def counter(self, name: str) -> Counter:
        existing = self._declare(name, "counter")
        if existing is None:
            existing = self._metrics[name] = Counter(name)
        return existing

    def gauge(self, name: str) -> Gauge:
        existing = self._declare(name, "gauge")
        if existing is None:
            existing = self._metrics[name] = Gauge(name)
        return existing

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        existing = self._declare(name, "histogram")
        if existing is None:
            if bounds is None:
                bounds = log_bucket_bounds(1e-3, 1e4)
            existing = self._metrics[name] = Histogram(name, bounds)
        return existing

    def get(self, name: str):
        """The live metric, or ``None`` if nothing created it yet."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(sorted(self._metrics))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, gauges max,
        histograms Chan-merge).  Metrics absent here are deep-copied in
        via their dict form."""
        for name in other:
            theirs = other.get(name)
            mine = self._metrics.get(name)
            if mine is None:
                if theirs.kind == "histogram":
                    mine = self.histogram(name, bounds=theirs.bounds)
                elif theirs.kind == "gauge":
                    mine = self.gauge(name)
                else:
                    mine = self.counter(name)
            mine.merge(theirs)

    def to_dict(self) -> Dict[str, dict]:
        return {name: self.get(name).to_dict() for name in self}

    @classmethod
    def from_dict(cls, data: Dict[str, dict]) -> "MetricsRegistry":
        reg = cls()
        for name, payload in data.items():
            kind = payload.get("kind")
            if kind == "counter":
                reg.counter(name).load(payload)
            elif kind == "gauge":
                reg.gauge(name).load(payload)
            elif kind == "histogram":
                reg.histogram(name, bounds=payload["bounds"]).load(payload)
            else:
                raise ConfigurationError(f"unknown metric kind {kind!r} for {name!r}")
        return reg


def merge_telemetry(telemetries: Sequence[dict]) -> Dict[str, dict]:
    """Merge the registry dumps of several runs' ``telemetry`` fields.

    Accepts the ``RunMetrics.telemetry`` dicts of a replication set
    (empty ones — metrics-off runs — are skipped) and returns one
    combined registry dump: the lossless cross-worker merge promised by
    the parallel runner.
    """
    merged = MetricsRegistry()
    for t in telemetries:
        if t and t.get("registry"):
            merged.merge(MetricsRegistry.from_dict(t["registry"]))
    return merged.to_dict()


def _filename_component(label: str) -> str:
    return re.sub(r"[/\\\s]+", "_", label.strip()) or "unnamed"


@dataclass(frozen=True)
class MetricsConfig:
    """Picklable recipe for one run's telemetry (mirror of TraceConfig).

    Parameters
    ----------
    interval:
        Snapshot cadence in simulation seconds.  ``None`` samples once
        per monitor epoch (the scenario's ``update_interval``).
    path:
        Optional JSONL destination for the snapshot stream.  Same
        placeholder/directory semantics as
        :class:`~repro.obs.bus.TraceConfig.path`; each run writes
        ``<scenario>-<policy>-s<seed>.jsonl``.
    slo_quantile:
        The SLA objective the burn rate is measured against: the
        fraction of completed requests that must meet ``T_s``
        (error budget = ``1 - slo_quantile``).  The paper's QoS
        contract has no explicit percentile, so the conventional
        95th-percentile objective is the default.
    history:
        Keep the snapshot series in memory (returned inside
        ``RunMetrics.telemetry``); disable for very long runs streamed
        to ``path`` — the backends then stream each snapshot straight
        to the JSONL file as it is taken, so nothing accumulates in
        memory and nothing is lost.
    """

    interval: Optional[float] = None
    path: Optional[str] = None
    slo_quantile: float = 0.95
    history: bool = True

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0.0:
            raise ConfigurationError(
                f"snapshot interval must be > 0, got {self.interval!r}"
            )
        if not 0.0 < self.slo_quantile < 1.0:
            raise ConfigurationError(
                f"slo_quantile must be in (0, 1), got {self.slo_quantile!r}"
            )

    def resolve_path(self, scenario: str, policy: str, seed: int) -> Path:
        """Concrete JSONL path for one (scenario, policy, seed)."""
        scenario = _filename_component(scenario)
        policy = _filename_component(policy)
        raw = str(self.path)
        if "{" in raw:
            return Path(raw.format(scenario=scenario, policy=policy, seed=seed))
        p = Path(raw)
        if raw.endswith(("/", "\\")) or p.is_dir():
            return p / f"{scenario}-{policy}-s{seed}.jsonl"
        return p

    def build(self, qos_response_time: float) -> MetricsRegistry:
        """A fresh registry with QoS-centered response-time buckets."""
        registry = MetricsRegistry()
        registry.histogram(
            "qos.response_time", bounds=response_time_bounds(qos_response_time)
        )
        return registry


class RunTelemetry:
    """Per-run snapshot sampler + registry finalizer.

    Built by a backend once per run when a :class:`MetricsConfig` is
    supplied.  On the DES backends :meth:`install` schedules a periodic
    low-priority engine event that calls :meth:`sample`; the fluid
    backend computes the same series from its integration grid via
    :meth:`sample_grid`.  Either way :meth:`finalize` syncs the final
    counter totals into the registry and returns the ``telemetry`` dict
    attached to :class:`~repro.backends.base.RunMetrics`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        config: MetricsConfig,
        qos_response_time: float,
        interval: float,
        collector=None,
        fleet_size_fn: Optional[Callable[[], int]] = None,
        cache_fn: Optional[Callable[[], Tuple[int, int]]] = None,
        tracer: Optional[object] = None,
    ) -> None:
        if interval <= 0.0:
            raise ConfigurationError(f"snapshot interval must be > 0, got {interval!r}")
        self.registry = registry
        self.config = config
        self.qos_response_time = float(qos_response_time)
        self.interval = float(interval)
        self.collector = collector
        self.fleet_size_fn = fleet_size_fn
        self.cache_fn = cache_fn
        self.tracer = tracer
        self.snapshots: List[dict] = []
        # Incremental JSONL stream (history-off mode); see open_stream.
        self._stream = None
        self._stream_tmp: Optional[Path] = None
        self._stream_target: Optional[Path] = None
        # Previous-window counters for the burn-rate delta.
        self._prev_completed = 0
        self._prev_violations = 0

    # -- engine-driven sampling (des / des-vec) ------------------------
    def install(self, engine) -> None:
        """Schedule the periodic snapshot tick on the engine."""
        from ..sim.events import PRIORITY_LOW

        def _tick() -> None:
            self.sample(engine.now)
            engine.schedule(self.interval, _tick, PRIORITY_LOW)

        engine.schedule(self.interval, _tick, PRIORITY_LOW)

    def sample(self, now: float) -> dict:
        """Take one snapshot of the run's QoS state at time ``now``.

        Every field is an integer or a ratio of integers, so the
        snapshot is a deterministic, backend-independent function of
        the counters — no order-dependent float sums.
        """
        m = self.collector
        completed = m.completed if m is not None else 0
        accepted = m.accepted if m is not None else 0
        rejected = m.rejected if m is not None else 0
        violations = m.violations if m is not None else 0
        return self._emit_snapshot(
            now, completed, accepted, rejected, violations,
            fleet=self.fleet_size_fn() if self.fleet_size_fn is not None else 0,
        )

    def _emit_snapshot(
        self,
        now: float,
        completed,
        accepted,
        rejected,
        violations,
        fleet: int,
        window_completed=None,
        window_violations=None,
    ) -> dict:
        if window_completed is None:
            window_completed = completed - self._prev_completed
            window_violations = violations - self._prev_violations
            self._prev_completed = completed
            self._prev_violations = violations
        budget = 1.0 - self.config.slo_quantile
        hist = self.registry.get("qos.response_time")
        if self.cache_fn is not None:
            hits, misses = self.cache_fn()
        else:
            hits, misses = 0, 0
        total = accepted + rejected
        snapshot = {
            "t": now,
            "type": "metrics.snapshot",
            "interval": self.interval,
            "qos_target": self.qos_response_time,
            "total": total,
            "accepted": accepted,
            "rejected": rejected,
            "completed": completed,
            "violations": violations,
            "fleet": int(fleet),
            "rejection_rate": rejected / total if total else 0.0,
            "violation_fraction": violations / completed if completed else 0.0,
            "window_completed": window_completed,
            "window_violations": window_violations,
            "burn_rate": (
                (window_violations / window_completed) / budget
                if window_completed
                else 0.0
            ),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_ratio": hits / (hits + misses) if (hits + misses) else 0.0,
            "p50": hist.percentile_bound(0.50) if hist is not None else 0.0,
            "p95": hist.percentile_bound(0.95) if hist is not None else 0.0,
            "p99": hist.percentile_bound(0.99) if hist is not None else 0.0,
            "bounds": list(hist.bounds) if hist is not None else [],
            "buckets": hist.cumulative_counts() if hist is not None else [],
        }
        if self.config.history:
            self.snapshots.append(snapshot)
        if self._stream is not None:
            self._stream.write(json.dumps(snapshot, separators=(",", ":")) + "\n")
        if self.tracer is not None:
            fields = {k: v for k, v in snapshot.items() if k not in ("t", "type")}
            self.tracer.emit("metrics.snapshot", now, **fields)
        return snapshot

    # -- grid-driven sampling (fluid backend) --------------------------
    def sample_grid(
        self,
        times: np.ndarray,
        dt: float,
        lam: np.ndarray,
        blocking: np.ndarray,
        m_grid: np.ndarray,
        horizon: float,
    ) -> None:
        """Compute the snapshot series from a fluid integration grid.

        Counts are *expected* flows (floats): cumulative offered /
        rejected arrivals up to each snapshot time, with ``completed ==
        accepted`` (flows always drain) and zero violations (the fluid
        model has no per-request response distribution — histogram
        buckets stay empty, percentile bounds report 0).
        """
        if times.size == 0:
            return
        snap_times = np.arange(self.interval, horizon + 1e-9, self.interval)
        cum_offered = np.concatenate(([0.0], np.cumsum(lam))) * dt
        cum_rejected = np.concatenate(([0.0], np.cumsum(lam * blocking))) * dt
        idx = np.searchsorted(times, snap_times, side="left")
        fleet_idx = np.clip(idx - 1, 0, m_grid.size - 1)
        for k, t_snap in enumerate(snap_times.tolist()):
            i = int(idx[k])
            offered = float(cum_offered[i])
            rejected = float(cum_rejected[i])
            accepted = offered - rejected
            self._emit_snapshot(
                t_snap,
                completed=accepted,
                accepted=accepted,
                rejected=rejected,
                violations=0,
                fleet=int(m_grid[int(fleet_idx[k])]),
                window_completed=0,
                window_violations=0,
            )

    # -- finalization ---------------------------------------------------
    def finalize(
        self,
        total,
        accepted,
        rejected,
        completed,
        violations,
        fleet: int,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> dict:
        """Sync final totals into the registry and dump the telemetry.

        The request counters are *synced* from the run's collector
        rather than incremented per request — the hot path pays only
        for the histogram observation, and the totals still merge
        correctly across replications (each run contributes its own
        final counts).
        """
        reg = self.registry
        reg.counter("requests.arrived").set_total(total)
        reg.counter("requests.accepted").set_total(accepted)
        reg.counter("requests.rejected").set_total(rejected)
        reg.counter("requests.completed").set_total(completed)
        reg.counter("qos.violations").set_total(violations)
        reg.counter("control.cache_hits").set_total(cache_hits)
        reg.counter("control.cache_misses").set_total(cache_misses)
        reg.gauge("fleet.size").set(int(fleet))
        return {
            "version": 1,
            "interval": self.interval,
            "slo_quantile": self.config.slo_quantile,
            "qos_target": self.qos_response_time,
            "registry": reg.to_dict(),
            "snapshots": list(self.snapshots),
        }

    # -- persistence ----------------------------------------------------
    def open_stream(self, path: Path) -> Path:
        """Stream every subsequent snapshot straight to ``path``.

        Backends call this before the run when the config has a
        ``path`` but ``history`` is disabled: each snapshot is appended
        to a ``.tmp`` sibling the moment it is taken (nothing
        accumulates in memory), and :meth:`close_stream` atomically
        renames it into place.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._stream_target = path
        self._stream_tmp = path.with_suffix(path.suffix + ".tmp")
        self._stream = self._stream_tmp.open("w", encoding="utf-8")
        return path

    def close_stream(self) -> Optional[Path]:
        """Flush and publish a stream opened by :meth:`open_stream`.

        Idempotent; returns the published path, or ``None`` when no
        stream is open.  Publishes whatever was streamed so far, so an
        interrupted run still keeps its partial series.
        """
        if self._stream is None:
            return None
        self._stream.close()
        self._stream = None
        self._stream_tmp.replace(self._stream_target)
        self._stream_tmp = None
        return self._stream_target

    def write_jsonl(self, path: Path) -> Path:
        """Write the snapshot series as one JSONL file (trace-schema
        valid: each line is a ``metrics.snapshot`` event).

        In streaming mode (``open_stream`` active) the series is
        already on disk — this just closes and publishes the stream.
        """
        if self._stream is not None:
            return self.close_stream()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for snap in self.snapshots:
                fh.write(json.dumps(snap, separators=(",", ":")) + "\n")
        tmp.replace(path)
        return path
