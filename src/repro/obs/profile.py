"""Run profiling — per-phase wall-clock and event-count accounting.

A replication spends its wall-clock in three phases — *build* (wire the
data plane, attach the policy), *run* (the event loop) and *finalize*
(metric aggregation) — and its work in a handful of kernel counters
(events fired, heap compactions, trace events emitted).
:class:`RunProfile` captures both per run, serializes to a JSON-safe
dict that survives the process-pool pickle round-trip (the counters
used to die with the worker process), and aggregates across
replications with :func:`aggregate_profiles` so the CLI perf summary
is correct at any ``--workers`` value.

Wall-clock numbers are inherently nondeterministic, so the runner
stores the profile in a ``compare=False`` field of ``RunResult`` —
bit-identity between the sequential and parallel backends is asserted
on everything else.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterable, Mapping

__all__ = ["RunProfile", "Stopwatch", "aggregate_profiles"]


class Stopwatch:
    """Monotonic duration meter — the sanctioned wall-clock access.

    The determinism invariant (docs/static-analysis.md) is that no
    library module reads a clock directly; durations are measured here,
    from a counter with an *arbitrary epoch*, so no absolute timestamp
    can ever leak into simulation state or stored results.

    >>> watch = Stopwatch()
    >>> ...            # doctest: +SKIP
    >>> watch.elapsed()  # seconds since construction  # doctest: +SKIP
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self._t0

    def restart(self) -> float:
        """Reset the epoch; returns the duration of the ending lap."""
        now = time.perf_counter()
        lap = now - self._t0
        self._t0 = now
        return lap


class RunProfile:
    """Accumulates phase timings and named counters for one run."""

    __slots__ = ("phase_seconds", "counters")

    def __init__(self) -> None:
        #: phase name → cumulative wall-clock seconds.
        self.phase_seconds: Dict[str, float] = {}
        #: counter name → cumulative count.
        self.counters: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        """Time a ``with`` block under ``name`` (cumulative on re-entry)."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - t0
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe snapshot (the form stored on ``RunResult``)."""
        return {
            "phase_seconds": dict(self.phase_seconds),
            "counters": dict(self.counters),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, float]]) -> "RunProfile":
        """Inverse of :meth:`to_dict` (tolerates missing sections)."""
        profile = cls()
        for k, v in dict(data.get("phase_seconds", {})).items():
            profile.phase_seconds[str(k)] = float(v)
        for k, v in dict(data.get("counters", {})).items():
            profile.counters[str(k)] = int(v)
        return profile

    def merge(self, other: "RunProfile") -> "RunProfile":
        """Fold ``other`` into this profile (sums both sections)."""
        for k, v in other.phase_seconds.items():
            self.phase_seconds[k] = self.phase_seconds.get(k, 0.0) + v
        for k, v in other.counters.items():
            self.counters[k] = self.counters.get(k, 0) + v
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        phases = ", ".join(f"{k}={v:.3g}s" for k, v in self.phase_seconds.items())
        return f"<RunProfile {phases} counters={self.counters}>"


def aggregate_profiles(
    profiles: Iterable[Mapping[str, Mapping[str, float]]]
) -> RunProfile:
    """Sum serialized profiles (e.g. ``r.profile`` across replications).

    This is the cross-worker aggregation point: each pool worker ships
    its profile back inside the pickled ``RunResult``, and the caller
    folds them here instead of reading counters off engines that no
    longer exist.
    """
    total = RunProfile()
    for blob in profiles:
        if blob:
            total.merge(RunProfile.from_dict(blob))
    return total
