"""Trace rendering — JSONL traces as human-readable timelines/tables.

Backs the ``repro-experiments trace`` subcommand: given a trace file
(or an iterable of event dicts) it produces

* a **summary table** — per event type: count, first/last timestamp —
  rendered through :func:`repro.metrics.report.format_table` so it
  matches the rest of the CLI's output,
* a **timeline** — one formatted line per event, most informative
  fields first, suitable for eyeballing a provisioning episode,
* a **decision explanation** — the Algorithm-1 narrative of one
  ``decision`` event via :mod:`repro.obs.audit`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..metrics.report import format_table
from .audit import DecisionAuditLog

__all__ = [
    "trace_summary_table",
    "format_event",
    "render_timeline",
    "explain_decision",
]

#: Per-type field ordering for timeline lines (remaining fields follow
#: in insertion order).
_FIELD_ORDER = {
    "decision": ("arrival_rate", "service_time", "current", "chosen", "cache_hit", "path"),
    "scaling.actuated": ("before", "target", "after", "predicted_rate"),
    "prediction.issued": ("rate", "corrective", "window_start", "window_end"),
    "metrics.snapshot": ("fleet", "completed", "rejected", "violation_fraction", "burn_rate", "p95"),
}


def _format_span(event: Mapping[str, object]) -> str:
    """Dedicated ``batch.span`` row: span width, station count, and the
    requests the vectorized data plane flushed through it."""
    width = event.get("width")
    stations = event.get("stations")
    arrivals = int(event.get("arrivals", 0))
    completions = int(event.get("completions", 0))
    rejected = int(event.get("rejected", 0))
    flushed = arrivals + completions
    parts = []
    if width is not None:
        parts.append(f"Δ{float(width):.6g}s")
    if stations is not None:
        parts.append(f"{int(stations)} station(s)")
    parts.append(
        f"flushed {flushed} ({arrivals} arrivals, {completions} completions"
        + (f", {rejected} rejected)" if rejected else ")")
    )
    return "  ".join(parts)


def _fmt_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, list):
        return "→".join(str(v) for v in value)
    return str(value)


def format_event(event: Mapping[str, object]) -> str:
    """One timeline line: ``[t] type  k=v k=v …``."""
    etype = str(event.get("type", "?"))
    t = event.get("t", float("nan"))
    if etype == "batch.span":
        return f"[{float(t):>12.3f}] {etype:<18s} {_format_span(event)}".rstrip()
    ordered = _FIELD_ORDER.get(etype, ())
    hidden = ("t", "type", "bounds", "buckets") if etype == "metrics.snapshot" else ("t", "type")
    keys = [k for k in ordered if k in event]
    keys += [k for k in event if k not in hidden and k not in keys]
    payload = "  ".join(f"{k}={_fmt_value(event[k])}" for k in keys)
    return f"[{float(t):>12.3f}] {etype:<18s} {payload}".rstrip()


def render_timeline(
    events: Iterable[Mapping[str, object]], limit: int = 0
) -> List[str]:
    """Format events as timeline lines (``limit`` > 0 truncates).

    When truncated, a final ellipsis line reports how many events were
    omitted — a trace render must never silently look complete.
    """
    lines: List[str] = []
    omitted = 0
    for event in events:
        if limit and len(lines) >= limit:
            omitted += 1
            continue
        lines.append(format_event(event))
    if omitted:
        lines.append(f"… {omitted} more event(s) not shown")
    return lines


def trace_summary_table(
    events: Sequence[Mapping[str, object]], title: str = ""
) -> str:
    """Aligned per-type summary: count and time span of each event type."""
    stats: Dict[str, Tuple[int, float, float]] = {}
    for event in events:
        etype = str(event.get("type", "?"))
        t = float(event.get("t", 0.0))
        if etype in stats:
            n, first, last = stats[etype]
            stats[etype] = (n + 1, min(first, t), max(last, t))
        else:
            stats[etype] = (1, t, t)
    rows = [
        [etype, n, first, last]
        for etype, (n, first, last) in sorted(stats.items())
    ]
    rows.append(["TOTAL", len(events), "", ""])
    return format_table(
        ["event type", "count", "first t (s)", "last t (s)"], rows, title=title
    )


def explain_decision(
    events: Iterable[Mapping[str, object]], index: int = 0
) -> str:
    """Narrate the ``index``-th Algorithm-1 decision in the trace.

    Raises
    ------
    IndexError
        When the trace holds fewer than ``index + 1`` decision events.
    """
    log = DecisionAuditLog.from_trace(events)
    if not 0 <= index < len(log.records):
        raise IndexError(
            f"trace has {len(log.records)} decision event(s); cannot explain #{index}"
        )
    return log.explain(index)
