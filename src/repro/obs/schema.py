"""Trace event schema — the contract every emitted event satisfies.

A trace is a sequence of flat JSON-safe dicts.  Every event carries

* ``t`` — simulation time in seconds (finite, ≥ 0), and
* ``type`` — one of the registered :data:`EVENT_TYPES`,

plus the type's required payload fields.  Additional fields are
allowed (emitters attach context such as ``observed`` on corrective
prediction alerts); validation only enforces the required core, so the
schema can grow without invalidating old traces.

The registry doubles as documentation: ``docs/observability.md`` is
generated from the same field lists, and the CI trace-smoke job
validates a real scenario trace against this module on every push.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple, Union

from ..errors import TraceSchemaError

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "REQUEST_EVENTS",
    "CONTROL_EVENTS",
    "validate_event",
    "validate_trace",
    "iter_trace",
    "load_trace",
]

#: Bumped whenever a required field is added/renamed.
SCHEMA_VERSION = 2

_FLOAT = (float, int)  # JSON numbers; ints are acceptable floats

#: type → required payload fields (beyond ``t`` and ``type``) with the
#: accepted Python types of each.
EVENT_TYPES: Dict[str, Dict[str, tuple]] = {
    # run lifecycle (emitted by the experiment runner)
    "run.start": {"scenario": (str,), "policy": (str,), "seed": (int,)},
    "run.end": {"events": (int,), "compactions": (int,)},
    # workload generation (broker)
    "window.generated": {"t0": _FLOAT, "arrivals": (int,)},
    # per-request data plane (admission control / monitor)
    "request.admitted": {},
    "request.rejected": {},
    "request.completed": {"response_time": _FLOAT, "service_time": _FLOAT},
    # admission-control state flips (accepting <-> rejecting)
    "admission.state": {"accepting": (bool,)},
    # instance lifecycle (fleet)
    "vm.created": {"instance": (int,), "booting": (bool,)},
    "vm.draining": {"instance": (int,)},
    "vm.destroyed": {"instance": (int,), "reason": (str,)},
    # monitoring samples
    "monitor.sample": {"rate": _FLOAT, "service_time_estimate": _FLOAT},
    # analyzer alerts (regular and corrective)
    "prediction.issued": {
        "rate": _FLOAT,
        "window_start": _FLOAT,
        "window_end": _FLOAT,
        "corrective": (bool,),
    },
    # Algorithm-1 runs (modeler) — the decision audit record
    "decision": {
        "arrival_rate": _FLOAT,
        "service_time": _FLOAT,
        "current": (int,),
        "chosen": (int,),
        "iterations": (int,),
        "meets_qos": (bool,),
        "cache_hit": (bool,),
        "path": (list,),
        "rho": _FLOAT,
        "blocking": _FLOAT,
        "response": _FLOAT,
    },
    # provisioner actuations
    "scaling.actuated": {
        "predicted_rate": _FLOAT,
        "before": (int,),
        "target": (int,),
        "after": (int,),
    },
    # engine heap hygiene
    "engine.compacted": {"removed": (int,), "remaining": (int,)},
    # vectorized backend: one summary per non-empty epoch span (the
    # arrivals/completions the array data plane absorbed since the
    # previous engine event); ``stations`` is the active fleet size at
    # the flush and ``width`` the span's extent in simulation seconds
    "batch.span": {
        "arrivals": (int,),
        "completions": (int,),
        "rejected": (int,),
        "stations": (int,),
        "width": _FLOAT,
    },
    # periodic QoS telemetry (repro.obs.metrics.RunTelemetry): counters
    # are floats because the fluid backend reports *expected* flows;
    # ``buckets`` holds the cumulative response-time histogram counts
    # for the ``bounds`` upper edges plus one overflow entry
    "metrics.snapshot": {
        "interval": _FLOAT,
        "qos_target": _FLOAT,
        "total": _FLOAT,
        "accepted": _FLOAT,
        "rejected": _FLOAT,
        "completed": _FLOAT,
        "violations": _FLOAT,
        "fleet": (int,),
        "rejection_rate": _FLOAT,
        "violation_fraction": _FLOAT,
        "window_completed": _FLOAT,
        "window_violations": _FLOAT,
        "burn_rate": _FLOAT,
        "cache_hits": (int,),
        "cache_misses": (int,),
        "cache_hit_ratio": _FLOAT,
        "p50": _FLOAT,
        "p95": _FLOAT,
        "p99": _FLOAT,
        "bounds": (list,),
        "buckets": (list,),
    },
    # fluid backend: one event per constant-fleet integration segment
    "fluid.interval": {
        "duration": _FLOAT,
        "instances": (int,),
        "offered": _FLOAT,
        "rejected": _FLOAT,
    },
    # campaign engine: per-cell lifecycle (``t`` is wall-clock seconds
    # since campaign start — campaigns have no simulation clock)
    "campaign.cell.start": {
        "key": (str,),
        "scenario": (str,),
        "policy": (str,),
        "backend": (str,),
        "seed": (int,),
    },
    "campaign.cell.cached": {"key": (str,)},
    "campaign.cell.done": {"key": (str,), "wall_seconds": _FLOAT},
    "campaign.cell.failed": {"key": (str,), "error": (str,)},
    "campaign.cell.screened": {"key": (str,), "rejection_rate": _FLOAT},
    # campaign scheduler: store-level lease lifecycle — who claimed,
    # stole, or released which cell (``owner`` is a host:pid worker id)
    "campaign.claim.acquired": {"key": (str,), "owner": (str,)},
    "campaign.claim.stolen": {
        "key": (str,),
        "owner": (str,),
        "previous_owner": (str,),
    },
    "campaign.claim.released": {"key": (str,), "owner": (str,)},
    # economy subsystem (repro.economy): one accounting interval of the
    # profit ledger (deltas, not cumulatives; ``violating`` is the SLA
    # penalty trigger), one spot-capacity reclamation, and the end-of-
    # run billing summary
    "economy.interval": {
        "duration": _FLOAT,
        "completed": (int,),
        "rejected": (int,),
        "violations": (int,),
        "core_seconds": _FLOAT,
        "spot_core_seconds": _FLOAT,
        "violating": (bool,),
    },
    "economy.revocation": {"instance": (int,), "lost": (int,)},
    "economy.summary": {
        "revenue": _FLOAT,
        "cost": _FLOAT,
        "penalty": _FLOAT,
        "profit": _FLOAT,
        "spot_vm_hours": _FLOAT,
        "revocations": (int,),
        "violating_intervals": (int,),
    },
}

#: The per-request event types — the only high-frequency ones.  CLI
#: tracing excludes them by default (``--trace-requests`` opts in) so a
#: full-scenario trace stays control-plane sized.
REQUEST_EVENTS = frozenset({"request.admitted", "request.rejected", "request.completed"})

#: Everything except the per-request firehose.
CONTROL_EVENTS = frozenset(EVENT_TYPES) - REQUEST_EVENTS


def _check_type(value: object, expected: tuple) -> bool:
    if bool in expected:
        if isinstance(value, bool):
            return True
    if isinstance(value, bool):
        # bool is an int subclass; only fields declared bool accept it.
        return False
    return isinstance(value, expected)


def validate_event(event: Mapping[str, object]) -> None:
    """Check one event against the schema.

    Raises
    ------
    TraceSchemaError
        With a message naming the offending field, when the event is
        not a mapping, has an unknown type, a bad timestamp, or is
        missing / mistyping a required payload field.
    """
    if not isinstance(event, Mapping):
        raise TraceSchemaError(f"event must be a mapping, got {type(event).__name__}")
    etype = event.get("type")
    if not isinstance(etype, str):
        raise TraceSchemaError(f"event has no string 'type' field: {event!r}")
    fields = EVENT_TYPES.get(etype)
    if fields is None:
        raise TraceSchemaError(f"unknown event type {etype!r}")
    t = event.get("t")
    if isinstance(t, bool) or not isinstance(t, (int, float)):
        raise TraceSchemaError(f"{etype}: 't' must be a number, got {t!r}")
    if not math.isfinite(t) or t < 0.0:
        raise TraceSchemaError(f"{etype}: 't' must be finite and >= 0, got {t!r}")
    for name, expected in fields.items():
        if name not in event:
            raise TraceSchemaError(f"{etype}: missing required field {name!r}")
        if not _check_type(event[name], expected):
            raise TraceSchemaError(
                f"{etype}: field {name!r} has {type(event[name]).__name__} "
                f"value {event[name]!r}; expected {'/'.join(c.__name__ for c in expected)}"
            )


def validate_trace(events: Iterable[Mapping[str, object]]) -> int:
    """Validate a whole trace; returns the number of events checked.

    The first invalid event aborts with a :class:`TraceSchemaError`
    whose message includes its position in the stream.
    """
    count = 0
    for i, event in enumerate(events):
        try:
            validate_event(event)
        except TraceSchemaError as exc:
            raise TraceSchemaError(f"event #{i}: {exc}") from None
        count += 1
    return count


def iter_trace(path: Union[str, Path]) -> Iterator[dict]:
    """Stream events from a JSONL trace file (one dict per line)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: not valid JSON: {exc}") from None


def load_trace(path: Union[str, Path]) -> List[dict]:
    """Read a whole JSONL trace into memory (small traces / tooling)."""
    return list(iter_trace(path))
