"""Arrival-rate predictors for the workload analyzer.

Paper analyzers (model-informed):

* :class:`ModelInformedPredictor` — evaluates the known rate curve
  (web scenario, six-period day).
* :class:`ScientificModePredictor` — Weibull-mode estimator with the
  paper's ×1.2 / ×2.6 safety factors (scientific scenario).

Extensions (the paper's §VII future work, used in ablations):

* :class:`LastValuePredictor`, :class:`MovingAveragePredictor`,
  :class:`EWMAPredictor` — reactive baselines.
* :class:`ARPredictor`, :class:`ARXPredictor` — least-squares
  autoregressive / ARMAX-style models.
* :class:`QRSMPredictor` — quadratic response-surface trend.
* :class:`OraclePredictor` — perfect information upper bound.
"""

from .arma import ARPredictor, ARXPredictor
from .base import ArrivalRatePredictor
from .oracle import OraclePredictor
from .qrsm import QRSMPredictor
from .reactive import EWMAPredictor, LastValuePredictor, MovingAveragePredictor
from .timebased import (
    WEB_PERIOD_BOUNDARIES_HOURS,
    ModelInformedPredictor,
    ScientificModePredictor,
)

__all__ = [
    "ArrivalRatePredictor",
    "ModelInformedPredictor",
    "ScientificModePredictor",
    "WEB_PERIOD_BOUNDARIES_HOURS",
    "LastValuePredictor",
    "MovingAveragePredictor",
    "EWMAPredictor",
    "ARPredictor",
    "ARXPredictor",
    "QRSMPredictor",
    "OraclePredictor",
]
