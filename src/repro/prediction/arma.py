"""Autoregressive predictors — the paper's ARMAX future-work item.

§VII: "we will adapt more comprehensive prediction techniques (such as
QRSM and ARMAX) to handle prediction for arbitrary service workloads".
This module implements a lean but real autoregressive family fitted by
ordinary least squares with numpy (no external stats packages):

* :class:`ARPredictor` — AR(p): ``r_{t+1} = c + Σ φ_i · r_{t−i}``.
* :class:`ARXPredictor` — AR(p) with an exogenous regressor, the
  time-of-day phase ``sin(π·sod/86400)`` — exactly the shape of the web
  workload's Eq. 2 — making it an ARMAX-style model in the sense the
  paper cites (Candy, *Model-based Signal Processing*).

Both refit on every prediction from a sliding history window; with the
analyzer's default 15-minute cadence that is ~100 small ``lstsq``
solves per simulated day, which is negligible.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

import numpy as np

from ..errors import PredictionError
from ..sim.calendar import SECONDS_PER_DAY
from .base import ArrivalRatePredictor

__all__ = ["ARPredictor", "ARXPredictor"]


class ARPredictor(ArrivalRatePredictor):
    """Sliding-window AR(p) least-squares predictor.

    Parameters
    ----------
    order:
        Number of autoregressive lags p ≥ 1.
    history:
        Sliding window of retained samples (must exceed ``2·order``).
    safety_factor:
        Multiplier on the point forecast.
    """

    name = "ar"

    def __init__(self, order: int = 3, history: int = 96, safety_factor: float = 1.0) -> None:
        if order < 1:
            raise PredictionError(f"AR order must be >= 1, got {order}")
        if history <= 2 * order:
            raise PredictionError(
                f"history ({history}) must exceed twice the order ({order})"
            )
        if safety_factor <= 0.0:
            raise PredictionError(f"safety factor must be > 0, got {safety_factor!r}")
        self.order = int(order)
        self.safety_factor = float(safety_factor)
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=int(history))

    def observe(self, t: float, rate: float) -> None:
        if rate < 0.0:
            raise PredictionError(f"observed rate must be >= 0, got {rate!r}")
        self._samples.append((float(t), float(rate)))

    @property
    def sample_count(self) -> int:
        """Number of retained history samples."""
        return len(self._samples)

    # ------------------------------------------------------------------
    def _design(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build (X, y, last_lags) from history; X rows = [1, lags...]."""
        rates = np.array([r for _, r in self._samples])
        p = self.order
        if rates.size < p + 2:
            raise PredictionError(
                f"{self.name}: need at least {p + 2} samples, have {rates.size}"
            )
        # Row i predicts rates[i+p] from rates[i:i+p] (most recent last).
        n = rates.size - p
        X = np.empty((n, p + 1))
        X[:, 0] = 1.0
        for j in range(p):
            X[:, 1 + j] = rates[j : j + n]
        y = rates[p:]
        last = rates[-p:]
        return X, y, last

    def _exog(self, t: float) -> np.ndarray:
        """Exogenous regressors for time ``t`` (none in plain AR)."""
        return np.empty(0)

    def _exog_history(self) -> np.ndarray:
        return np.empty((len(self._samples) - self.order, 0))

    def predict(self, t0: float, t1: float) -> float:
        X, y, last = self._design()
        exog_hist = self._exog_history()
        if exog_hist.shape[1]:
            X = np.hstack([X, exog_hist])
        coef, *_ = np.linalg.lstsq(X, y, rcond=None)
        row = np.concatenate([[1.0], last, self._exog(0.5 * (t0 + t1))])
        forecast = float(row @ coef)
        return max(0.0, forecast) * self.safety_factor


class ARXPredictor(ARPredictor):
    """AR(p) plus a diurnal exogenous input (ARMAX-style).

    The exogenous term is the Eq.-2 phase ``sin(π·sod/86400)`` of the
    *target* time, letting the model anticipate the rate swing instead
    of merely following it — this is what makes it proactive on
    diurnal workloads.
    """

    name = "arx"

    def _phase(self, t: float) -> float:
        sod = t % SECONDS_PER_DAY
        return float(np.sin(np.pi * sod / SECONDS_PER_DAY))

    def _exog(self, t: float) -> np.ndarray:
        return np.array([self._phase(t)])

    def _exog_history(self) -> np.ndarray:
        times = np.array([t for t, _ in self._samples])
        p = self.order
        n = times.size - p
        # Phase of each regression target's timestamp.
        target_times = times[p:]
        sod = np.mod(target_times, SECONDS_PER_DAY)
        return np.sin(np.pi * sod / SECONDS_PER_DAY).reshape(n, 1)
