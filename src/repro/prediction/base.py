"""Predictor interface for the workload analyzer.

The workload analyzer (paper §IV-A) "generates estimation (prediction)
of request arrival rate ... based on historical data about resources
usage, or based on statistical models derived from known application
workloads".  Both families share one interface:

* :meth:`ArrivalRatePredictor.predict` — the expected arrival rate over
  an upcoming window ``[t0, t1)``;
* :meth:`ArrivalRatePredictor.observe` — ingest one monitored
  ``(time, rate)`` sample (model-informed predictors ignore it);
* :meth:`ArrivalRatePredictor.boundaries` — known rate change points
  inside a horizon, so the analyzer can align its alerts with them
  (the web workload's six daily periods; the scientific workload's
  8 a.m./5 p.m. regime switches).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

__all__ = ["ArrivalRatePredictor"]


class ArrivalRatePredictor(ABC):
    """Estimates the request arrival rate of an upcoming window."""

    #: Identifier used in reports and ablation labels.
    name: str = "predictor"

    @abstractmethod
    def predict(self, t0: float, t1: float) -> float:
        """Expected arrival rate (requests/s) over ``[t0, t1)``.

        Implementations should be *conservative where the paper is*:
        the paper's analyzer deliberately over-estimates bursty
        workloads (its ×1.2 / ×2.6 safety factors) so that transient
        spikes do not violate QoS.

        Raises
        ------
        PredictionError
            If no estimate can be produced (e.g. a purely reactive
            predictor with no history).
        """

    def observe(self, t: float, rate: float) -> None:
        """Ingest one monitored arrival-rate sample (default: ignore)."""

    def boundaries(self, t0: float, t1: float) -> List[float]:
        """Known rate change points in ``(t0, t1)`` (default: none)."""
        return []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
