"""Oracle predictor — the perfect-information upper bound.

Knows the workload's true mean-rate curve and reports its exact mean
(or max) over the prediction window with no safety factor.  Ablations
use it to separate *prediction* error from *modeling* error: any QoS
miss under the oracle is attributable to the queueing model or the
actuation lag, not to forecasting.
"""

from __future__ import annotations

import numpy as np

from ..errors import PredictionError
from ..workloads.base import Workload
from .base import ArrivalRatePredictor

__all__ = ["OraclePredictor"]


class OraclePredictor(ArrivalRatePredictor):
    """Ground-truth rate over the prediction window.

    Parameters
    ----------
    workload:
        The true workload model.
    mode:
        ``"mean"`` (default) or ``"max"`` over the window.
    resolution:
        Curve sampling step in seconds.
    """

    name = "oracle"

    def __init__(self, workload: Workload, mode: str = "mean", resolution: float = 60.0) -> None:
        if mode not in ("mean", "max"):
            raise PredictionError(f"mode must be 'mean' or 'max', got {mode!r}")
        if resolution <= 0.0:
            raise PredictionError(f"resolution must be > 0, got {resolution!r}")
        self.workload = workload
        self.mode = mode
        self.resolution = float(resolution)

    def predict(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            raise PredictionError(f"empty prediction window [{t0}, {t1})")
        grid = np.linspace(t0, t1, max(2, int((t1 - t0) / self.resolution) + 1), endpoint=False)
        rates = np.asarray(self.workload.mean_rate(grid))
        return float(rates.max() if self.mode == "max" else rates.mean())
