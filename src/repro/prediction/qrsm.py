"""Quadratic Response Surface predictor — the paper's QRSM citation.

§V-B mentions the Quadratic Response Surface Model (Myers et al.,
*Response Surface Methodology*) as a "more powerful technique" left to
future work.  :class:`QRSMPredictor` fits a quadratic polynomial of
time to a sliding window of monitored rates and extrapolates it to the
midpoint of the prediction window — a local second-order trend model
that anticipates accelerating ramps better than flat averages.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

import numpy as np

from ..errors import PredictionError
from .base import ArrivalRatePredictor

__all__ = ["QRSMPredictor"]


class QRSMPredictor(ArrivalRatePredictor):
    """Sliding-window quadratic trend extrapolation.

    Parameters
    ----------
    history:
        Number of retained ``(time, rate)`` samples (≥ 4).
    safety_factor:
        Multiplier on the point forecast.
    clamp_growth:
        Maximum ratio of forecast to last observation — quadratic
        extrapolation can explode on noisy tails, so the forecast is
        clamped into ``[last/clamp_growth, last·clamp_growth]`` when a
        last observation exists.
    """

    name = "qrsm"

    def __init__(
        self,
        history: int = 32,
        safety_factor: float = 1.0,
        clamp_growth: float = 3.0,
    ) -> None:
        if history < 4:
            raise PredictionError(f"QRSM needs history >= 4, got {history}")
        if safety_factor <= 0.0:
            raise PredictionError(f"safety factor must be > 0, got {safety_factor!r}")
        if clamp_growth < 1.0:
            raise PredictionError(f"clamp_growth must be >= 1, got {clamp_growth!r}")
        self.safety_factor = float(safety_factor)
        self.clamp_growth = float(clamp_growth)
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=int(history))

    def observe(self, t: float, rate: float) -> None:
        if rate < 0.0:
            raise PredictionError(f"observed rate must be >= 0, got {rate!r}")
        self._samples.append((float(t), float(rate)))

    @property
    def sample_count(self) -> int:
        """Number of retained history samples."""
        return len(self._samples)

    def predict(self, t0: float, t1: float) -> float:
        if len(self._samples) < 3:
            raise PredictionError(
                f"{self.name}: need >= 3 samples to fit a quadratic, "
                f"have {len(self._samples)}"
            )
        times = np.array([t for t, _ in self._samples])
        rates = np.array([r for _, r in self._samples])
        # Center and scale time for conditioning.
        t_mean = times.mean()
        t_span = max(float(np.ptp(times)), 1e-9)
        x = (times - t_mean) / t_span
        X = np.column_stack([np.ones_like(x), x, x * x])
        coef, *_ = np.linalg.lstsq(X, rates, rcond=None)
        xq = (0.5 * (t0 + t1) - t_mean) / t_span
        forecast = float(coef[0] + coef[1] * xq + coef[2] * xq * xq)
        last = rates[-1]
        if last > 0.0:
            forecast = min(max(forecast, last / self.clamp_growth), last * self.clamp_growth)
        return max(0.0, forecast) * self.safety_factor
