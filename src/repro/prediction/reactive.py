"""Reactive (history-driven) predictors.

These estimate the next window's arrival rate purely from monitored
history — what a provider must do when no workload model is available.
The paper positions its mechanism as *proactive* against the reactive
schemes of Chieu et al. and Claudia; the predictor-ablation benchmark
quantifies that difference by swapping these into the same analyzer.

* :class:`LastValuePredictor` — naive: tomorrow looks like right now
  (the purely reactive baseline).
* :class:`MovingAveragePredictor` — mean of the last ``n`` samples.
* :class:`EWMAPredictor` — exponentially weighted moving average.

All accept a ``safety_factor`` so they can be made conservative like
the paper's analyzers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from ..errors import PredictionError
from .base import ArrivalRatePredictor

__all__ = ["LastValuePredictor", "MovingAveragePredictor", "EWMAPredictor"]


class _HistoryPredictor(ArrivalRatePredictor):
    """Shared plumbing: bounded history + safety factor."""

    def __init__(self, safety_factor: float = 1.0, history: int = 4096) -> None:
        if safety_factor <= 0.0:
            raise PredictionError(f"safety factor must be > 0, got {safety_factor!r}")
        if history < 1:
            raise PredictionError(f"history length must be >= 1, got {history}")
        self.safety_factor = float(safety_factor)
        self._history: Deque[float] = deque(maxlen=history)

    def observe(self, t: float, rate: float) -> None:
        if rate < 0.0:
            raise PredictionError(f"observed rate must be >= 0, got {rate!r}")
        self._history.append(float(rate))

    @property
    def sample_count(self) -> int:
        """Number of retained history samples."""
        return len(self._history)

    def _require_history(self) -> None:
        if not self._history:
            raise PredictionError(
                f"{self.name}: no monitored rate history yet — "
                "reactive predictors need at least one sample"
            )


class LastValuePredictor(_HistoryPredictor):
    """Predict the most recent observed rate (naive persistence)."""

    name = "last-value"

    def predict(self, t0: float, t1: float) -> float:
        self._require_history()
        return self._history[-1] * self.safety_factor


class MovingAveragePredictor(_HistoryPredictor):
    """Mean of the last ``window`` observations.

    Parameters
    ----------
    window:
        Number of recent samples averaged.
    """

    name = "moving-average"

    def __init__(self, window: int = 5, safety_factor: float = 1.0, history: int = 4096) -> None:
        super().__init__(safety_factor, history)
        if window < 1:
            raise PredictionError(f"window must be >= 1, got {window}")
        self.window = int(window)

    def predict(self, t0: float, t1: float) -> float:
        self._require_history()
        recent = list(self._history)[-self.window :]
        return (sum(recent) / len(recent)) * self.safety_factor


class EWMAPredictor(_HistoryPredictor):
    """Exponentially weighted moving average of observed rates.

    Parameters
    ----------
    alpha:
        Smoothing weight in (0, 1]; higher reacts faster.
    """

    name = "ewma"

    def __init__(self, alpha: float = 0.3, safety_factor: float = 1.0, history: int = 4096) -> None:
        super().__init__(safety_factor, history)
        if not 0.0 < alpha <= 1.0:
            raise PredictionError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = float(alpha)
        self._ewma: float = 0.0
        self._primed = False

    def observe(self, t: float, rate: float) -> None:
        super().observe(t, rate)
        if self._primed:
            self._ewma += self.alpha * (rate - self._ewma)
        else:
            self._ewma = float(rate)
            self._primed = True

    def predict(self, t0: float, t1: float) -> float:
        self._require_history()
        return self._ewma * self.safety_factor
