"""Time-based, model-informed predictors — the paper's analyzers.

Both evaluation scenarios use predictors derived from the *known*
workload model ("because in these experiments both workloads are based
on models, we apply a time-based prediction model for them", §V-B):

* :class:`ModelInformedPredictor` — generic: evaluates the workload's
  own rate curve over the upcoming window and reports its maximum
  (conservative) or mean, optionally inflated by a safety factor.
  With the web workload this realizes the paper's six-period day
  schedule: the analyzer's alert cadence plus the period boundaries
  reported by :meth:`boundaries` drive re-provisioning.
* :class:`ScientificModePredictor` — the paper's §V-B2 rule, built on
  distribution *modes*: peak rate = (size mode × 1.2)/interarrival
  mode; off-peak = (jobs-per-period mode × 2.6 × tasks/job)/period.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import PredictionError
from ..sim.calendar import SECONDS_PER_DAY, SECONDS_PER_HOUR
from ..workloads.base import Workload
from ..workloads.scientific import ScientificWorkload
from .base import ArrivalRatePredictor

__all__ = [
    "WEB_PERIOD_BOUNDARIES_HOURS",
    "ModelInformedPredictor",
    "ScientificModePredictor",
]

#: The paper's six web-day periods (§V-B1), as boundary hours:
#: 11:30–12:30 (peak), 12:30–16, 16–20, 20–02, 02–07, 07–11:30.
WEB_PERIOD_BOUNDARIES_HOURS: Sequence[float] = (2.0, 7.0, 11.5, 12.5, 16.0, 20.0)


class ModelInformedPredictor(ArrivalRatePredictor):
    """Predict from the workload's own mean-rate curve.

    Parameters
    ----------
    workload:
        The model whose :meth:`~repro.workloads.base.Workload.mean_rate`
        is consulted.
    mode:
        ``"max"`` (default, conservative — provision for the worst rate
        inside the window) or ``"mean"``.
    safety_factor:
        Multiplier applied to the estimate (≥ 0; the paper uses 1.0 for
        the web scenario because Eq. 2 varies smoothly).
    resolution:
        Sampling step (seconds) for evaluating the curve in a window.
    daily_boundaries_hours:
        Hours of day at which the rate regime is known to change; the
        analyzer aligns alerts with them.  Defaults to the paper's six
        web periods.
    """

    name = "model-informed"

    def __init__(
        self,
        workload: Workload,
        mode: str = "max",
        safety_factor: float = 1.0,
        resolution: float = 60.0,
        daily_boundaries_hours: Optional[Sequence[float]] = None,
    ) -> None:
        if mode not in ("max", "mean"):
            raise PredictionError(f"mode must be 'max' or 'mean', got {mode!r}")
        if safety_factor <= 0.0:
            raise PredictionError(f"safety factor must be > 0, got {safety_factor!r}")
        if resolution <= 0.0:
            raise PredictionError(f"resolution must be > 0, got {resolution!r}")
        self.workload = workload
        self.mode = mode
        self.safety_factor = float(safety_factor)
        self.resolution = float(resolution)
        if daily_boundaries_hours is None:
            daily_boundaries_hours = WEB_PERIOD_BOUNDARIES_HOURS
        self._daily_boundaries = sorted(float(h) % 24.0 for h in daily_boundaries_hours)

    def predict(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            raise PredictionError(f"empty prediction window [{t0}, {t1})")
        n = max(2, int((t1 - t0) / self.resolution) + 1)
        # Half-open window [t0, t1): the rate *at* t1 belongs to the next
        # alert's window (otherwise a regime switch at t1 leaks one grid
        # point back and triggers scaling a full cadence early).
        grid = np.linspace(t0, t1, n, endpoint=False)
        rates = np.asarray(self.workload.mean_rate(grid))
        value = float(rates.max() if self.mode == "max" else rates.mean())
        return value * self.safety_factor

    def boundaries(self, t0: float, t1: float) -> List[float]:
        """Period boundaries (as absolute times) inside ``(t0, t1)``."""
        out: List[float] = []
        day = int(t0 // SECONDS_PER_DAY)
        while day * SECONDS_PER_DAY < t1:
            base = day * SECONDS_PER_DAY
            for h in self._daily_boundaries:
                t = base + h * SECONDS_PER_HOUR
                if t0 < t < t1:
                    out.append(t)
            day += 1
        return out


class ScientificModePredictor(ArrivalRatePredictor):
    """The paper's §V-B2 mode-based estimator for the BoT workload.

    Peak time: "the mode of the interarrival time (7.379 seconds) is
    used to estimate arrival rate, whereas the mode for the size class
    (... 1.309 tasks per BoT job) is used to estimate number of requests
    on each interarrival ... estimated number of tasks is increased by
    20 %".  Off-peak: "arrival rate is estimated based on the mode of
    the daily cycle (15.298 requests per 30 minutes interval) ...
    multiplied by a factor of 2.6".

    Parameters
    ----------
    workload:
        The :class:`ScientificWorkload` providing modes and the peak
        window.
    peak_safety, offpeak_safety:
        The paper's ×1.2 and ×2.6 inflation factors.
    """

    name = "scientific-mode"

    def __init__(
        self,
        workload: ScientificWorkload,
        peak_safety: float = 1.2,
        offpeak_safety: float = 2.6,
    ) -> None:
        if peak_safety <= 0.0 or offpeak_safety <= 0.0:
            raise PredictionError(
                f"safety factors must be > 0, got {peak_safety!r}, {offpeak_safety!r}"
            )
        self.workload = workload
        self.peak_safety = float(peak_safety)
        self.offpeak_safety = float(offpeak_safety)

    @property
    def peak_rate(self) -> float:
        """Estimated tasks/s during peak: size_mode × safety / ia_mode."""
        w = self.workload
        return w.size_mode * self.peak_safety / w.interarrival_mode

    @property
    def offpeak_rate(self) -> float:
        """Estimated tasks/s off-peak: jobs_mode × safety × tasks / period.

        The size class multiplies off-peak job counts too (the workload
        generator applies it to every job).  We use the *discretized
        mean* tasks/job (≈ 1.62) rather than the continuous mode
        (1.309): with the mode the off-peak fleet lands at 11 instances
        and absorbs bursts poorly (≈ 0.7 % rejections), while the mean
        yields the paper's observed 13-instance off-peak fleet and its
        ≈ 0 rejection rate.  Documented deviation (EXPERIMENTS.md).
        """
        w = self.workload
        return w.offpeak_mode * self.offpeak_safety * w.mean_tasks_per_job / w.window

    def predict(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            raise PredictionError(f"empty prediction window [{t0}, {t1})")
        # Conservative: if any part of the half-open window [t0, t1) is
        # peak, predict peak.
        grid = np.linspace(t0, t1, max(2, int((t1 - t0) / 300.0) + 1), endpoint=False)
        if bool(np.any(self.workload.in_peak(grid))):
            return self.peak_rate
        return self.offpeak_rate

    def boundaries(self, t0: float, t1: float) -> List[float]:
        """The 8 a.m. and 5 p.m. regime switches inside ``(t0, t1)``."""
        out: List[float] = []
        day = int(t0 // SECONDS_PER_DAY)
        while day * SECONDS_PER_DAY < t1:
            base = day * SECONDS_PER_DAY
            for edge in (self.workload.peak_start, self.workload.peak_end):
                t = base + edge
                if t0 < t < t1:
                    out.append(t)
            day += 1
        return out
