"""Analytical queueing-theory library.

Closed-form steady-state models used by the load predictor &
performance modeler (paper §IV-B) and by the fluid simulation engine:

* :class:`MM1Queue` — M/M/1 (infinite buffer, single server)
* :class:`MM1KQueue` — M/M/1/K, the paper's per-instance model
* :class:`MMCQueue` — M/M/c (pooled fleet, infinite buffer)
* :class:`MMCKQueue` — M/M/c/K (pooled fleet, finite buffer)
* :class:`MMInfQueue` — M/M/∞, the paper's dispatch-tier model
* :class:`MD1Queue` / :class:`MD1KQueue` — deterministic-service
  companions for the low-variability simulated workloads
* :func:`erlang_b` / :func:`erlang_c` — multi-server primitives
* :class:`ProvisioningNetwork` — the composed Figure-2 network

All models share the :class:`QueueModel` interface, so Algorithm 1 can
be run against any of them (see the queue-model ablation benchmark).
"""

from .base import QueueModel, validate_capacity, validate_rates
from .erlang import erlang_b, erlang_c
from .md1 import MD1KQueue, MD1Queue
from .mg1 import MG1Queue, uniform_jitter_scv
from .mm1 import MM1Queue
from .mm1k import MM1KQueue, mm1k_blocking, mm1k_mean_number
from .mmc import MMCQueue
from .mmck import MMCKQueue
from .mminf import MMInfQueue
from .network import NetworkPerformance, ProvisioningNetwork
from .tandem import CompositeServiceModeler, TandemNetwork, TandemStage

__all__ = [
    "QueueModel",
    "validate_rates",
    "validate_capacity",
    "MM1Queue",
    "MM1KQueue",
    "mm1k_blocking",
    "mm1k_mean_number",
    "MMCQueue",
    "MMCKQueue",
    "MMInfQueue",
    "MD1Queue",
    "MD1KQueue",
    "MG1Queue",
    "uniform_jitter_scv",
    "erlang_b",
    "erlang_c",
    "NetworkPerformance",
    "ProvisioningNetwork",
    "TandemStage",
    "TandemNetwork",
    "CompositeServiceModeler",
]
