"""Common scaffolding for analytical queueing models.

Every model in :mod:`repro.queueing` exposes the same small surface:

* construction from an arrival rate ``lam`` (requests/s) and either a
  service rate ``mu`` (requests/s) or a mean service time;
* steady-state quantities as properties — utilization, blocking
  probability, mean number in system ``L``, mean response time ``W``,
  mean queue length ``Lq``, mean waiting time ``Wq``;
* a ``state_probability(n)`` method for the stationary distribution.

The load predictor & performance modeler (paper §IV-B) consumes exactly
this interface, which is what lets tests swap an M/M/1/K queue for an
M/M/c or M/D/1 approximation when probing the sensitivity of
Algorithm 1 to the queueing abstraction.

Numerical conventions
---------------------
* Rates must be non-negative; service rates strictly positive.
* ``rho`` is the *offered* load ``lam / mu`` (per server where
  applicable), which may exceed 1 for loss systems.
* Little's-law identities are used for derived quantities so each model
  only implements its primitive formulas; the test-suite checks the
  identities independently against simulation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from ..errors import QueueingModelError

__all__ = ["QueueModel", "validate_rates", "validate_capacity"]


def validate_rates(lam: float, mu: float) -> None:
    """Raise :class:`QueueingModelError` unless ``lam >= 0 < mu``.

    Also rejects NaNs and infinities, which silently poison the
    closed-form expressions otherwise.
    """
    if not (lam >= 0.0 and math.isfinite(lam)):
        raise QueueingModelError(f"arrival rate must be finite and >= 0, got {lam!r}")
    if not (mu > 0.0 and math.isfinite(mu)):
        raise QueueingModelError(f"service rate must be finite and > 0, got {mu!r}")


def validate_capacity(capacity: int) -> int:
    """Validate a finite system capacity ``K >= 1`` and return it as int."""
    if isinstance(capacity, bool) or int(capacity) != capacity:
        raise QueueingModelError(f"capacity must be an integer, got {capacity!r}")
    capacity = int(capacity)
    if capacity < 1:
        raise QueueingModelError(f"capacity must be >= 1, got {capacity}")
    return capacity


class QueueModel(ABC):
    """Abstract steady-state queueing model.

    Subclasses store ``lam`` and ``mu`` and implement the primitive
    quantities; the derived Little's-law quantities are provided here.

    Parameters
    ----------
    lam:
        Mean arrival rate λ (requests per second) offered to the queue.
    mu:
        Mean service rate μ (requests per second) of one server.
    """

    #: Short name used in reports, e.g. ``"M/M/1/K"``.
    kind: str = "queue"

    def __init__(self, lam: float, mu: float) -> None:
        validate_rates(lam, mu)
        self.lam = float(lam)
        self.mu = float(mu)

    # -- primitives -----------------------------------------------------
    @property
    def rho(self) -> float:
        """Offered load per server, λ/μ (may exceed 1 for loss systems)."""
        return self.lam / self.mu

    @property
    @abstractmethod
    def blocking_probability(self) -> float:
        """Probability an arriving request is rejected (0 for ∞ buffers)."""

    @property
    @abstractmethod
    def mean_number_in_system(self) -> float:
        """Steady-state mean number of requests in the system, L."""

    @abstractmethod
    def state_probability(self, n: int) -> float:
        """Stationary probability of exactly ``n`` requests in system."""

    # -- derived (Little's law) -----------------------------------------
    @property
    def effective_arrival_rate(self) -> float:
        """Rate of *accepted* requests, λ·(1 − P_block)."""
        return self.lam * (1.0 - self.blocking_probability)

    @property
    def throughput(self) -> float:
        """Steady-state departure rate; equals the effective arrival rate."""
        return self.effective_arrival_rate

    @property
    def mean_response_time(self) -> float:
        """Mean time an *accepted* request spends in the system, W = L/λ_eff.

        Returns ``inf`` when the queue is unstable (infinite-buffer queue
        with ρ ≥ 1) and ``0`` when no traffic is accepted.
        """
        lam_eff = self.effective_arrival_rate
        if lam_eff <= 0.0:
            return 0.0
        L = self.mean_number_in_system
        if math.isinf(L):
            return math.inf
        return L / lam_eff

    @property
    def utilization(self) -> float:
        """Fraction of time a server is busy (carried load per server)."""
        # Default single-server definition; multi-server models override.
        return min(1.0, self.effective_arrival_rate / self.mu)

    @property
    def mean_queue_length(self) -> float:
        """Mean number waiting (not in service), Lq = L − λ_eff/μ·servers."""
        L = self.mean_number_in_system
        if math.isinf(L):
            return math.inf
        return max(0.0, L - self.effective_arrival_rate / self.mu)

    @property
    def mean_waiting_time(self) -> float:
        """Mean time an accepted request waits before service, Wq."""
        W = self.mean_response_time
        if math.isinf(W):
            return math.inf
        return max(0.0, W - 1.0 / self.mu)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind} lam={self.lam:.6g} mu={self.mu:.6g} rho={self.rho:.4f}>"
