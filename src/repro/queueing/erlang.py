"""Erlang-B and Erlang-C formulas.

These are the multi-server building blocks: Erlang B gives the blocking
probability of an M/M/c/c loss system, Erlang C the probability of
queueing in an M/M/c delay system.  Both are computed with the standard
numerically-stable recurrences (never via factorials), so they are safe
for hundreds of servers — the web scenario provisions fleets of 150+.

Recurrences
-----------
Erlang B:  B(0, a) = 1;  B(c, a) = a·B(c−1, a) / (c + a·B(c−1, a))
Erlang C:  C(c, a) = c·B(c, a) / (c − a·(1 − B(c, a)))   for a < c
"""

from __future__ import annotations

import math

from ..errors import QueueingModelError

__all__ = ["erlang_b", "erlang_c"]


def _validate(servers: int, offered_load: float) -> int:
    if isinstance(servers, bool) or int(servers) != servers:
        raise QueueingModelError(f"server count must be an integer, got {servers!r}")
    servers = int(servers)
    if servers < 1:
        raise QueueingModelError(f"server count must be >= 1, got {servers}")
    if not (offered_load >= 0.0 and math.isfinite(offered_load)):
        raise QueueingModelError(
            f"offered load must be finite and >= 0, got {offered_load!r}"
        )
    return servers


def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang-B blocking probability of an M/M/c/c system.

    Parameters
    ----------
    servers:
        Number of servers c ≥ 1.
    offered_load:
        Offered traffic a = λ/μ in Erlangs.

    Examples
    --------
    >>> round(erlang_b(1, 1.0), 6)
    0.5
    >>> erlang_b(10, 0.0)
    0.0
    """
    servers = _validate(servers, offered_load)
    if offered_load == 0.0:
        return 0.0
    b = 1.0
    for c in range(1, servers + 1):
        b = offered_load * b / (c + offered_load * b)
    return b


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait in an M/M/c queue.

    Returns 1.0 when the system is unstable (a ≥ c): every arrival
    waits, and the wait is unbounded.

    Examples
    --------
    >>> round(erlang_c(1, 0.5), 6)   # M/M/1: P(wait) = rho
    0.5
    """
    servers = _validate(servers, offered_load)
    if offered_load == 0.0:
        return 0.0
    if offered_load >= servers:
        return 1.0
    b = erlang_b(servers, offered_load)
    return servers * b / (servers - offered_load * (1.0 - b))
