"""M/D/1 and M/D/1/K — deterministic-service companions.

The simulated workloads give each request a service time of
``base·U(1.00, 1.10)`` — almost deterministic.  The paper still models
instances as M/M/1/k, which *over*-estimates blocking and delay; these
deterministic-service models bracket reality from the optimistic side.
The ablation benchmark ``bench_ablation_queue_model`` swaps them into
Algorithm 1 to show how the provisioned fleet size reacts to the
modeling assumption.

* M/D/1 waiting time is the Pollaczek–Khinchine formula with zero
  service-time variance: Wq = ρ/(2μ(1 − ρ)).
* M/D/1/K has no simple closed form; we use the standard approximation
  that transforms the M/M/1/K blocking through the peakedness factor
  (Smith, 2003 style two-moment interpolation): blocking is roughly
  halved relative to M/M/1/K at moderate load.  The test-suite checks
  it against the DES within a tolerance band rather than exactly.
"""

from __future__ import annotations

import math

from ..errors import QueueingModelError
from .base import QueueModel, validate_capacity
from .mm1k import mm1k_blocking

__all__ = ["MD1Queue", "MD1KQueue"]


class MD1Queue(QueueModel):
    """M/D/1: Poisson arrivals, constant service time 1/μ, one server.

    Examples
    --------
    >>> q = MD1Queue(lam=5.0, mu=10.0)
    >>> round(q.mean_waiting_time, 6)   # half the M/M/1 wait
    0.05
    """

    kind = "M/D/1"

    @property
    def stable(self) -> bool:
        return self.rho < 1.0

    @property
    def blocking_probability(self) -> float:
        return 0.0

    @property
    def mean_waiting_time(self) -> float:
        if not self.stable:
            return math.inf
        rho = self.rho
        return rho / (2.0 * self.mu * (1.0 - rho))

    @property
    def mean_response_time(self) -> float:
        Wq = self.mean_waiting_time
        return math.inf if math.isinf(Wq) else Wq + 1.0 / self.mu

    @property
    def mean_number_in_system(self) -> float:
        W = self.mean_response_time
        return math.inf if math.isinf(W) else self.lam * W

    def state_probability(self, n: int) -> float:
        """Exact state probabilities require transform inversion; only
        P(0) = 1 − ρ is provided, other states raise."""
        if n == 0:
            return max(0.0, 1.0 - self.rho) if self.stable else 0.0
        raise QueueingModelError(
            "M/D/1 state probabilities beyond P(0) are not implemented; "
            "use MM1Queue for a full stationary distribution"
        )


class MD1KQueue(QueueModel):
    """Two-moment approximation of M/D/1/K.

    Interpolates blocking between M/M/1/K (coefficient of variation
    cv² = 1) and a light-traffic deterministic limit using the standard
    cv²-scaling heuristic ``P_D ≈ P_M · 2·cv²/(1 + cv²)`` with cv² = 0
    replaced by the configured squared coefficient of variation of the
    service law (default 0.000826 ≈ Var/mean² of U(1.00, 1.10)·base).
    """

    kind = "M/D/1/K~"

    def __init__(self, lam: float, mu: float, capacity: int, scv: float = 0.000826) -> None:
        super().__init__(lam, mu)
        self.capacity = validate_capacity(capacity)
        if not (0.0 <= scv <= 1.0):
            raise QueueingModelError(f"squared CV must be in [0, 1], got {scv!r}")
        self.scv = float(scv)

    @property
    def blocking_probability(self) -> float:
        base = mm1k_blocking(self.rho, self.capacity)
        if self.rho >= 1.0:
            # Overload blocking is capacity-driven, variability-insensitive:
            # the queue rejects the excess flow regardless of service law.
            return max(base, 1.0 - 1.0 / self.rho)
        factor = (1.0 + self.scv) / 2.0
        return base * factor

    @property
    def mean_number_in_system(self) -> float:
        # Scale the M/M/1/K backlog by the same variability factor applied
        # above the deterministic floor of ρ (the in-service mass).
        from .mm1k import mm1k_mean_number

        mm = mm1k_mean_number(self.rho, self.capacity)
        carried = min(1.0, self.rho * (1.0 - self.blocking_probability))
        waiting = max(0.0, mm - min(1.0, self.rho)) * (1.0 + self.scv) / 2.0
        return carried + waiting

    def state_probability(self, n: int) -> float:
        raise QueueingModelError(
            "the M/D/1/K approximation does not expose a stationary distribution"
        )
