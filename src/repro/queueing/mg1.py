"""The M/G/1 queue — Pollaczek–Khinchine with general service laws.

The paper's simulated service law is ``base·U(1.00, 1.10)`` — neither
exponential (M/M/1) nor constant (M/D/1).  M/G/1 covers the whole
family through the squared coefficient of variation (SCV) of service:

    Wq = ρ·(1 + c²) / (2·μ·(1 − ρ))        (PK formula)

* ``scv = 1``   → exactly M/M/1;
* ``scv = 0``   → exactly M/D/1 (half the M/M/1 wait);
* the paper's U(1.00, 1.10) jitter → ``scv ≈ 0.00076``, i.e. the wait
  sits within 0.04 % of the deterministic floor — one quantitative
  reason the paper's Markovian model is a conservative envelope for
  its own simulations (the other, larger one being the near-regular
  arrival pattern, which PK's Poisson assumption does not capture).

:func:`uniform_jitter_scv` computes the SCV of the paper's service law
for any jitter bound.
"""

from __future__ import annotations

import math

from ..errors import QueueingModelError
from .base import QueueModel

__all__ = ["MG1Queue", "uniform_jitter_scv"]


def uniform_jitter_scv(jitter: float) -> float:
    """SCV of ``base·(1 + U(0, jitter))``.

    Var = base²·jitter²/12, mean = base·(1 + jitter/2):

    >>> round(uniform_jitter_scv(0.10), 6)   # the paper's service law
    0.000756
    >>> uniform_jitter_scv(0.0)
    0.0
    """
    if jitter < 0.0:
        raise QueueingModelError(f"jitter must be >= 0, got {jitter!r}")
    mean = 1.0 + jitter / 2.0
    var = jitter * jitter / 12.0
    return var / (mean * mean)


class MG1Queue(QueueModel):
    """Steady-state M/G/1 queue via Pollaczek–Khinchine.

    Parameters
    ----------
    lam, mu:
        Arrival rate and 1/mean-service-time.
    scv:
        Squared coefficient of variation of the service law (≥ 0).

    Examples
    --------
    >>> from repro.queueing import MM1Queue
    >>> mg1 = MG1Queue(lam=5.0, mu=10.0, scv=1.0)
    >>> mm1 = MM1Queue(lam=5.0, mu=10.0)
    >>> abs(mg1.mean_waiting_time - mm1.mean_waiting_time) < 1e-12
    True
    """

    kind = "M/G/1"

    def __init__(self, lam: float, mu: float, scv: float = 1.0) -> None:
        super().__init__(lam, mu)
        if scv < 0.0 or not math.isfinite(scv):
            raise QueueingModelError(f"service SCV must be finite and >= 0, got {scv!r}")
        self.scv = float(scv)

    @property
    def stable(self) -> bool:
        """Whether the queue has a steady state (ρ < 1)."""
        return self.rho < 1.0

    @property
    def blocking_probability(self) -> float:
        """Always 0 — infinite buffer."""
        return 0.0

    @property
    def mean_waiting_time(self) -> float:
        if not self.stable:
            return math.inf
        rho = self.rho
        return rho * (1.0 + self.scv) / (2.0 * self.mu * (1.0 - rho))

    @property
    def mean_response_time(self) -> float:
        Wq = self.mean_waiting_time
        return math.inf if math.isinf(Wq) else Wq + 1.0 / self.mu

    @property
    def mean_number_in_system(self) -> float:
        W = self.mean_response_time
        return math.inf if math.isinf(W) else self.lam * W

    def state_probability(self, n: int) -> float:
        """Only P(0) = 1 − ρ is distribution-free for M/G/1."""
        if n == 0:
            return max(0.0, 1.0 - self.rho) if self.stable else 0.0
        raise QueueingModelError(
            "M/G/1 state probabilities beyond P(0) depend on the full "
            "service distribution; use MM1Queue or MD1Queue"
        )
