"""The M/M/1 queue — Poisson arrivals, exponential service, one server.

Classic closed forms (Menascé, Almeida & Dowdy, *Performance by
Design*, the paper's reference [5]):

* stability requires ρ = λ/μ < 1;
* P(n) = (1 − ρ)·ρⁿ;
* L = ρ / (1 − ρ);  W = 1 / (μ − λ).

An unstable M/M/1 (ρ ≥ 1) reports infinite L and W rather than raising,
because the performance modeler probes candidate fleet sizes that may
be transiently undersized.
"""

from __future__ import annotations

import math

from ..errors import QueueingModelError
from .base import QueueModel

__all__ = ["MM1Queue"]


class MM1Queue(QueueModel):
    """Steady-state M/M/1 queue.

    Examples
    --------
    >>> q = MM1Queue(lam=8.0, mu=10.0)
    >>> round(q.mean_response_time, 6)
    0.5
    >>> round(q.mean_number_in_system, 6)
    4.0
    """

    kind = "M/M/1"

    @property
    def stable(self) -> bool:
        """Whether the queue has a steady state (ρ < 1)."""
        return self.rho < 1.0

    @property
    def blocking_probability(self) -> float:
        """Always 0 — the buffer is infinite, nothing is rejected."""
        return 0.0

    @property
    def mean_number_in_system(self) -> float:
        if not self.stable:
            return math.inf
        rho = self.rho
        return rho / (1.0 - rho)

    def state_probability(self, n: int) -> float:
        if n < 0 or int(n) != n:
            raise QueueingModelError(f"state index must be a non-negative int, got {n!r}")
        if not self.stable:
            return 0.0
        rho = self.rho
        return (1.0 - rho) * rho ** int(n)

    @property
    def mean_response_time(self) -> float:
        """W = 1/(μ − λ); ``inf`` when unstable."""
        if not self.stable:
            return math.inf
        return 1.0 / (self.mu - self.lam)

    def waiting_time_quantile(self, p: float) -> float:
        """The ``p``-quantile of the response-time distribution.

        Response time in a stable FIFO M/M/1 is exponential with rate
        (μ − λ), so the quantile is ``-ln(1 − p)/(μ − λ)``.  Useful for
        percentile-based QoS targets (an extension the paper lists as
        future work).
        """
        if not 0.0 <= p < 1.0:
            raise QueueingModelError(f"quantile level must be in [0, 1), got {p!r}")
        if not self.stable:
            return math.inf
        return -math.log1p(-p) / (self.mu - self.lam)
