"""The M/M/1/K queue — the paper's per-instance performance model.

Each virtualized application instance is modeled as an M/M/1/K station
(paper §IV-B, Figure 2) with system capacity ``K = k = ⌊Ts/Tr⌋``
(Eq. 1): one request in service plus ``k − 1`` waiting.  When an
arrival finds ``k`` requests present it is *blocked* — in the paper the
SaaS admission controller rejects it before it ever reaches the
provisioner.

Closed forms (ρ = λ/μ):

* P(n) = ρⁿ·(1 − ρ)/(1 − ρ^{K+1})     for ρ ≠ 1, n = 0..K
* P(n) = 1/(K + 1)                      for ρ = 1
* blocking = P(K)                       (PASTA)
* L = ρ/(1 − ρ) − (K + 1)·ρ^{K+1}/(1 − ρ^{K+1})   for ρ ≠ 1
* L = K/2                               for ρ = 1
* W = L / (λ·(1 − P(K)))                (Little's law on accepted traffic)

The ρ = 1 singularity is handled by a Taylor-safe branch: for
|ρ − 1| < 1e-9 the uniform-distribution limit is used, which keeps the
modeler's bisection numerically smooth.
"""

from __future__ import annotations

import math

from ..errors import QueueingModelError
from .base import QueueModel, validate_capacity

__all__ = ["MM1KQueue", "mm1k_blocking", "mm1k_mean_number"]

_RHO_EPS = 1e-9


def _erlang_cdf(stages: int, rate: float, t: float) -> float:
    """CDF of an Erlang(stages, rate) sum at ``t`` (stable recurrence)."""
    if t <= 0.0:
        return 0.0
    x = rate * t
    # P(Erlang ≤ t) = 1 − Σ_{j<stages} e^{−x} x^j / j!
    term = math.exp(-x)
    tail = term
    for j in range(1, stages):
        term *= x / j
        tail += term
    return max(0.0, 1.0 - tail)


def mm1k_blocking(rho: float, capacity: int) -> float:
    """Blocking probability of an M/M/1/K queue with offered load ``rho``.

    Stateless helper used by the performance modeler's QoS-tolerance
    calibration (see :class:`repro.core.modeler.PerformanceModeler`).

    >>> round(mm1k_blocking(0.5, 2), 6)
    0.142857
    """
    capacity = validate_capacity(capacity)
    if rho < 0.0 or not math.isfinite(rho):
        raise QueueingModelError(f"offered load must be finite and >= 0, got {rho!r}")
    if rho == 0.0:
        return 0.0
    if abs(rho - 1.0) < _RHO_EPS:
        return 1.0 / (capacity + 1)
    # P(K) = rho^K (1-rho) / (1 - rho^{K+1}); compute in a form stable for
    # both rho < 1 and rho > 1.
    num = rho**capacity * (1.0 - rho)
    den = 1.0 - rho ** (capacity + 1)
    return min(1.0, max(0.0, num / den))


def mm1k_mean_number(rho: float, capacity: int) -> float:
    """Mean number in system L for an M/M/1/K queue with load ``rho``."""
    capacity = validate_capacity(capacity)
    if rho < 0.0 or not math.isfinite(rho):
        raise QueueingModelError(f"offered load must be finite and >= 0, got {rho!r}")
    if rho == 0.0:
        return 0.0
    if abs(rho - 1.0) < _RHO_EPS:
        return capacity / 2.0
    term = rho / (1.0 - rho)
    corr = (capacity + 1) * rho ** (capacity + 1) / (1.0 - rho ** (capacity + 1))
    return term - corr


class MM1KQueue(QueueModel):
    """Steady-state M/M/1/K queue (capacity includes the one in service).

    Parameters
    ----------
    lam, mu:
        Arrival and service rates (requests/s).
    capacity:
        System capacity K ≥ 1.

    Examples
    --------
    >>> q = MM1KQueue(lam=8.0, mu=10.0, capacity=2)
    >>> round(q.blocking_probability, 4)
    0.2623
    >>> q.state_probability(0) + q.state_probability(1) + q.state_probability(2)
    1.0
    """

    kind = "M/M/1/K"

    def __init__(self, lam: float, mu: float, capacity: int) -> None:
        super().__init__(lam, mu)
        self.capacity = validate_capacity(capacity)

    @property
    def blocking_probability(self) -> float:
        return mm1k_blocking(self.rho, self.capacity)

    @property
    def mean_number_in_system(self) -> float:
        return mm1k_mean_number(self.rho, self.capacity)

    def state_probability(self, n: int) -> float:
        if n < 0 or int(n) != n:
            raise QueueingModelError(f"state index must be a non-negative int, got {n!r}")
        n = int(n)
        if n > self.capacity:
            return 0.0
        rho = self.rho
        if rho == 0.0:
            return 1.0 if n == 0 else 0.0
        if abs(rho - 1.0) < _RHO_EPS:
            return 1.0 / (self.capacity + 1)
        return rho**n * (1.0 - rho) / (1.0 - rho ** (self.capacity + 1))

    @property
    def utilization(self) -> float:
        """Probability the server is busy, 1 − P(0) = carried load."""
        return 1.0 - self.state_probability(0)

    def response_time_cdf(self, t: float) -> float:
        """P(sojourn ≤ t) for an *accepted* request.

        An accepted arrival finding ``n < K`` requests present waits
        behind them and then serves — an Erlang(n+1, μ) total.  By
        PASTA the accepted-arrival state law is the stationary law
        conditioned on ``n < K``.  Enables percentile QoS targets
        (e.g. "95 % of requests within Ts") beyond the paper's
        mean-based check.
        """
        if t < 0.0:
            return 0.0
        accept_mass = 1.0 - self.blocking_probability
        if accept_mass <= 0.0:
            return 1.0
        total = 0.0
        for n in range(self.capacity):
            weight = self.state_probability(n) / accept_mass
            total += weight * _erlang_cdf(n + 1, self.mu, t)
        return min(1.0, total)

    def response_time_quantile(self, p: float) -> float:
        """Inverse of :meth:`response_time_cdf` (bisection)."""
        if not 0.0 <= p < 1.0:
            raise QueueingModelError(f"quantile level must be in [0, 1), got {p!r}")
        if p == 0.0:
            return 0.0
        lo, hi = 0.0, self.capacity / self.mu
        while self.response_time_cdf(hi) < p:
            hi *= 2.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.response_time_cdf(mid) < p:
                lo = mid
            else:
                hi = mid
            if hi - lo < 1e-12 * max(1.0, hi):
                break
        return 0.5 * (lo + hi)

    @property
    def max_response_time(self) -> float:
        """Worst-case *mean* path: K services back-to-back, K/μ.

        This is the quantity the paper's Eq. 1 bounds by ``Ts``: an
        accepted request waits behind at most K − 1 others, so its
        expected sojourn is at most K service times.
        """
        return self.capacity / self.mu
