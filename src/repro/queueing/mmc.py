"""The M/M/c queue — c parallel servers, infinite buffer.

Used by the ablation benchmarks to ask "what if the modeler treated the
whole fleet as one pooled M/M/c station instead of m independent
M/M/1/k stations?" (the paper's per-instance model assumes the
round-robin balancer splits traffic evenly — the pooled model is the
idealized upper bound on what load balancing could achieve).

Formulas via Erlang C (a = λ/μ, ρ = a/c):

* P(wait) = C(c, a)
* Wq = C(c, a) / (c·μ − λ);  W = Wq + 1/μ
* L = λ·W (Little)
"""

from __future__ import annotations

import math

from ..errors import QueueingModelError
from .base import QueueModel
from .erlang import erlang_b, erlang_c

__all__ = ["MMCQueue"]


class MMCQueue(QueueModel):
    """Steady-state M/M/c queue.

    Parameters
    ----------
    lam, mu:
        Arrival rate of the *pooled* stream and per-server service rate.
    servers:
        Number of identical servers c ≥ 1.

    Examples
    --------
    >>> q = MMCQueue(lam=8.0, mu=10.0, servers=1)
    >>> round(q.mean_response_time, 6)   # degenerates to M/M/1
    0.5
    """

    kind = "M/M/c"

    def __init__(self, lam: float, mu: float, servers: int) -> None:
        super().__init__(lam, mu)
        if isinstance(servers, bool) or int(servers) != servers or int(servers) < 1:
            raise QueueingModelError(f"server count must be an integer >= 1, got {servers!r}")
        self.servers = int(servers)

    @property
    def offered_load(self) -> float:
        """Offered traffic in Erlangs, a = λ/μ."""
        return self.lam / self.mu

    @property
    def rho(self) -> float:
        """Per-server load, a/c."""
        return self.offered_load / self.servers

    @property
    def stable(self) -> bool:
        """Whether a steady state exists (a < c)."""
        return self.offered_load < self.servers

    @property
    def blocking_probability(self) -> float:
        """Always 0 — infinite buffer."""
        return 0.0

    @property
    def probability_of_wait(self) -> float:
        """Erlang-C probability an arrival queues (1.0 if unstable)."""
        return erlang_c(self.servers, self.offered_load)

    @property
    def mean_waiting_time(self) -> float:
        if not self.stable:
            return math.inf
        return self.probability_of_wait / (self.servers * self.mu - self.lam)

    @property
    def mean_response_time(self) -> float:
        Wq = self.mean_waiting_time
        return math.inf if math.isinf(Wq) else Wq + 1.0 / self.mu

    @property
    def mean_number_in_system(self) -> float:
        W = self.mean_response_time
        return math.inf if math.isinf(W) else self.lam * W

    @property
    def utilization(self) -> float:
        """Carried load per server (ρ, capped at 1)."""
        return min(1.0, self.rho)

    def state_probability(self, n: int) -> float:
        """Stationary P(N = n) via the Erlang-B normalization trick.

        P(0) is recovered from the Erlang-B recurrence output rather
        than a factorial sum, keeping the computation stable for large
        ``c``.
        """
        if n < 0 or int(n) != n:
            raise QueueingModelError(f"state index must be a non-negative int, got {n!r}")
        n = int(n)
        if not self.stable:
            return 0.0
        a, c = self.offered_load, self.servers
        if a == 0.0:
            return 1.0 if n == 0 else 0.0
        # B(c, a) = (a^c/c!) / sum_{j<=c} a^j/j!  =>  sum_{j<=c} a^j/j! = (a^c/c!)/B
        # and P(0) = 1 / (sum_{j<c} a^j/j! + (a^c/c!)·c/(c−a)).
        # Work with ratios t_j = (a^j/j!) normalized by t_c to avoid overflow.
        b = erlang_b(c, a)
        # t_c relative weight: partial sum S_{<=c} = t_c / b; S_{<c} = t_c/b − t_c.
        # Choose t_c = 1 (common factor cancels in the final ratio).
        s_le_c = 1.0 / b
        s_lt_c = s_le_c - 1.0
        norm = s_lt_c + c / (c - a)
        if n < c:
            # t_n = t_c · c!/n! · a^{n−c}  computed by downward recurrence.
            t = 1.0
            for j in range(c, n, -1):
                t = t * j / a
            return t / norm
        # n >= c: P(n) = P(c)·ρ^{n−c}, with t_c = 1.
        return (self.rho ** (n - c)) / norm
