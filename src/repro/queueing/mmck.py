"""The M/M/c/K queue — c servers, finite system capacity K ≥ c.

This is the pooled-fleet analogue of the paper's per-instance M/M/1/k
model: m instances each with capacity k correspond (under perfect load
balancing) to an M/M/m/(m·k) station.  The fluid engine and the
ablation benchmarks use it to quantify how much the paper's
independent-queues assumption costs.

The stationary distribution is computed from the birth–death balance
equations with weights normalized by their maximum to avoid overflow
for large fleets (the web scenario reaches c = 150, K = 300).
"""

from __future__ import annotations

import numpy as np

from ..errors import QueueingModelError
from .base import QueueModel, validate_capacity

__all__ = ["MMCKQueue"]


class MMCKQueue(QueueModel):
    """Steady-state M/M/c/K queue (K counts requests in service too).

    Parameters
    ----------
    lam, mu:
        Pooled arrival rate and per-server service rate.
    servers:
        Number of servers c ≥ 1.
    capacity:
        System capacity K ≥ c.

    Examples
    --------
    >>> pooled = MMCKQueue(lam=8.0, mu=10.0, servers=1, capacity=2)
    >>> from repro.queueing.mm1k import MM1KQueue
    >>> single = MM1KQueue(lam=8.0, mu=10.0, capacity=2)
    >>> abs(pooled.blocking_probability - single.blocking_probability) < 1e-12
    True
    """

    kind = "M/M/c/K"

    def __init__(self, lam: float, mu: float, servers: int, capacity: int) -> None:
        super().__init__(lam, mu)
        if isinstance(servers, bool) or int(servers) != servers or int(servers) < 1:
            raise QueueingModelError(f"server count must be an integer >= 1, got {servers!r}")
        self.servers = int(servers)
        self.capacity = validate_capacity(capacity)
        if self.capacity < self.servers:
            raise QueueingModelError(
                f"capacity K={self.capacity} must be >= server count c={self.servers}"
            )
        self._probs = self._stationary()

    def _stationary(self) -> np.ndarray:
        """Solve the birth–death chain in log space for stability."""
        c, K = self.servers, self.capacity
        a = self.lam / self.mu
        # log-weights: w_0 = 0; w_n = w_{n-1} + log(a / min(n, c))
        n = np.arange(1, K + 1, dtype=np.float64)
        if self.lam == 0.0:
            probs = np.zeros(K + 1)
            probs[0] = 1.0
            return probs
        steps = np.log(a) - np.log(np.minimum(n, c))
        logw = np.concatenate(([0.0], np.cumsum(steps)))
        logw -= logw.max()
        w = np.exp(logw)
        return w / w.sum()

    @property
    def rho(self) -> float:
        """Per-server offered load, λ/(c·μ)."""
        return self.lam / (self.servers * self.mu)

    @property
    def blocking_probability(self) -> float:
        return float(self._probs[self.capacity])

    @property
    def mean_number_in_system(self) -> float:
        return float(np.arange(self.capacity + 1) @ self._probs)

    def state_probability(self, n: int) -> float:
        if n < 0 or int(n) != n:
            raise QueueingModelError(f"state index must be a non-negative int, got {n!r}")
        n = int(n)
        if n > self.capacity:
            return 0.0
        return float(self._probs[n])

    @property
    def mean_busy_servers(self) -> float:
        """Expected number of busy servers, Σ min(n, c)·P(n)."""
        n = np.arange(self.capacity + 1)
        return float(np.minimum(n, self.servers) @ self._probs)

    @property
    def utilization(self) -> float:
        """Carried load per server, E[busy]/c."""
        return self.mean_busy_servers / self.servers
