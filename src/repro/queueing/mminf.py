"""The M/M/∞ queue — the paper's model of the application provisioner.

In Figure 2 of the paper the application provisioner is an M/M/∞
station: every accepted request is "in service" (being routed)
immediately, there is no queueing at the dispatch tier, and the number
in system is Poisson with mean λ/μ.

The routing delay μ⁻¹ is tiny compared to application service times, so
in the simulator the provisioner forwards requests instantaneously by
default; the analytical class exists so the composed queueing network
(:mod:`repro.queueing.network`) matches the paper's Figure 2 exactly
and so tests can verify the insensitivity of end-to-end results to the
dispatch delay.
"""

from __future__ import annotations

import math

from ..errors import QueueingModelError
from .base import QueueModel

__all__ = ["MMInfQueue"]


class MMInfQueue(QueueModel):
    """Steady-state M/M/∞ (infinite-server) queue.

    Examples
    --------
    >>> q = MMInfQueue(lam=100.0, mu=1000.0)
    >>> q.mean_response_time == 1.0 / 1000.0
    True
    >>> round(q.mean_number_in_system, 6)
    0.1
    """

    kind = "M/M/inf"

    @property
    def blocking_probability(self) -> float:
        """Always 0 — there are infinitely many servers."""
        return 0.0

    @property
    def mean_number_in_system(self) -> float:
        """L = λ/μ (Poisson mean)."""
        return self.lam / self.mu

    @property
    def mean_response_time(self) -> float:
        """Exactly one service time: there is never any waiting."""
        return 1.0 / self.mu

    @property
    def mean_waiting_time(self) -> float:
        return 0.0

    @property
    def utilization(self) -> float:
        """Not meaningful for infinitely many servers; defined as 0."""
        return 0.0

    def state_probability(self, n: int) -> float:
        """Poisson pmf with mean λ/μ, evaluated in log space."""
        if n < 0 or int(n) != n:
            raise QueueingModelError(f"state index must be a non-negative int, got {n!r}")
        n = int(n)
        mean = self.lam / self.mu
        if mean == 0.0:
            return 1.0 if n == 0 else 0.0
        return math.exp(n * math.log(mean) - mean - math.lgamma(n + 1))
