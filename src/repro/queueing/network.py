"""Queueing-network composition — the paper's Figure 2.

The data-center model is a two-stage open network:

1. an **M/M/∞ dispatch station** (the application provisioner), then
2. **m parallel M/M/1/k stations** (the virtualized application
   instances), each receiving λ/m of the accepted flow because the
   provisioner balances round-robin.

:class:`ProvisioningNetwork` evaluates the end-to-end steady state of
that network for a candidate fleet size ``m`` — exactly the computation
the load predictor & performance modeler performs on every iteration of
Algorithm 1.  Keeping it here, independent of the control logic, lets the tests
pin the numbers against hand calculations and lets ablations swap the
per-instance model (M/M/1/k, M/D/1/K, pooled M/M/m/mk).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..errors import QueueingModelError
from .base import QueueModel
from .mm1k import MM1KQueue
from .mminf import MMInfQueue

__all__ = ["NetworkPerformance", "ProvisioningNetwork"]


@dataclass(frozen=True)
class NetworkPerformance:
    """Steady-state summary of the provisioning network for one ``m``.

    Attributes
    ----------
    instances:
        Fleet size ``m`` the numbers were computed for.
    per_instance_lambda:
        λ/m — arrival rate offered to each application instance.
    rho:
        Offered load per instance, (λ/m)/μ.
    blocking_probability:
        Probability an arrival is rejected by admission control.
    response_time:
        Mean end-to-end time of an *accepted* request (dispatch +
        instance sojourn), seconds.
    utilization:
        Carried load per instance (fraction of busy time).
    throughput:
        Accepted requests per second across the whole fleet.
    """

    instances: int
    per_instance_lambda: float
    rho: float
    blocking_probability: float
    response_time: float
    utilization: float
    throughput: float


class ProvisioningNetwork:
    """The Figure-2 network evaluated analytically.

    Parameters
    ----------
    service_time:
        Mean request service time at one instance, Tm (seconds).
    capacity:
        Per-instance system capacity k (Eq. 1).
    dispatch_time:
        Mean routing delay at the M/M/∞ provisioner station.  The
        default of 0 collapses the first stage, matching the simulator.
    instance_model:
        Factory ``(lam, mu, capacity) -> QueueModel`` used for each
        instance station; defaults to :class:`MM1KQueue`.

    Examples
    --------
    >>> net = ProvisioningNetwork(service_time=0.1, capacity=2)
    >>> perf = net.evaluate(arrival_rate=1200.0, instances=150)
    >>> 0.7 < perf.rho < 0.9
    True
    """

    def __init__(
        self,
        service_time: float,
        capacity: int,
        dispatch_time: float = 0.0,
        instance_model: Callable[[float, float, int], QueueModel] = MM1KQueue,
    ) -> None:
        if not (service_time > 0.0 and math.isfinite(service_time)):
            raise QueueingModelError(
                f"service time must be finite and > 0, got {service_time!r}"
            )
        if dispatch_time < 0.0 or not math.isfinite(dispatch_time):
            raise QueueingModelError(
                f"dispatch time must be finite and >= 0, got {dispatch_time!r}"
            )
        self.service_time = float(service_time)
        self.capacity = int(capacity)
        self.dispatch_time = float(dispatch_time)
        self.instance_model = instance_model

    def evaluate(self, arrival_rate: float, instances: int) -> NetworkPerformance:
        """Steady state of the network with ``instances`` stations.

        Raises
        ------
        QueueingModelError
            If ``instances < 1`` or ``arrival_rate < 0``.
        """
        if isinstance(instances, bool) or int(instances) != instances or int(instances) < 1:
            raise QueueingModelError(f"fleet size must be an integer >= 1, got {instances!r}")
        instances = int(instances)
        if arrival_rate < 0.0 or not math.isfinite(arrival_rate):
            raise QueueingModelError(
                f"arrival rate must be finite and >= 0, got {arrival_rate!r}"
            )

        mu = 1.0 / self.service_time
        lam_i = arrival_rate / instances
        station = self.instance_model(lam_i, mu, self.capacity)

        dispatch_delay = 0.0
        if self.dispatch_time > 0.0 and arrival_rate > 0.0:
            dispatch_delay = MMInfQueue(arrival_rate, 1.0 / self.dispatch_time).mean_response_time

        blocking = station.blocking_probability
        response = station.mean_response_time + dispatch_delay
        return NetworkPerformance(
            instances=instances,
            per_instance_lambda=lam_i,
            rho=lam_i / mu,
            blocking_probability=blocking,
            response_time=response,
            utilization=station.utilization,
            throughput=arrival_rate * (1.0 - blocking),
        )
