"""Tandem (composite-service) queueing networks — §VII future work.

"We intend to improve the queueing model to allow modeling composite
services": a request that traverses several tiers (web front-end →
application tier → backend) instead of a single instance.  This module
provides the open-tandem analytics:

* :class:`TandemStage` — one tier: ``m`` parallel single-server
  stations (the paper's per-instance view) or one pooled M/M/c station;
* :class:`TandemNetwork` — Jackson-style composition: by Burke's
  theorem the departure process of a stable M/M stage is Poisson at the
  arrival rate, so stages can be evaluated independently and their
  sojourn times summed for the end-to-end response.

:class:`CompositeServiceModeler` extends Algorithm 1 to such services:
the end-to-end deadline ``Ts`` is partitioned across tiers in
proportion to their service demands, each tier gets its own Eq.-1
capacity and its own Algorithm-1 search, and the combined prediction is
checked against the end-to-end target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import ConfigurationError, QueueingModelError
from .mm1k import MM1KQueue
from .network import NetworkPerformance, ProvisioningNetwork

__all__ = ["TandemStage", "TandemNetwork", "CompositeServiceModeler"]


@dataclass(frozen=True)
class TandemStage:
    """One tier of a composite service.

    Attributes
    ----------
    name:
        Tier label (``"web"``, ``"app"``, ``"db"`` …).
    service_time:
        Mean per-request service time at one instance of this tier.
    instances:
        Number of parallel instances serving the tier.
    capacity:
        Per-instance queue capacity (Eq. 1 for the tier's deadline
        share); ``None`` means unbounded (plain M/M/1 stations).
    """

    name: str
    service_time: float
    instances: int
    capacity: int = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.service_time <= 0.0 or not math.isfinite(self.service_time):
            raise QueueingModelError(
                f"stage {self.name!r}: service time must be finite and > 0"
            )
        if self.instances < 1:
            raise QueueingModelError(f"stage {self.name!r}: instances must be >= 1")
        if self.capacity is not None and self.capacity < 1:
            raise QueueingModelError(f"stage {self.name!r}: capacity must be >= 1")


class TandemNetwork:
    """Open tandem of tiers traversed in sequence.

    Parameters
    ----------
    stages:
        Tier definitions, in traversal order.

    Notes
    -----
    With bounded per-instance queues the stage *blocking* thins the
    flow offered to downstream tiers (a blocked request leaves the
    system), exactly like the admission gate of the single-tier model.
    """

    def __init__(self, stages: Sequence[TandemStage]) -> None:
        if not stages:
            raise QueueingModelError("a tandem needs at least one stage")
        self.stages = list(stages)

    def evaluate(self, arrival_rate: float) -> Dict[str, NetworkPerformance]:
        """Per-stage steady state for an offered rate (Burke chaining)."""
        if arrival_rate < 0.0 or not math.isfinite(arrival_rate):
            raise QueueingModelError(
                f"arrival rate must be finite and >= 0, got {arrival_rate!r}"
            )
        out: Dict[str, NetworkPerformance] = {}
        rate = arrival_rate
        for stage in self.stages:
            capacity = stage.capacity if stage.capacity is not None else 10**6
            net = ProvisioningNetwork(
                service_time=stage.service_time,
                capacity=capacity,
                instance_model=MM1KQueue,
            )
            perf = net.evaluate(rate, stage.instances)
            out[stage.name] = perf
            rate = perf.throughput  # blocked requests leave the system
        return out

    def end_to_end_response(self, arrival_rate: float) -> float:
        """Sum of per-stage mean sojourns for a surviving request."""
        return sum(p.response_time for p in self.evaluate(arrival_rate).values())

    def end_to_end_loss(self, arrival_rate: float) -> float:
        """Fraction of offered requests lost at *any* stage."""
        if arrival_rate == 0.0:
            return 0.0
        perfs = self.evaluate(arrival_rate)
        surviving = list(perfs.values())[-1].throughput
        return 1.0 - surviving / arrival_rate


class CompositeServiceModeler:
    """Algorithm 1 generalized to multi-tier services.

    Parameters
    ----------
    service_times:
        ``{tier_name: mean service time}`` in traversal order (dicts
        preserve insertion order).
    max_response_time:
        End-to-end deadline ``Ts``.
    max_vms_per_tier:
        Quota per tier.
    rho_max, min_utilization:
        The single-tier calibration, applied per tier.
    """

    def __init__(
        self,
        service_times: Dict[str, float],
        max_response_time: float,
        max_vms_per_tier: int = 8000,
        rho_max: float = 0.85,
        min_utilization: float = 0.80,
    ) -> None:
        if not service_times:
            raise ConfigurationError("composite service needs at least one tier")
        total = sum(service_times.values())
        if total <= 0.0 or max_response_time <= total:
            raise ConfigurationError(
                f"end-to-end Ts={max_response_time!r} must exceed the total "
                f"service demand {total!r}"
            )
        self.service_times = dict(service_times)
        self.max_response_time = float(max_response_time)
        self.max_vms_per_tier = int(max_vms_per_tier)
        self.rho_max = float(rho_max)
        self.min_utilization = float(min_utilization)
        # Deadline split proportional to service demand; each tier then
        # has Ts_i / Tr_i = Ts / total, so every tier gets the same k.
        from ..core.modeler import PerformanceModeler
        from ..core.qos import QoSTarget

        self.deadline_share = {
            name: self.max_response_time * tr / total
            for name, tr in self.service_times.items()
        }
        self._modelers: Dict[str, "PerformanceModeler"] = {}
        self.capacities: Dict[str, int] = {}
        for name, tr in self.service_times.items():
            qos = QoSTarget(
                max_response_time=self.deadline_share[name],
                min_utilization=self.min_utilization,
            )
            k = qos.queue_capacity(tr)
            self.capacities[name] = k
            self._modelers[name] = PerformanceModeler(
                qos=qos,
                capacity=k,
                max_vms=self.max_vms_per_tier,
                rho_max=self.rho_max,
            )

    def decide(
        self, arrival_rate: float, current: Dict[str, int]
    ) -> Dict[str, int]:
        """Per-tier fleet sizes for an offered rate.

        ``current`` supplies each tier's present fleet (Algorithm 1
        starts its search there); missing tiers start from 1.
        """
        out: Dict[str, int] = {}
        for name, tr in self.service_times.items():
            # Every tier is sized for the full offered rate: the
            # calibrated M/M/1/k blocking at the operating point is a
            # conservative modeling envelope, not expected loss, and a
            # properly sized upstream tier passes ≈ all of its flow —
            # thinning by the envelope would systematically starve the
            # downstream tiers.
            decision = self._modelers[name].decide(
                arrival_rate, tr, current.get(name, 1)
            )
            out[name] = decision.instances
        return out

    def network_for(self, fleets: Dict[str, int]) -> TandemNetwork:
        """Build the tandem network realized by ``fleets``."""
        stages = [
            TandemStage(
                name=name,
                service_time=tr,
                instances=fleets[name],
                capacity=self.capacities[name],
            )
            for name, tr in self.service_times.items()
        ]
        return TandemNetwork(stages)

    def predicted_end_to_end(
        self, arrival_rate: float, fleets: Dict[str, int]
    ) -> float:
        """End-to-end mean response under ``fleets``."""
        return self.network_for(fleets).end_to_end_response(arrival_rate)
