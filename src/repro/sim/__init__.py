"""Discrete-event simulation kernel.

The :mod:`repro.sim` package is the CloudSim substitute used by every
experiment in this repository: a small, strictly-causal, heap-based
discrete-event engine (:class:`Engine`), reproducible named random
streams (:class:`RandomStreams`), calendar helpers mapping simulation
seconds to the paper's day-of-week/time-of-day coordinates, and a fast
*fluid* (interval-analytical) evaluator in :mod:`repro.sim.fluid` that
cross-validates the event-driven results at full paper scale.
"""

from .batch import (
    SoAQueues,
    fifo_departures,
    fifo_departures_grouped,
    round_robin_departures,
    safe_block_length,
)
from .calendar import (
    DAY_NAMES,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    SECONDS_PER_WEEK,
    day_name,
    day_of_week,
    hms,
    hour_of_day,
    seconds_of_day,
)
from .engine import Engine
from .events import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, EventHandle
from .rng import RandomStreams, fnv1a64

__all__ = [
    "Engine",
    "EventHandle",
    "SoAQueues",
    "fifo_departures",
    "fifo_departures_grouped",
    "round_robin_departures",
    "safe_block_length",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
    "RandomStreams",
    "fnv1a64",
    "DAY_NAMES",
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_WEEK",
    "seconds_of_day",
    "day_of_week",
    "day_name",
    "hour_of_day",
    "hms",
]
