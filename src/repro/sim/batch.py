"""Structure-of-arrays batch kernel for the vectorized DES data plane.

The scalar engine dispatches one Python event per arrival and per
completion — ~2.8 M events/s on the BENCH_PR1 host, which is what kept
the full-scale (scale ≥ 1 M) cells of ``campaigns/paper.toml`` on the
fluid twin.  This module is the array core of the ``des-vec`` backend:
per-instance queue state lives in flat numpy arrays (a *structure of
arrays*), whole arrival blocks are admitted with fancy-indexed writes,
and service completions are computed with the Lindley recursion instead
of one heap round-trip each.

The kernel knows nothing about VMs, monitors, or control planes — it is
plain queueing arithmetic over ``(svc_end, queue, qlen)`` state.  The
lifecycle/bookkeeping half of the vectorized data plane lives in
:class:`repro.cloud.vecfleet.VectorFleet`, which calls into this module
between control-plane epochs; the scalar engine remains the reference
implementation that ``tests/test_batch_engine.py`` compares against
bit for bit.

Exactness invariants (documented in ``docs/performance.md``):

* **Lindley chaining** — a queued request starts at
  ``max(previous departure, its arrival)``, so departure times are
  independent of *when* the kernel materializes them.  Splitting a
  span at any point and recomputing yields bitwise-identical departures.
* **Bounded drain waves** — completing the head of every station and
  promoting its queue head converges in at most ``capacity`` waves,
  because chained work only comes from the ≤ ``capacity − 1`` deep
  queue.
* **Safe block length** — :func:`safe_block_length` bounds a cyclic
  round-robin block so no station ever exceeds its capacity, which is
  exactly the condition under which blocked assignment reproduces the
  scalar balancer's pointer walk (see ``VectorFleet``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "SoAQueues",
    "fifo_departures",
    "fifo_departures_grouped",
    "round_robin_departures",
    "safe_block_length",
]

#: A drain wave: (stations, departure_times, arrival_times,
#: effective_service_times) of the requests completed in the wave.
Wave = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def fifo_departures(
    arrivals: np.ndarray, services: np.ndarray, ready: float = -math.inf
) -> np.ndarray:
    """Departure times of one FIFO server, vectorized Lindley recursion.

    ``dep[i] = max(arrivals[i], dep[i-1]) + services[i]`` computed
    without a Python loop: with ``C = cumsum(services)`` the recursion
    unrolls to ``dep = C + running_max(arrivals - C_shifted)``, a
    cumulative sum plus a cumulative maximum.

    Parameters
    ----------
    arrivals:
        Sorted arrival times of the server's request sequence.
    services:
        Matching service times (already divided by the server speed).
    ready:
        Time the server frees up from earlier work (the in-service
        request's departure); defaults to "idle forever".
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    services = np.asarray(services, dtype=np.float64)
    if arrivals.shape != services.shape:
        raise ConfigurationError(
            f"arrivals and services must align, got {arrivals.shape} vs {services.shape}"
        )
    if arrivals.size == 0:
        return np.empty(0)
    totals = np.cumsum(services)
    floors = np.empty_like(totals)
    floors[0] = max(float(arrivals[0]), ready)
    floors[1:] = arrivals[1:] - totals[:-1]
    return totals + np.maximum.accumulate(floors)


def fifo_departures_grouped(
    arrivals: np.ndarray,
    services: np.ndarray,
    ready: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Row-wise :func:`fifo_departures` for a ``(stations, n)`` matrix.

    Each row is one server's request sequence; ``ready`` optionally
    gives each server's free-up time.  This is the grouped form the
    dispatch-group benchmarks exercise.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    services = np.asarray(services, dtype=np.float64)
    if arrivals.shape != services.shape or arrivals.ndim != 2:
        raise ConfigurationError(
            f"expected matching 2-D arrays, got {arrivals.shape} vs {services.shape}"
        )
    if arrivals.shape[1] == 0:
        return np.empty_like(arrivals)
    totals = np.cumsum(services, axis=1)
    floors = np.empty_like(totals)
    if ready is None:
        floors[:, 0] = arrivals[:, 0]
    else:
        floors[:, 0] = np.maximum(arrivals[:, 0], ready)
    floors[:, 1:] = arrivals[:, 1:] - totals[:, :-1]
    return totals + np.maximum.accumulate(floors, axis=1)


def round_robin_departures(
    arrivals: np.ndarray, services: np.ndarray, stations: int
) -> np.ndarray:
    """Departures of a sorted arrival stream dispatched round-robin.

    Arrival ``i`` goes to station ``i mod stations``; each station is an
    unbounded FIFO server.  One reshape turns the stream into per-station
    rows, one grouped Lindley pass computes every departure — this is
    the 50 k-request kernel benchmark that replaces 100 k scalar engine
    events with a handful of array operations.

    Returns the departure times in arrival order.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    services = np.asarray(services, dtype=np.float64)
    if stations < 1:
        raise ConfigurationError(f"stations must be >= 1, got {stations}")
    n = arrivals.size
    if n == 0:
        return np.empty(0)
    m = int(stations)
    rounds = -(-n // m)
    # Pad the final round with never-arriving requests; padded entries
    # sit at each station's tail, so the running max never leaks them
    # into real departures.
    a2 = np.full(rounds * m, np.inf)
    s2 = np.zeros(rounds * m)
    a2[:n] = arrivals
    s2[:n] = services
    dep = fifo_departures_grouped(
        a2.reshape(rounds, m).T, s2.reshape(rounds, m).T
    )
    return dep.T.ravel()[:n]


def safe_block_length(occupancies: np.ndarray, capacity: int) -> int:
    """Longest cyclic round-robin block that cannot overflow any station.

    Station ``q`` (0-based position in the dispatch cycle) receives
    arrivals ``q, q + n, q + 2n, …`` of the block; with ``occupancies[q]``
    requests already on board it can take ``capacity − occupancies[q]``
    more, i.e. the block must stop at or before index
    ``q + (capacity − occupancies[q])·n``.  The minimum over stations is
    the longest provably safe block.  Occupancies may only *decrease*
    during the block (completions), so the bound computed from a
    snapshot is conservative — and therefore exact for admission: every
    arrival in the block lands on a station that is not full at its
    assignment instant.
    """
    occ = np.asarray(occupancies)
    n = occ.size
    if n == 0:
        return 0
    return int(np.min(np.arange(n) + (capacity - occ) * n))


class SoAQueues:
    """Structure-of-arrays state for a set of capacity-bounded stations.

    Each station is one application instance: a single server with a
    FIFO queue of at most ``capacity − 1`` waiting requests (the
    in-service request is the ``capacity``-th).  State per station slot:

    * ``svc_end[i]`` — departure time of the in-service request
      (``inf`` when idle);
    * ``cur_arr[i]`` / ``cur_svc[i]`` — arrival and *effective* service
      time of the in-service request;
    * ``q_arr[i]`` / ``q_svc[i]`` / ``qlen[i]`` — the waiting queue
      (service times stored *raw*; divided by ``speed`` at service
      start, matching the scalar instance's semantics);
    * ``speed[i]`` — linear service speedup factor.

    Slots are allocated monotonically (:meth:`alloc`) so the slot index
    doubles as the instance id, identical to the scalar fleet's
    ``_next_instance_id`` numbering.
    """

    __slots__ = (
        "capacity",
        "svc_end",
        "cur_arr",
        "cur_svc",
        "speed",
        "qlen",
        "q_arr",
        "q_svc",
        "allocated",
    )

    def __init__(self, capacity: int, initial_slots: int = 64) -> None:
        if capacity < 1:
            raise ConfigurationError(f"queue capacity k must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        n = max(int(initial_slots), 1)
        width = max(self.capacity - 1, 1)
        self.svc_end = np.full(n, np.inf)
        self.cur_arr = np.zeros(n)
        self.cur_svc = np.zeros(n)
        self.speed = np.ones(n)
        self.qlen = np.zeros(n, dtype=np.intp)
        self.q_arr = np.zeros((n, width))
        self.q_svc = np.zeros((n, width))
        self.allocated = 0

    # ------------------------------------------------------------------
    # slot management
    # ------------------------------------------------------------------
    def alloc(self) -> int:
        """Allocate a fresh idle slot; returns its index."""
        idx = self.allocated
        if idx >= self.svc_end.size:
            self._grow()
        self.svc_end[idx] = np.inf
        self.qlen[idx] = 0
        self.speed[idx] = 1.0
        self.allocated = idx + 1
        return idx

    def _grow(self) -> None:
        n = self.svc_end.size
        self.svc_end = np.concatenate((self.svc_end, np.full(n, np.inf)))
        self.cur_arr = np.concatenate((self.cur_arr, np.zeros(n)))
        self.cur_svc = np.concatenate((self.cur_svc, np.zeros(n)))
        self.speed = np.concatenate((self.speed, np.ones(n)))
        self.qlen = np.concatenate((self.qlen, np.zeros(n, dtype=np.intp)))
        width = self.q_arr.shape[1]
        self.q_arr = np.concatenate((self.q_arr, np.zeros((n, width))))
        self.q_svc = np.concatenate((self.q_svc, np.zeros((n, width))))

    def clear(self, idx: int) -> int:
        """Reset one slot to idle; returns the occupancy it released."""
        released = int(self.qlen[idx]) + int(self.svc_end[idx] != np.inf)
        self.svc_end[idx] = np.inf
        self.qlen[idx] = 0
        return released

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def occupancy(self, stations: np.ndarray) -> np.ndarray:
        """Requests on board (in service + queued) per station."""
        return self.qlen[stations] + (self.svc_end[stations] != np.inf)

    def next_completion(self, stations: np.ndarray) -> float:
        """Earliest in-service departure among ``stations`` (inf if idle)."""
        if len(stations) == 0:
            return math.inf
        return float(self.svc_end[stations].min())

    # ------------------------------------------------------------------
    # hot-path kernels
    # ------------------------------------------------------------------
    def assign(
        self, stations: np.ndarray, arrivals: np.ndarray, services: np.ndarray
    ) -> None:
        """One dispatch round: station ``i`` accepts request ``i``.

        ``stations`` must be distinct, non-full slots; ``services`` are
        raw draws (speed division happens at service start).  Idle
        stations start serving immediately; busy ones append to their
        queue with two fancy-indexed writes.
        """
        busy = self.svc_end[stations] != np.inf
        idle_t = stations[~busy]
        if idle_t.size:
            arr = arrivals[~busy]
            eff = services[~busy] / self.speed[idle_t]
            self.cur_arr[idle_t] = arr
            self.cur_svc[idle_t] = eff
            self.svc_end[idle_t] = arr + eff
        busy_t = stations[busy]
        if busy_t.size:
            slot = self.qlen[busy_t]
            if int(slot.max()) >= self.capacity - 1:
                raise ConfigurationError(
                    "assign() would overflow a full station; "
                    "cap blocks with safe_block_length()"
                )
            self.q_arr[busy_t, slot] = arrivals[busy]
            self.q_svc[busy_t, slot] = services[busy]
            self.qlen[busy_t] = slot + 1

    def drain(self, stations: np.ndarray, t: float, strict: bool = False) -> List[Wave]:
        """Complete everything due by ``t`` across ``stations``.

        Repeats waves of "finish the in-service request, promote the
        queue head" until nothing is due; a promoted request starts at
        ``max(completion, its arrival)`` (Lindley), so results do not
        depend on how often the caller drains.  ``strict`` excludes
        completions at exactly ``t`` — used at control-plane epochs,
        where the scalar engine fires same-instant completions *after*
        the high-priority control event.

        Returns the waves; the caller flattens and sorts them for
        deterministic downstream accounting.
        """
        waves: List[Wave] = []
        while True:
            ends = self.svc_end[stations]
            due = (ends < t) if strict else (ends <= t)
            if not due.any():
                return waves
            done = stations[due]
            dep = ends[due]
            waves.append((done, dep, self.cur_arr[done], self.cur_svc[done]))
            queued = self.qlen[done] > 0
            nxt = done[queued]
            if nxt.size:
                head_arr = self.q_arr[nxt, 0]
                head_svc = self.q_svc[nxt, 0] / self.speed[nxt]
                self.cur_arr[nxt] = head_arr
                self.cur_svc[nxt] = head_svc
                self.svc_end[nxt] = np.maximum(dep[queued], head_arr) + head_svc
                self.q_arr[nxt, :-1] = self.q_arr[nxt, 1:]
                self.q_svc[nxt, :-1] = self.q_svc[nxt, 1:]
                self.qlen[nxt] -= 1
            idle = done[~queued]
            if idle.size:
                self.svc_end[idle] = np.inf

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SoAQueues k={self.capacity} slots={self.allocated}/"
            f"{self.svc_end.size}>"
        )
