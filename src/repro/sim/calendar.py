"""Simulation calendar helpers.

The paper's workloads are defined in wall-clock terms: the web workload
varies by *day of week* and *time of day* (Table II + Eq. 2, simulation
starts "Monday 12 a.m."), and the scientific workload distinguishes
peak hours (8 a.m.–5 p.m.) from off-peak.  This module converts a
simulation clock (seconds since the scenario epoch) into those calendar
coordinates.

All functions are pure and accept either scalars or numpy arrays, so
the workload generators can evaluate whole weeks of rate curves in one
vectorized call.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_WEEK",
    "DAY_NAMES",
    "seconds_of_day",
    "day_of_week",
    "day_name",
    "hour_of_day",
    "hms",
]

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86_400
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

#: Day index 0 is Monday: the paper's web simulation "consists in one
#: week of requests ... starting at Monday 12 a.m.".
DAY_NAMES = (
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
)

ArrayLike = Union[float, np.ndarray]


def seconds_of_day(t: ArrayLike) -> ArrayLike:
    """Seconds elapsed since the most recent midnight.

    >>> seconds_of_day(86_400 + 30.0)
    30.0
    """
    return np.mod(t, SECONDS_PER_DAY)


def day_of_week(t: ArrayLike) -> ArrayLike:
    """Day index (0=Monday .. 6=Sunday) for simulation time ``t``.

    Times beyond one week wrap around, matching a workload model that
    repeats weekly.
    """
    return (np.floor_divide(np.asarray(t), SECONDS_PER_DAY)).astype(np.int64) % 7


def day_name(t: float) -> str:
    """Human-readable weekday name for scalar time ``t``."""
    return DAY_NAMES[int(day_of_week(float(t)))]


def hour_of_day(t: ArrayLike) -> ArrayLike:
    """Fractional hour of day in ``[0, 24)`` for simulation time ``t``."""
    return seconds_of_day(t) / SECONDS_PER_HOUR


def hms(t: float) -> str:
    """Format a scalar simulation time as ``Day HH:MM:SS`` for logs.

    >>> hms(0.0)
    'Monday 00:00:00'
    """
    sod = int(seconds_of_day(float(t)))
    h, rem = divmod(sod, SECONDS_PER_HOUR)
    m, s = divmod(rem, SECONDS_PER_MINUTE)
    return f"{day_name(t)} {h:02d}:{m:02d}:{s:02d}"
