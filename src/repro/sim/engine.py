"""The discrete-event simulation engine.

:class:`Engine` owns the simulation clock and the future-event list (a
binary heap of plain list entries; see :mod:`repro.sim.events`).  Model
components — *entities* — schedule callbacks with
:meth:`Engine.schedule` / :meth:`Engine.schedule_at` and the engine
fires them in non-decreasing ``(time, priority, seq)`` order until the
horizon is reached or the event list drains.

The engine is deliberately minimal: no process coroutines, no channels.
Every higher-level abstraction (queues, servers, provisioners) is built
from plain callbacks in :mod:`repro.cloud` and :mod:`repro.core`.  This
keeps the inner loop short: profiling showed heap operations and
callback dispatch dominate, so the loop binds ``heappop`` to a local
and the heap compares C-level list entries (the hpc-parallel guide's
rule: measure first, then shave only the measured hot path).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional

from ..errors import EngineStateError, SchedulingInPastError
from .events import CANCELLED, PRIORITY_NORMAL, EventHandle

__all__ = ["Engine"]


class Engine:
    """Sequential discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).  Scenario code
        usually starts at ``0.0``, meaning "Monday 12 a.m." for the web
        workload (see :mod:`repro.sim.calendar`).

    Examples
    --------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, lambda: fired.append(eng.now))
    >>> eng.run(until=10.0)
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self._finished = False
        self._events_fired = 0
        #: Hooks invoked (with the engine) after the run completes.
        self.at_end: List[Callable[["Engine"], None]] = []

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of entries still in the future-event list.

        Includes lazily-cancelled entries, so this is an upper bound on
        the live events.
        """
        return len(self._heap)

    @property
    def finished(self) -> bool:
        """Whether :meth:`run` has completed."""
        return self._finished

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns the event handle, which may be passed to :meth:`cancel`.
        """
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when``.

        Raises
        ------
        SchedulingInPastError
            If ``when`` is earlier than the current clock (or NaN).
        EngineStateError
            If the engine already finished its run.
        """
        if self._finished:
            raise EngineStateError("cannot schedule events on a finished engine")
        if not when >= self._now:  # also catches NaN
            raise SchedulingInPastError(self._now, when)
        self._seq += 1
        entry: EventHandle = [when, priority, self._seq, callback, False]
        heapq.heappush(self._heap, entry)
        return entry

    @staticmethod
    def cancel(entry: EventHandle) -> None:
        """Lazily cancel a scheduled event (idempotent).

        The entry stays in the heap but is skipped when popped.
        """
        entry[CANCELLED] = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Simulation horizon.  Events strictly after ``until`` are
            not fired and the clock stops exactly at ``until``.  When
            omitted, the engine runs until the event list drains.

        Raises
        ------
        EngineStateError
            If called re-entrantly or after the engine finished.
        """
        if self._running:
            raise EngineStateError("Engine.run() is not re-entrant")
        if self._finished:
            raise EngineStateError("engine already finished; create a new Engine")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        horizon = math.inf if until is None else float(until)
        fired = 0
        try:
            while heap:
                entry = heap[0]
                when = entry[0]
                if when > horizon:
                    break
                pop(heap)
                if entry[4]:
                    continue
                self._now = when
                fired += 1
                entry[3]()
            if until is not None and self._now < horizon:
                self._now = horizon
        finally:
            self._events_fired += fired
            self._running = False
        self._finished = True
        for hook in self.at_end:
            hook(self)

    def step(self) -> bool:
        """Fire the single next live event.

        Returns ``True`` if an event fired, ``False`` if the list is
        empty.  Useful in tests that need to observe intermediate state.
        """
        if self._running:
            raise EngineStateError("Engine.step() is not re-entrant")
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[4]:
                continue
            self._now = entry[0]
            self._events_fired += 1
            entry[3]()
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Engine t={self._now:.6g} pending={len(self._heap)} "
            f"fired={self._events_fired}>"
        )
