"""The discrete-event simulation engine.

:class:`Engine` owns the simulation clock and the future-event list (a
binary heap of plain list entries; see :mod:`repro.sim.events`).  Model
components — *entities* — schedule callbacks with
:meth:`Engine.schedule` / :meth:`Engine.schedule_at` and the engine
fires them in non-decreasing ``(time, priority, seq)`` order until the
horizon is reached or the event list drains.

The engine is deliberately minimal: no process coroutines, no channels.
Every higher-level abstraction (queues, servers, provisioners) is built
from plain callbacks in :mod:`repro.cloud` and :mod:`repro.core`.  This
keeps the inner loop short: profiling showed heap operations and
callback dispatch dominate, so the loop binds ``heappop`` to a local,
the heap compares C-level list entries, and :meth:`schedule` pushes
inline rather than delegating to :meth:`schedule_at` (the hpc-parallel
guide's rule: measure first, then shave only the measured hot path).

Heap hygiene
------------
Cancellation is lazy (an O(1) flag flip), which is the right trade for
the common case but lets crash/drain-heavy runs accumulate dead entries
in the future-event list.  :meth:`discard` therefore tracks the count
of live cancelled entries and *compacts* the heap in place — filtering
dead entries and re-heapifying — whenever they exceed half of a
non-trivially-sized heap.  Compaction is O(n) but amortized O(1) per
cancellation, and mutates the list in place so a running event loop
(which binds the heap to a local) never observes a stale binding.
"""

from __future__ import annotations

import math
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from typing import Callable, List, Optional

from ..errors import EngineStateError, SchedulingInPastError
from .events import CANCELLED, PRIORITY_NORMAL, EventHandle

__all__ = ["Engine"]


class Engine:
    """Sequential discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).  Scenario code
        usually starts at ``0.0``, meaning "Monday 12 a.m." for the web
        workload (see :mod:`repro.sim.calendar`).

    Examples
    --------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, lambda: fired.append(eng.now))
    >>> eng.run(until=10.0)
    >>> fired
    [5.0]
    """

    #: Compaction is skipped below this heap size — filtering a small
    #: list costs more bookkeeping than the dead entries ever will.
    COMPACT_MIN_SIZE = 1024

    def __init__(self, start_time: float = 0.0, tracer: Optional[object] = None) -> None:
        self._now = float(start_time)
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self._finished = False
        self._events_fired = 0
        self._cancelled = 0
        #: Number of heap compactions performed (observability).
        self.compactions = 0
        #: Optional :class:`repro.obs.bus.TraceBus`.  Only the cold
        #: paths (compaction) emit — the inner event loop is untouched
        #: so tracing can never slow an untraced run.
        self.tracer = tracer
        #: Hooks invoked (with the engine) after a clean run completes.
        self.at_end: List[Callable[["Engine"], None]] = []

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded).

        Updated *before* each callback fires, so a callback observing
        the counter sees itself included — identically under
        :meth:`run` and :meth:`step`.
        """
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of entries still in the future-event list.

        Includes lazily-cancelled entries, so this is an upper bound on
        the live events.
        """
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Tracked count of cancelled-but-unpopped entries in the heap.

        Only cancellations routed through :meth:`discard` are counted;
        the static :meth:`cancel` cannot reach the engine's counter.
        """
        return self._cancelled

    @property
    def finished(self) -> bool:
        """Whether :meth:`run` has completed (including by exception)."""
        return self._finished

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns the event handle, which may be passed to :meth:`cancel`
        or :meth:`discard`.
        """
        # Inlined schedule_at: this sits on the DES hot path (one call
        # per completion) and the extra frame is measurable.
        when = self._now + delay
        if self._finished:
            raise EngineStateError("cannot schedule events on a finished engine")
        if not when >= self._now:  # also catches NaN
            raise SchedulingInPastError(self._now, when)
        self._seq = seq = self._seq + 1
        entry: EventHandle = [when, priority, seq, callback, False]
        _heappush(self._heap, entry)
        return entry

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when``.

        Raises
        ------
        SchedulingInPastError
            If ``when`` is earlier than the current clock (or NaN).
        EngineStateError
            If the engine already finished its run.
        """
        if self._finished:
            raise EngineStateError("cannot schedule events on a finished engine")
        if not when >= self._now:  # also catches NaN
            raise SchedulingInPastError(self._now, when)
        self._seq = seq = self._seq + 1
        entry: EventHandle = [float(when), priority, seq, callback, False]
        _heappush(self._heap, entry)
        return entry

    @staticmethod
    def cancel(entry: EventHandle) -> None:
        """Lazily cancel a scheduled event (idempotent).

        The entry stays in the heap but is skipped when popped.  Prefer
        :meth:`discard` when an engine reference is at hand — it also
        feeds the compaction heuristic.
        """
        entry[CANCELLED] = True

    def discard(self, entry: EventHandle) -> None:
        """Cancel ``entry`` and account for it (idempotent).

        Identical semantics to :meth:`cancel`, plus the engine tracks
        how many cancelled entries are still sitting in the heap and
        compacts the future-event list when they exceed half of a
        heap larger than :attr:`COMPACT_MIN_SIZE`.
        """
        if entry[CANCELLED]:
            return
        entry[CANCELLED] = True
        self._cancelled += 1
        heap = self._heap
        if len(heap) >= self.COMPACT_MIN_SIZE and 2 * self._cancelled >= len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant.

        In-place (slice assignment) so locals bound to the heap by a
        running loop stay valid.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [e for e in heap if not e[CANCELLED]]
        _heapify(heap)
        self._cancelled = 0
        self.compactions += 1
        if self.tracer is not None:
            self.tracer.emit(
                "engine.compacted",
                self._now,
                removed=before - len(heap),
                remaining=len(heap),
            )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Firing time of the next live event, or ``None`` if drained.

        Pops lazily-cancelled heads as a side effect (they are dead
        weight either way), so a following :meth:`step` fires exactly
        the event whose time was returned.  Used by the vectorized
        backend's epoch loop: the array data plane advances to the next
        engine event's time before the event fires.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[4]:
                _heappop(heap)
                if self._cancelled:
                    self._cancelled -= 1
                continue
            return entry[0]
        return None

    def run(self, until: Optional[float] = None) -> None:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Simulation horizon.  Events strictly after ``until`` are
            not fired and the clock stops exactly at ``until``.  When
            omitted, the engine runs until the event list drains.

        Raises
        ------
        EngineStateError
            If called re-entrantly or after the engine finished.

        Notes
        -----
        The engine is marked finished even when a callback raises — a
        half-run engine is not resumable (its clock and entity state
        are mid-transaction), so re-running or scheduling afterwards
        raises :class:`EngineStateError`.  ``at_end`` hooks only fire
        after a *clean* completion.
        """
        if self._running:
            raise EngineStateError("Engine.run() is not re-entrant")
        if self._finished:
            raise EngineStateError("engine already finished; create a new Engine")
        self._running = True
        heap = self._heap
        pop = _heappop
        horizon = math.inf if until is None else float(until)
        fired = self._events_fired
        try:
            while heap:
                entry = pop(heap)
                if entry[4]:
                    if self._cancelled:
                        self._cancelled -= 1
                    continue
                when = entry[0]
                if when > horizon:
                    _heappush(heap, entry)  # keep it pending; we overshot
                    break
                self._now = when
                fired += 1
                self._events_fired = fired
                entry[3]()
            if until is not None and self._now < horizon:
                self._now = horizon
        finally:
            self._running = False
            self._finished = True
        for hook in self.at_end:
            hook(self)

    def step(self) -> bool:
        """Fire the single next live event.

        Returns ``True`` if an event fired, ``False`` if the list is
        empty.  Useful in tests that need to observe intermediate state.
        Shares :meth:`run`'s accounting: ``events_fired`` is updated
        before the callback executes.
        """
        if self._running:
            raise EngineStateError("Engine.step() is not re-entrant")
        heap = self._heap
        while heap:
            entry = _heappop(heap)
            if entry[4]:
                if self._cancelled:
                    self._cancelled -= 1
                continue
            self._now = entry[0]
            self._events_fired += 1
            entry[3]()
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Engine t={self._now:.6g} pending={len(self._heap)} "
            f"fired={self._events_fired}>"
        )
