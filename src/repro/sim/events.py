"""Event primitives for the discrete-event kernel.

The engine's future-event list stores each scheduled event as a plain
5-slot list — ``[time, priority, seq, callback, cancelled]`` — rather
than an instance of a class with a ``__lt__`` method.  Heap pushes and
pops compare entries element-wise at C speed (the strictly increasing
``seq`` guarantees the comparison never reaches the callback), which
profiling showed is ~3× faster than dispatching a Python ``__lt__`` per
comparison on the multi-million-event web scenario.

:class:`EventHandle` documents the entry layout and provides the
type alias used in signatures; cancellation is *lazy* — set the flag
via :meth:`repro.sim.engine.Engine.cancel` and the engine skips the
entry when popped, O(1) instead of an O(n) heap removal.
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["EventHandle", "PRIORITY_HIGH", "PRIORITY_NORMAL", "PRIORITY_LOW",
           "TIME", "PRIORITY", "SEQ", "CALLBACK", "CANCELLED"]

#: Fires before normal events scheduled at the same timestamp.  Used for
#: control-plane actions (provisioning decisions, window generation)
#: that must run before the data plane advances at the same instant.
PRIORITY_HIGH = 0

#: Default priority for data-plane events (arrivals, completions).
PRIORITY_NORMAL = 1

#: Fires after everything else at the same timestamp.  Used for
#: end-of-interval metric sampling.
PRIORITY_LOW = 2

#: Index of the firing time in an event entry.
TIME = 0
#: Index of the priority in an event entry.
PRIORITY = 1
#: Index of the tie-breaking sequence number in an event entry.
SEQ = 2
#: Index of the zero-argument callback in an event entry.
CALLBACK = 3
#: Index of the lazy-cancellation flag in an event entry.
CANCELLED = 4

#: An entry of the future-event list:
#: ``[time: float, priority: int, seq: int, callback: Callable[[], None],
#: cancelled: bool]``.  Treat it as opaque outside the kernel; cancel
#: through :meth:`repro.sim.engine.Engine.cancel`.
EventHandle = List[Any]
